//! # coconut-palm
//!
//! Workspace facade crate: re-exports the [`coconut_core`] API so the
//! runnable examples under `examples/` (and downstream users) can depend on a
//! single crate.  See `ROADMAP.md` for the project's north star and
//! `DESIGN.md` for the architecture, including the threading model behind the
//! `parallelism` knob.

pub use coconut_core::*;

/// The palm (algorithms-server) request/response layer.
pub mod palm {
    pub use coconut_core::palm::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_core_types() {
        let config = crate::IndexConfig::new(crate::VariantKind::CTree, 64);
        assert_eq!(config.display_name(), "CTree");
    }
}
