//! Batched/sequential equivalence of the query engine and the palm service.
//!
//! The tentpole guarantee of this round: a **batch of N kNN queries**
//! returns, per query, bit-identical answers, `QueryCost` counters *and*
//! `IoStats` accounting (every touched page, same sequential/random
//! classification) to issuing the N queries one at a time — at every
//! `query_parallelism`, sharded or unsharded, static or streaming.  On top
//! of that, the palm service layer (`PalmServer::handle(&self)`) serves
//! concurrent readers during streaming appends, every query observing a
//! valid snapshot.

use std::sync::Arc;

use coconut_core::palm::{PalmRequest, PalmResponse, PalmServer};
use coconut_core::{
    streaming_index, IndexConfig, IoStats, IoStatsSnapshot, Neighbor, QueryCost, ScratchDir,
    StaticIndex, StreamingConfig, VariantKind, WindowScheme,
};
use coconut_series::generator::{RandomWalkGenerator, SeismicStreamGenerator, SeriesGenerator};
use coconut_series::Dataset;
use proptest::prelude::*;

/// Worker count for the "parallel" side (`COCONUT_THREADS`, default 8).
fn parallel_workers() -> usize {
    std::env::var("COCONUT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 1)
        .unwrap_or(8)
}

struct Built {
    index: StaticIndex,
    stats: coconut_core::SharedIoStats,
    after_build: IoStatsSnapshot,
}

fn build(
    dir: &ScratchDir,
    dataset: &Dataset,
    label: &str,
    variant: VariantKind,
    materialized: bool,
    shards: usize,
    query_parallelism: usize,
) -> Built {
    let config = IndexConfig::new(variant, 64)
        .materialized(materialized)
        .with_memory_budget(1 << 19)
        .with_shard_count(shards)
        .with_query_parallelism(query_parallelism);
    let stats = IoStats::shared();
    let (index, _) =
        StaticIndex::build(dataset, config, &dir.file(label), Arc::clone(&stats)).expect("build");
    let after_build = stats.snapshot();
    Built {
        index,
        stats,
        after_build,
    }
}

fn queries(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut gen = RandomWalkGenerator::new(64, seed);
    (0..n).map(|_| gen.next_series().values).collect()
}

/// Runs `queries` one at a time against `built`, returning per-query
/// results plus the I/O the pass performed.
fn run_sequential(
    built: &Built,
    queries: &[Vec<f32>],
    k: usize,
    exact: bool,
) -> (Vec<(Vec<Neighbor>, QueryCost)>, IoStatsSnapshot) {
    let results = queries
        .iter()
        .map(|q| {
            if exact {
                built.index.exact_knn(q, k).expect("query")
            } else {
                built.index.approximate_knn(q, k).expect("query")
            }
        })
        .collect();
    (results, built.stats.snapshot().since(&built.after_build))
}

/// Runs `queries` as one batch against `built`, returning per-query
/// results plus the I/O the pass performed.
fn run_batch(
    built: &Built,
    queries: &[Vec<f32>],
    k: usize,
    exact: bool,
) -> (Vec<(Vec<Neighbor>, QueryCost)>, IoStatsSnapshot) {
    let results = built.index.batch_knn(queries, k, exact).expect("batch");
    (results, built.stats.snapshot().since(&built.after_build))
}

/// Tentpole: batch-of-N vs N sequential queries — answers, `QueryCost` and
/// `IoStats` identical, across variants × materialization × sharding ×
/// `query_parallelism` {1, N} × exact/approximate.
#[test]
fn batch_matches_sequential_on_static_indexes() {
    let dir = ScratchDir::new("beq-static").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 31);
    let series = gen.generate(700);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let qs = queries(9, 0xbeef);
    let workers = parallel_workers();
    let cases = [
        (VariantKind::CTree, true, 1usize),
        (VariantKind::CTree, false, 1),
        (VariantKind::Clsm, true, 1),
        (VariantKind::Clsm, true, 4),
        (VariantKind::Clsm, false, 4),
    ];
    for (variant, materialized, shards) in cases {
        for qp in [1usize, workers] {
            // Separate index instances (identical by construction) so the
            // two passes start from the same per-file access-cursor state.
            let seq = build(
                &dir,
                &dataset,
                &format!("{}-m{materialized}-s{shards}-q{qp}-seq", variant.name()),
                variant,
                materialized,
                shards,
                qp,
            );
            let bat = build(
                &dir,
                &dataset,
                &format!("{}-m{materialized}-s{shards}-q{qp}-bat", variant.name()),
                variant,
                materialized,
                shards,
                qp,
            );
            assert_eq!(
                seq.after_build, bat.after_build,
                "builds must be identical before comparing query I/O"
            );
            for exact in [true, false] {
                let (r_seq, io_seq) = run_sequential(&seq, &qs, 4, exact);
                let (r_bat, io_bat) = run_batch(&bat, &qs, 4, exact);
                let label = format!(
                    "{} materialized={materialized} shards={shards} qp={qp} exact={exact}",
                    variant.name()
                );
                assert_eq!(r_seq, r_bat, "answers/costs differ ({label})");
                assert_eq!(io_seq, io_bat, "IoStats differ ({label})");
            }
            // Interleaving exact and approximate passes above means the
            // cumulative per-file cursors must still agree afterwards.
            assert_eq!(
                seq.stats.snapshot(),
                bat.stats.snapshot(),
                "cumulative IoStats diverged"
            );
        }
    }
}

/// Streaming side of the tentpole: `query_window_batch` vs the
/// one-at-a-time loop on TP and BTP, windowed and unwindowed.
#[test]
fn batch_matches_sequential_on_streams() {
    let dir = ScratchDir::new("beq-stream").unwrap();
    let mut gen = SeismicStreamGenerator::new(64, 17, 0.1);
    let batches: Vec<_> = (0..10).map(|_| gen.next_batch(60)).collect();
    let qs = queries(6, 0xfeed);
    let workers = parallel_workers();
    for scheme in [
        WindowScheme::TemporalPartitioning,
        WindowScheme::BoundedTemporalPartitioning,
    ] {
        for qp in [1usize, workers] {
            let mut indexes = Vec::new();
            let mut stats_handles = Vec::new();
            for side in ["seq", "bat"] {
                let mut config = StreamingConfig::new(VariantKind::Clsm, scheme, 64);
                config.buffer_capacity = 60;
                config.query_parallelism = qp;
                let stats = IoStats::shared();
                let mut index = streaming_index(
                    config,
                    &dir.file(&format!("{}-q{qp}-{side}", scheme.short_name())),
                    Arc::clone(&stats),
                )
                .unwrap();
                for batch in &batches {
                    index.ingest_batch(batch).unwrap();
                }
                stats_handles.push(stats);
                indexes.push(index);
            }
            for window in [None, Some((150u64, 450u64)), Some((0u64, 40u64))] {
                for exact in [true, false] {
                    let singles: Vec<_> = qs
                        .iter()
                        .map(|q| indexes[0].query_window(q, 3, window, exact).unwrap())
                        .collect();
                    let batched = indexes[1]
                        .query_window_batch(&qs, 3, window, exact)
                        .unwrap();
                    assert_eq!(batched.len(), singles.len());
                    for (s, b) in singles.iter().zip(batched.iter()) {
                        let label = format!(
                            "{} qp={qp} window={window:?} exact={exact}",
                            scheme.short_name()
                        );
                        assert_eq!(s.neighbors, b.neighbors, "answers differ ({label})");
                        assert_eq!(s.cost, b.cost, "costs differ ({label})");
                        assert_eq!(s.partitions_accessed, b.partitions_accessed, "{label}");
                        assert_eq!(s.partitions_total, b.partitions_total, "{label}");
                    }
                }
            }
            assert_eq!(
                stats_handles[0].snapshot(),
                stats_handles[1].snapshot(),
                "{} qp={qp}: cumulative IoStats diverged",
                scheme.short_name()
            );
        }
    }
}

/// Service-layer stress test: spawned readers issue single and batched
/// queries against one index while one writer streams appends through the
/// shared `&self` server.  Every response must be a valid snapshot — never
/// an error, and a query matching a build-time series always finds it.
#[test]
fn concurrent_reads_during_append_observe_valid_snapshots() {
    let dir = ScratchDir::new("beq-stress").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 3);
    let series = gen.generate(300);
    let dataset_path = dir.file("raw.bin");
    Dataset::create_from_series(&dataset_path, &series).unwrap();
    let server = PalmServer::new(dir.file("work")).with_batch_parallelism(parallel_workers());
    let built = server.handle(PalmRequest::BuildIndex {
        name: "stress".into(),
        dataset_path: dataset_path.to_string_lossy().into_owned(),
        variant: VariantKind::Clsm,
        materialized: true,
        memory_budget_bytes: 1 << 20,
        parallelism: 1,
        query_parallelism: 2,
        shard_count: 2,
        range: None,
        io_overlap: true,
        io_backend: coconut_core::IoBackend::Pread,
        planner: coconut_core::PlannerMode::Fixed,
        compression: coconut_core::Compression::Off,
    });
    assert!(matches!(built, PalmResponse::Built { .. }), "{built:?}");

    let anchors: Vec<(u64, Vec<f32>)> = [7u64, 120, 288]
        .into_iter()
        .map(|id| {
            let q: Vec<f32> = series[id as usize]
                .values
                .iter()
                .map(|v| v + 0.0005)
                .collect();
            (id, q)
        })
        .collect();

    std::thread::scope(|scope| {
        let server = &server;
        let anchors = &anchors;
        let writer = scope.spawn(move || {
            let mut gen = RandomWalkGenerator::new(64, 999);
            for round in 0..15u64 {
                let batch: Vec<Vec<f32>> = (0..40).map(|_| gen.next_series().values).collect();
                match server.handle(PalmRequest::Insert {
                    name: "stress".into(),
                    series: batch,
                    timestamp: round,
                    base_id: None,
                }) {
                    PalmResponse::Inserted { inserted, .. } => assert_eq!(inserted, 40),
                    other => panic!("insert failed: {other:?}"),
                }
            }
        });
        for reader in 0..4usize {
            scope.spawn(move || {
                for i in 0..12 {
                    let (id, q) = &anchors[(reader + i) % anchors.len()];
                    if i % 3 == 0 {
                        // Batched reads share the same snapshot guarantee.
                        let requests: Vec<PalmRequest> = anchors
                            .iter()
                            .map(|(_, q)| PalmRequest::Query {
                                name: "stress".into(),
                                query: q.clone(),
                                k: 1,
                                exact: true,
                            })
                            .collect();
                        match server.handle(PalmRequest::Batch { requests }) {
                            PalmResponse::Batch { responses } => {
                                for (response, (id, _)) in responses.iter().zip(anchors.iter()) {
                                    match response {
                                        PalmResponse::QueryResult { ids, .. } => {
                                            assert_eq!(ids, &vec![*id])
                                        }
                                        other => panic!("batched query failed: {other:?}"),
                                    }
                                }
                            }
                            other => panic!("batch failed: {other:?}"),
                        }
                    } else {
                        match server.handle(PalmRequest::Query {
                            name: "stress".into(),
                            query: q.clone(),
                            k: 1,
                            exact: true,
                        }) {
                            PalmResponse::QueryResult { ids, .. } => assert_eq!(&ids, &vec![*id]),
                            other => panic!("query failed: {other:?}"),
                        }
                    }
                }
            });
        }
        writer.join().unwrap();
    });

    // After the writer joined, the index holds every append.
    match server.handle(PalmRequest::Metrics {
        name: "stress".into(),
    }) {
        PalmResponse::Metrics { report, .. } => assert_eq!(report.entries, 300),
        other => panic!("metrics failed: {other:?}"),
    }
    match server.handle(PalmRequest::Query {
        name: "stress".into(),
        query: series[7].values.clone(),
        k: 1,
        exact: true,
    }) {
        PalmResponse::QueryResult { ids, .. } => assert_eq!(ids, vec![7]),
        other => panic!("final query failed: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random batch sizes and configurations: batch answers and costs are
    /// identical to one-at-a-time execution on CLSM (the variant with the
    /// most units), sharded and unsharded, at `query_parallelism` 1 and N.
    #[test]
    fn random_batches_match_sequential(
        n in 300usize..600,
        batch in 1usize..12,
        seed in 0u64..1000,
        k in 1usize..7,
        exact_bit in 0u8..2,
    ) {
        let dir = ScratchDir::new("beq-prop").unwrap();
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let exact = exact_bit == 1;
        let qs = queries(batch, seed ^ 0x5a5a);
        let workers = parallel_workers();
        for shards in [1usize, 3] {
            for qp in [1usize, workers] {
                let built = build(
                    &dir,
                    &dataset,
                    &format!("clsm-s{shards}-q{qp}"),
                    VariantKind::Clsm,
                    true,
                    shards,
                    qp,
                );
                let (r_seq, _) = run_sequential(&built, &qs, k, exact);
                let (r_bat, _) = run_batch(&built, &qs, k, exact);
                prop_assert_eq!(
                    &r_seq, &r_bat,
                    "batch differs (shards={}, qp={}, exact={})", shards, qp, exact
                );
            }
        }
    }

    /// The all-duplicates edge case: a batch of *identical* queries must
    /// return identical per-query results, equal to the single-query path.
    #[test]
    fn duplicate_queries_in_a_batch_agree(
        seed in 0u64..1000,
        dup in 2usize..6,
    ) {
        let dir = ScratchDir::new("beq-dup").unwrap();
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(300);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let built = build(&dir, &dataset, "ctree", VariantKind::CTree, true, 1, 2);
        let q = queries(1, seed ^ 0x77)[0].clone();
        let qs: Vec<Vec<f32>> = std::iter::repeat_with(|| q.clone()).take(dup).collect();
        let (single, _) = run_sequential(&built, &qs[..1], 3, true);
        let (batched, _) = run_batch(&built, &qs, 3, true);
        for (i, result) in batched.iter().enumerate() {
            prop_assert_eq!(result, &single[0], "duplicate {} diverged", i);
        }
    }
}
