//! Backend equivalence of the whole read path.
//!
//! The tentpole guarantee of the mmap read backend is that `io_backend` is a
//! *pure* performance knob: serving `read_range`, leaf/delta scans, sharded
//! compaction range readers and partition merges from a read-only file
//! mapping instead of positioned reads changes how bytes travel, never which
//! bytes — so for every variant the on-disk index is byte-identical, every
//! kNN answer and `QueryCost` is identical, and the `IoStats` totals
//! (reads/writes, sequential/random counts) are identical at either backend
//! — across the `io_backend × io_overlap × parallelism` grid, sharded and
//! unsharded (the acceptance matrix of this PR).

use coconut_core::{
    streaming_index, IndexConfig, IoBackend, IoStats, IoStatsSnapshot, ScratchDir, StaticIndex,
    StreamingConfig, VariantKind, WindowScheme,
};
use coconut_series::generator::{RandomWalkGenerator, SeismicStreamGenerator, SeriesGenerator};
use coconut_series::Dataset;
use proptest::prelude::*;

/// Recursively collects `(relative name, bytes)` of all files under `dir`.
fn dir_contents(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("prefix")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("read file")));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn build_variant(
    dir: &ScratchDir,
    dataset: &Dataset,
    variant: VariantKind,
    budget: usize,
    parallelism: usize,
    shard_count: usize,
    io_overlap: bool,
    io_backend: IoBackend,
) -> (StaticIndex, Vec<(String, Vec<u8>)>, IoStatsSnapshot) {
    let config = IndexConfig::new(variant, 64)
        .materialized(true)
        .with_memory_budget(budget)
        .with_parallelism(parallelism)
        .with_shard_count(shard_count)
        .with_io_overlap(io_overlap)
        .with_io_backend(io_backend);
    let subdir = dir.file(&format!(
        "{}-p{parallelism}-s{shard_count}-ov{io_overlap}-be{io_backend}",
        variant.name()
    ));
    let stats = IoStats::shared();
    let (index, _report) =
        StaticIndex::build(dataset, config, &subdir, std::sync::Arc::clone(&stats)).expect("build");
    let files = dir_contents(&subdir);
    (index, files, stats.snapshot())
}

fn assert_equivalent(
    dataset: &Dataset,
    dir: &ScratchDir,
    variant: VariantKind,
    budget: usize,
    parallelism: usize,
    shard_count: usize,
    io_overlap: bool,
) {
    let (pread, pread_files, pread_io) = build_variant(
        dir,
        dataset,
        variant,
        budget,
        parallelism,
        shard_count,
        io_overlap,
        IoBackend::Pread,
    );
    let (mmap, mmap_files, mmap_io) = build_variant(
        dir,
        dataset,
        variant,
        budget,
        parallelism,
        shard_count,
        io_overlap,
        IoBackend::Mmap,
    );
    assert_eq!(
        pread_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        mmap_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "same file set ({variant:?}, p{parallelism}, s{shard_count}, ov{io_overlap})"
    );
    for ((name, a), (_, b)) in pread_files.iter().zip(mmap_files.iter()) {
        assert_eq!(
            a, b,
            "file {name} differs between pread and mmap \
             ({variant:?}, p{parallelism}, s{shard_count}, ov{io_overlap})"
        );
    }
    assert_eq!(
        pread_io, mmap_io,
        "build IoStats totals differ ({variant:?}, p{parallelism}, s{shard_count}, ov{io_overlap})"
    );
    let mut qgen = RandomWalkGenerator::new(64, 24242);
    for _ in 0..6 {
        let q = qgen.next_series();
        let (nn_pread, cost_pread) = pread.exact_knn(&q.values, 5).unwrap();
        let (nn_mmap, cost_mmap) = mmap.exact_knn(&q.values, 5).unwrap();
        assert_eq!(nn_pread, nn_mmap, "exact kNN answers must be identical");
        assert_eq!(cost_pread, cost_mmap, "query costs must be identical");
        let (ap_pread, ap_cost_pread) = pread.approximate_knn(&q.values, 5).unwrap();
        let (ap_mmap, ap_cost_mmap) = mmap.approximate_knn(&q.values, 5).unwrap();
        assert_eq!(ap_pread, ap_mmap, "approximate answers must be identical");
        assert_eq!(ap_cost_pread, ap_cost_mmap, "approximate costs too");
    }
}

/// Acceptance matrix, CTree arm: spilling external sort (the sort's spill
/// runs and the leaf scans both flow through the backend) at parallelism 1
/// and 8, overlapped and alternating pipeline.
#[test]
fn ctree_backend_equivalent_spilling() {
    let dir = ScratchDir::new("be-eq-ctree").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 1808);
    let series = gen.generate(3000);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    for io_overlap in [false, true] {
        for parallelism in [1usize, 8] {
            // 256 KiB budget forces spill runs for 3000 materialized entries.
            assert_equivalent(
                &dataset,
                &dir,
                VariantKind::CTree,
                256 << 10,
                parallelism,
                1,
                io_overlap,
            );
        }
    }
}

/// Acceptance matrix, CLSM arm: compactions (range readers + k-way merges
/// through the backend), sharded and unsharded, at parallelism 1 and 8.
#[test]
fn clsm_backend_equivalent_sharded_and_unsharded() {
    let dir = ScratchDir::new("be-eq-clsm").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 1810);
    let series = gen.generate(2000);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    for shard_count in [1usize, 4] {
        for parallelism in [1usize, 8] {
            assert_equivalent(
                &dataset,
                &dir,
                VariantKind::Clsm,
                1 << 20,
                parallelism,
                shard_count,
                true,
            );
        }
    }
}

/// Streaming BTP: partition merges served from mappings must not change
/// partitions, windowed answers or I/O totals.
#[test]
fn btp_backend_equivalent() {
    let dir = ScratchDir::new("be-eq-btp").unwrap();
    let mut gen = SeismicStreamGenerator::new(64, 177, 0.1);
    let batches: Vec<_> = (0..12).map(|_| gen.next_batch(100)).collect();
    let query = gen.quake_template();

    let mut outcomes = Vec::new();
    for io_backend in [IoBackend::Pread, IoBackend::Mmap] {
        let mut config = StreamingConfig::new(
            VariantKind::Clsm,
            WindowScheme::BoundedTemporalPartitioning,
            64,
        );
        config.buffer_capacity = 100;
        config.io_backend = io_backend;
        let stats = IoStats::shared();
        let subdir = dir.file(&format!("btp-be{io_backend}"));
        let mut index = streaming_index(config, &subdir, std::sync::Arc::clone(&stats)).unwrap();
        for batch in &batches {
            index.ingest_batch(batch).unwrap();
        }
        let mut answers = Vec::new();
        for window in [None, Some((200u64, 700u64))] {
            answers.push(
                index
                    .query_window(&query, 3, window, true)
                    .unwrap()
                    .neighbors,
            );
        }
        outcomes.push((dir_contents(&subdir), stats.snapshot(), answers));
    }
    let (pread_files, pread_io, pread_answers) = &outcomes[0];
    let (mmap_files, mmap_io, mmap_answers) = &outcomes[1];
    assert_eq!(pread_files.len(), mmap_files.len(), "same partition files");
    for ((name, a), (_, b)) in pread_files.iter().zip(mmap_files.iter()) {
        assert_eq!(a, b, "partition file {name} differs");
    }
    assert_eq!(pread_io, mmap_io, "IoStats totals differ");
    assert_eq!(pread_answers, mmap_answers, "windowed answers differ");
}

/// Regression: a CLSM built with the mmap backend runs compactions that
/// delete their input runs.  The delete path must drop each run's mapping
/// *before* the unlink (no reads through mappings of deleted files), and the
/// run files left on disk afterwards must be exactly the live shards the
/// tree still queries — so answers keep matching the pread build even after
/// many compaction-delete cycles.
#[test]
fn compaction_deleted_runs_are_unmapped_before_unlink() {
    use coconut_ctree::sorted_file::SortedSeriesFile;
    use coconut_sax::{SaxConfig, SortableSummarizer};

    // Storage-level ordering check on a real SortedSeriesFile: the mapping
    // created by a block scan is dropped by `delete` even while another
    // handle (here: a clone of the underlying run, as a compaction merge
    // reader would hold) is still alive, and only then is the file removed.
    let dir = ScratchDir::new("be-unmap").unwrap();
    let sax = SaxConfig::new(32, 4, 4);
    let summarizer = SortableSummarizer::new(sax);
    let mut gen = RandomWalkGenerator::new(32, 7);
    let entries: Vec<_> = gen
        .generate(64)
        .iter()
        .map(|s| coconut_ctree::entry::SeriesEntry::from_series(s, s.id, &summarizer, true))
        .collect();
    let file = SortedSeriesFile::build_from_entries_with(
        dir.file("part.run"),
        coconut_ctree::entry::EntryLayout::materialized(sax.key_bits(), sax.series_len),
        sax,
        entries,
        16,
        IoStats::shared(),
        1024,
        1,
        IoBackend::Mmap,
    )
    .unwrap();
    let reader_handle = file.run().clone();
    // A block read through the mmap backend creates the mapping.
    let _ = reader_handle.read_range(0, 16).unwrap();
    assert!(file.is_mapped(), "a mapped read must create the mapping");
    let path = file.run().path().to_path_buf();
    file.delete().unwrap();
    assert!(
        !reader_handle.is_mapped(),
        "delete must drop the mapping before the unlink"
    );
    assert!(!path.exists(), "the partition file must be gone");

    // End-to-end: a compacting CLSM on the mmap backend — inputs of every
    // compaction are deleted while queries keep mapping the survivors — must
    // agree with the pread build query for query.
    let mut gen = RandomWalkGenerator::new(64, 4711);
    let series = gen.generate(1500);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let mut trees = Vec::new();
    for io_backend in [IoBackend::Pread, IoBackend::Mmap] {
        // A small budget gives a ~113-entry buffer: 1500 series force many
        // flushes and several compaction-delete cycles.
        let config = IndexConfig::new(VariantKind::Clsm, 64)
            .materialized(true)
            .with_memory_budget(32 << 10)
            .with_shard_count(2)
            .with_io_backend(io_backend);
        let subdir = dir.file(&format!("clsm-unmap-{io_backend}"));
        let (index, _) = StaticIndex::build(&dataset, config, &subdir, IoStats::shared()).unwrap();
        if let StaticIndex::Clsm(tree) = &index {
            assert!(tree.stats().merges > 0, "compactions must have happened");
        }
        trees.push(index);
    }
    let mut qgen = RandomWalkGenerator::new(64, 99);
    for _ in 0..8 {
        let q = qgen.next_series();
        let (a, ca) = trees[0].exact_knn(&q.values, 4).unwrap();
        let (b, cb) = trees[1].exact_knn(&q.values, 4).unwrap();
        assert_eq!(a, b, "post-compaction answers must match");
        assert_eq!(ca, cb, "post-compaction costs must match");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the acceptance grid: for random dataset sizes,
    /// budgets, worker counts and overlap settings, pread and mmap CTree
    /// builds are file-identical with identical I/O totals.
    #[test]
    fn ctree_backend_equivalence_holds_for_random_configs(
        n in 300usize..1200,
        budget_kib in 64usize..512,
        parallelism in 1usize..9,
        overlap_bit in 0u8..2,
        seed in 0u64..1000,
    ) {
        let io_overlap = overlap_bit == 1;
        let dir = ScratchDir::new("be-eq-prop").unwrap();
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let mut outcomes = Vec::new();
        for io_backend in [IoBackend::Pread, IoBackend::Mmap] {
            let (_, files, io) = build_variant(
                &dir,
                &dataset,
                VariantKind::CTree,
                budget_kib << 10,
                parallelism,
                1,
                io_overlap,
                io_backend,
            );
            outcomes.push((files, io));
        }
        prop_assert_eq!(&outcomes[0].0, &outcomes[1].0);
        prop_assert_eq!(outcomes[0].1, outcomes[1].1);
    }
}
