//! Planner equivalence: the adaptive per-query planner is answer-invisible.
//!
//! The tentpole guarantee of adaptive execution is that the planner only
//! ever assigns knobs that are already proven pure performance knobs, so a
//! planner-routed query is bit-identical — neighbours, distances,
//! tie-breaking, `QueryCost` counters and `IoStats` classification — to
//! *every* fixed-knob configuration, on CTree, CLSM and the partitioned
//! streaming schemes, exact and approximate, single and batched.  And the
//! plan itself is deterministic: identical [`PlannerInputs`] always yield
//! identical [`PlanReport`]s, so every recorded report replays.

use coconut_core::{
    planner, streaming_index, IndexConfig, IoStats, PartitionKind, PartitionedConfig,
    PartitionedStream, PlannerInputs, PlannerMode, ScratchDir, StaticIndex, StreamingConfig,
    VariantKind, WindowScheme,
};
use coconut_parallel::CancelToken;
use coconut_series::generator::{RandomWalkGenerator, SeismicStreamGenerator, SeriesGenerator};
use coconut_series::Dataset;
use proptest::prelude::*;

/// Worker count for the fixed "parallel" comparators (`COCONUT_THREADS`,
/// default 8, legally above this machine's core count).
fn parallel_workers() -> usize {
    std::env::var("COCONUT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 1)
        .unwrap_or(8)
}

fn build_static(
    dir: &ScratchDir,
    dataset: &Dataset,
    variant: VariantKind,
    tag: &str,
    planner_mode: PlannerMode,
    query_parallelism: usize,
) -> (StaticIndex, coconut_core::SharedIoStats) {
    let config = IndexConfig::new(variant, 64)
        .materialized(true)
        .with_memory_budget(1 << 19)
        .with_shard_count(if variant == VariantKind::Clsm { 3 } else { 1 })
        .with_query_parallelism(query_parallelism)
        .with_planner(planner_mode);
    let stats = IoStats::shared();
    let subdir = dir.file(&format!("{}-{tag}", variant.name()));
    let (index, _) =
        StaticIndex::build(dataset, config, &subdir, std::sync::Arc::clone(&stats)).expect("build");
    (index, stats)
}

/// The planner-routed single-query path is bit-identical — answers,
/// `QueryCost` *and* `IoStats` classification — to every fixed
/// `query_parallelism`, on CTree and CLSM, exact and approximate; adaptive
/// queries return a replayable report, fixed queries return none.
#[test]
fn planned_static_queries_match_every_fixed_knob() {
    let dir = ScratchDir::new("peq-static").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 41);
    let series = gen.generate(600);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let workers = parallel_workers();
    let never = CancelToken::never();

    for variant in [VariantKind::CTree, VariantKind::Clsm] {
        let (adaptive, adaptive_io) = build_static(
            &dir,
            &dataset,
            variant,
            "adaptive",
            PlannerMode::Adaptive,
            1,
        );
        let fixed: Vec<_> = [1usize, workers]
            .into_iter()
            .map(|qp| {
                build_static(
                    &dir,
                    &dataset,
                    variant,
                    &format!("fixed-q{qp}"),
                    PlannerMode::Fixed,
                    qp,
                )
            })
            .collect();
        // Index construction itself is knob-invariant.
        for (_, io) in &fixed {
            assert_eq!(
                adaptive_io.snapshot(),
                io.snapshot(),
                "{}: build I/O must not depend on the planner",
                variant.name()
            );
        }

        let mut qgen = RandomWalkGenerator::new(64, 41 ^ 0xbeef);
        for round in 0..6 {
            let q = qgen.next_series();
            let k = 1 + round % 7;
            for exact in [true, false] {
                let ((nn_a, cost_a), report) =
                    adaptive.knn_planned(&q.values, k, exact, &never).unwrap();
                let report = report.expect("adaptive queries must carry a plan report");
                assert_eq!(
                    report.decision,
                    planner::plan(&report.inputs),
                    "every recorded report must replay from its own inputs"
                );
                assert_eq!(report.inputs.k, k);
                assert_eq!(report.inputs.exact, exact);
                assert_eq!(report.inputs.batch_width, 1);
                for (index, _) in &fixed {
                    let ((nn_f, cost_f), no_report) =
                        index.knn_planned(&q.values, k, exact, &never).unwrap();
                    assert!(no_report.is_none(), "fixed queries must not plan");
                    assert_eq!(
                        nn_a,
                        nn_f,
                        "{} k={k} exact={exact}: answers differ",
                        variant.name()
                    );
                    assert_eq!(cost_a, cost_f, "{} k={k} exact={exact}", variant.name());
                }
            }
        }
        // The queries above exercised both trees identically at the I/O
        // layer too (reads *and* their sequential/random classification).
        assert_eq!(
            adaptive_io.snapshot(),
            fixed[0].1.snapshot(),
            "{}: query I/O must not depend on the planner",
            variant.name()
        );
    }
}

/// The planner-routed batch path (one plan for the whole batch, rounds
/// possibly re-chunked) is element-wise identical to the fixed batch path
/// at every batch width.
#[test]
fn planned_batches_match_fixed_at_every_width() {
    let dir = ScratchDir::new("peq-batch").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 57);
    let series = gen.generate(500);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let never = CancelToken::never();

    for variant in [VariantKind::CTree, VariantKind::Clsm] {
        let (adaptive, _) = build_static(
            &dir,
            &dataset,
            variant,
            "badaptive",
            PlannerMode::Adaptive,
            1,
        );
        let (fixed, _) = build_static(&dir, &dataset, variant, "bfixed", PlannerMode::Fixed, 1);
        let mut qgen = RandomWalkGenerator::new(64, 57 ^ 0xf00d);
        for width in [1usize, 3, 17] {
            let queries: Vec<Vec<f32>> = (0..width).map(|_| qgen.next_series().values).collect();
            for exact in [true, false] {
                let (batch_a, report) = adaptive
                    .batch_knn_planned(&queries, 4, exact, &never)
                    .unwrap();
                let report = report.expect("adaptive batches must carry a plan report");
                assert_eq!(report.inputs.batch_width, width);
                assert_eq!(report.decision, planner::plan(&report.inputs));
                let (batch_f, no_report) =
                    fixed.batch_knn_planned(&queries, 4, exact, &never).unwrap();
                assert!(no_report.is_none());
                assert_eq!(
                    batch_a,
                    batch_f,
                    "{} width={width} exact={exact}",
                    variant.name()
                );
            }
        }
    }
}

/// The planner-routed windowed streaming paths (TP and BTP) are identical
/// to the fixed paths — neighbours, costs and partition accounting — for
/// full-history and windowed queries, single and batched.
#[test]
fn planned_stream_queries_match_fixed() {
    let dir = ScratchDir::new("peq-stream").unwrap();
    let mut gen = SeismicStreamGenerator::new(64, 23, 0.1);
    let batches: Vec<_> = (0..8).map(|_| gen.next_batch(60)).collect();
    let query = gen.quake_template();
    let queries: Vec<Vec<f32>> = vec![query.clone(), query.iter().map(|v| v + 0.5).collect()];

    for scheme in [
        WindowScheme::TemporalPartitioning,
        WindowScheme::BoundedTemporalPartitioning,
    ] {
        let mut streams = Vec::new();
        for mode in [PlannerMode::Adaptive, PlannerMode::Fixed] {
            let cfg = PartitionedConfig::new(coconut_sax::SaxConfig::paper_default(64))
                .with_buffer_capacity(60)
                .with_partition_kind(PartitionKind::Sorted)
                .with_planner(mode);
            let subdir = dir.file(&format!("{}-{}", scheme.short_name(), mode.name()));
            std::fs::create_dir_all(&subdir).unwrap();
            let mut stream = match scheme {
                WindowScheme::TemporalPartitioning => {
                    PartitionedStream::temporal_partitioning(cfg, &subdir, IoStats::shared())
                }
                _ => PartitionedStream::bounded_temporal_partitioning(
                    cfg,
                    &subdir,
                    IoStats::shared(),
                ),
            }
            .unwrap();
            for batch in &batches {
                use coconut_core::StreamingIndex;
                stream.ingest_batch(batch).unwrap();
            }
            streams.push(stream);
        }
        let (adaptive, fixed) = (&streams[0], &streams[1]);

        for window in [None, Some((100u64, 350u64)), Some((0u64, 30u64))] {
            for exact in [true, false] {
                let (res_a, report) = adaptive
                    .query_window_planned(&query, 3, window, exact)
                    .unwrap();
                let report = report.expect("adaptive stream queries must plan");
                assert_eq!(report.decision, planner::plan(&report.inputs));
                let (res_f, no_report) = fixed
                    .query_window_planned(&query, 3, window, exact)
                    .unwrap();
                assert!(no_report.is_none());
                assert_eq!(res_a.neighbors, res_f.neighbors, "{scheme:?} {window:?}");
                assert_eq!(res_a.cost, res_f.cost, "{scheme:?} {window:?}");
                assert_eq!(res_a.partitions_accessed, res_f.partitions_accessed);

                let (batch_a, breport) = adaptive
                    .query_window_batch_planned(&queries, 3, window, exact)
                    .unwrap();
                let breport = breport.expect("adaptive stream batches must plan");
                assert_eq!(breport.inputs.batch_width, queries.len());
                assert_eq!(breport.decision, planner::plan(&breport.inputs));
                let (batch_f, _) = fixed
                    .query_window_batch_planned(&queries, 3, window, exact)
                    .unwrap();
                assert_eq!(batch_a.len(), batch_f.len());
                for (a, f) in batch_a.iter().zip(&batch_f) {
                    assert_eq!(a.neighbors, f.neighbors, "{scheme:?} {window:?}");
                    assert_eq!(a.cost, f.cost, "{scheme:?} {window:?}");
                }
            }
        }
    }
}

/// The `streaming_index` factory threads the planner mode through: an
/// adaptive config answers identically to a fixed one via the trait
/// surface.
#[test]
fn streaming_factory_threads_planner_mode() {
    let dir = ScratchDir::new("peq-factory").unwrap();
    let mut gen = SeismicStreamGenerator::new(64, 5, 0.1);
    let batches: Vec<_> = (0..6).map(|_| gen.next_batch(50)).collect();
    let query = gen.quake_template();
    let mut results = Vec::new();
    for mode in [PlannerMode::Fixed, PlannerMode::Adaptive] {
        let config = StreamingConfig::new(
            VariantKind::Clsm,
            WindowScheme::BoundedTemporalPartitioning,
            64,
        )
        .with_planner(mode);
        let mut index = streaming_index(
            config,
            &dir.file(&format!("factory-{}", mode.name())),
            IoStats::shared(),
        )
        .unwrap();
        for batch in &batches {
            index.ingest_batch(batch).unwrap();
        }
        let r = index
            .query_window(&query, 4, Some((20, 200)), true)
            .unwrap();
        results.push((r.neighbors, r.cost));
    }
    assert_eq!(results[0], results[1]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Determinism pin: `plan` is a pure function of the captured inputs —
    /// identical [`PlannerInputs`] always produce identical decisions, and
    /// a [`PlanReport`] always replays (`decision == plan(&inputs)`), so
    /// recorded explains are trustworthy on any host.
    #[test]
    fn identical_inputs_yield_identical_plans(
        footprint_bytes in 0u64..=u64::MAX,
        cache_budget_bytes in 0u64..=u64::MAX,
        unit_count in 0usize..10_000,
        run_count in 0usize..1_000,
        cores in 0usize..256,
        k in 0usize..1_000,
        batch_width in 0usize..100_000,
        exact_bit in 0u8..2,
        random_read_permille in 0u32..=1_000,
    ) {
        let inputs = PlannerInputs {
            footprint_bytes,
            cache_budget_bytes,
            unit_count,
            run_count,
            cores,
            k,
            batch_width,
            exact: exact_bit == 1,
            random_read_permille,
        };
        let first = planner::plan(&inputs);
        let second = planner::plan(&inputs);
        prop_assert_eq!(first, second);
        let report = planner::plan_report(inputs);
        prop_assert_eq!(report.inputs, inputs);
        prop_assert_eq!(report.decision, planner::plan(&inputs));
        // Structural sanity that holds for *every* input: the engine knobs
        // stay in their legal ranges.
        prop_assert!(report.decision.query_parallelism >= 1);
        prop_assert!(report.decision.batch_chunk >= 1);
        prop_assert!(report.decision.prefetch_min_bytes > 0);
    }
}
