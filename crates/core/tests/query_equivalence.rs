//! Parallel/sequential equivalence of the concurrent query engine.
//!
//! The tentpole guarantee of the query fan-out is that `query_parallelism`
//! is a *pure* performance knob: exact and approximate kNN answers
//! (neighbours, distances, tie-breaking order), `QueryCost` counters and
//! `ClsmStats` are bit-identical at every worker count, on sharded and
//! unsharded CLSM trees and on the partitioned streaming schemes —
//! including windowed queries.  These tests compare `query_parallelism = 1`
//! against a many-worker configuration (`COCONUT_THREADS`, default 8,
//! legally above this machine's core count).

use coconut_core::{
    streaming_index, IndexConfig, IoStats, Neighbor, QueryCost, ScratchDir, StaticIndex,
    StreamingConfig, VariantKind, WindowScheme,
};
use coconut_series::generator::{RandomWalkGenerator, SeismicStreamGenerator, SeriesGenerator};
use coconut_series::{Dataset, Series};
use proptest::prelude::*;

/// Worker count for the "parallel" side (`COCONUT_THREADS`, default 8).
fn parallel_workers() -> usize {
    std::env::var("COCONUT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 1)
        .unwrap_or(8)
}

fn build_clsm(
    dir: &ScratchDir,
    dataset: &Dataset,
    shards: usize,
    query_parallelism: usize,
) -> StaticIndex {
    let config = IndexConfig::new(VariantKind::Clsm, 64)
        .materialized(true)
        .with_memory_budget(1 << 19)
        .with_shard_count(shards)
        .with_query_parallelism(query_parallelism);
    let subdir = dir.file(&format!("clsm-s{shards}-q{query_parallelism}"));
    let (index, _) =
        StaticIndex::build(dataset, config, &subdir, IoStats::shared()).expect("build");
    index
}

fn knn(index: &StaticIndex, query: &[f32], k: usize, exact: bool) -> (Vec<Neighbor>, QueryCost) {
    if exact {
        index.exact_knn(query, k).expect("exact query")
    } else {
        index.approximate_knn(query, k).expect("approximate query")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Exact and approximate answers *and costs* are identical at
    /// `query_parallelism` 1 vs N, on unsharded and sharded CLSM trees.
    #[test]
    fn clsm_queries_identical_at_any_query_parallelism(
        n in 400usize..700,
        seed in 0u64..1000,
        k in 1usize..8,
    ) {
        let dir = ScratchDir::new("qeq-clsm").unwrap();
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let workers = parallel_workers();
        for shards in [1usize, 4] {
            let seq = build_clsm(&dir, &dataset, shards, 1);
            let par = build_clsm(&dir, &dataset, shards, workers);
            let mut qgen = RandomWalkGenerator::new(64, seed ^ 0xabcd);
            for _ in 0..6 {
                let q = qgen.next_series();
                for exact in [true, false] {
                    let (nn_s, cost_s) = knn(&seq, &q.values, k, exact);
                    let (nn_p, cost_p) = knn(&par, &q.values, k, exact);
                    prop_assert_eq!(&nn_s, &nn_p,
                        "answers differ (shards={}, exact={})", shards, exact);
                    prop_assert_eq!(cost_s, cost_p,
                        "costs differ (shards={}, exact={})", shards, exact);
                }
            }
        }
    }

    /// `ClsmStats` (flushes, merges, write amplification) do not depend on
    /// either parallelism knob, sharded or not.
    #[test]
    fn clsm_stats_identical_at_any_parallelism(
        n in 400usize..700,
        seed in 0u64..1000,
    ) {
        let dir = ScratchDir::new("qeq-stats").unwrap();
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let workers = parallel_workers();
        for shards in [1usize, 3] {
            let mut stats = Vec::new();
            for (build_par, query_par) in [(1, 1), (workers, workers)] {
                let config = IndexConfig::new(VariantKind::Clsm, 64)
                    .materialized(true)
                    .with_memory_budget(1 << 19)
                    .with_shard_count(shards)
                    .with_parallelism(build_par)
                    .with_query_parallelism(query_par);
                let subdir = dir.file(&format!("s{shards}-p{build_par}"));
                let (index, _) =
                    StaticIndex::build(&dataset, config, &subdir, IoStats::shared()).unwrap();
                let StaticIndex::Clsm(tree) = index else { panic!("expected CLSM") };
                stats.push((
                    tree.stats(),
                    tree.num_runs(),
                    tree.num_shards(),
                    tree.footprint_bytes(),
                ));
            }
            prop_assert_eq!(stats[0], stats[1], "shards={}", shards);
        }
    }

    /// Windowed streaming queries (TP and BTP) are identical at
    /// `query_parallelism` 1 vs N.
    #[test]
    fn windowed_stream_queries_identical_at_any_query_parallelism(
        seed in 0u64..1000,
        k in 1usize..5,
    ) {
        let dir = ScratchDir::new("qeq-stream").unwrap();
        let mut gen = SeismicStreamGenerator::new(64, seed, 0.1);
        let batches: Vec<_> = (0..10).map(|_| gen.next_batch(60)).collect();
        let query = gen.quake_template();
        let workers = parallel_workers();
        for scheme in [
            WindowScheme::TemporalPartitioning,
            WindowScheme::BoundedTemporalPartitioning,
        ] {
            let mut indexes = Vec::new();
            for query_par in [1usize, workers] {
                let mut config = StreamingConfig::new(VariantKind::Clsm, scheme, 64);
                config.buffer_capacity = 60;
                config.query_parallelism = query_par;
                let mut index = streaming_index(
                    config,
                    &dir.file(&format!("{}-q{query_par}", scheme.short_name())),
                    IoStats::shared(),
                )
                .unwrap();
                for batch in &batches {
                    index.ingest_batch(batch).unwrap();
                }
                indexes.push(index);
            }
            for window in [None, Some((150u64, 450u64)), Some((0u64, 40u64))] {
                for exact in [true, false] {
                    let a = indexes[0].query_window(&query, k, window, exact).unwrap();
                    let b = indexes[1].query_window(&query, k, window, exact).unwrap();
                    prop_assert_eq!(&a.neighbors, &b.neighbors,
                        "{} window {:?} exact {}", scheme.short_name(), window, exact);
                    prop_assert_eq!(a.cost, b.cost,
                        "{} window {:?} exact {}", scheme.short_name(), window, exact);
                    prop_assert_eq!(a.partitions_accessed, b.partitions_accessed);
                }
            }
        }
    }
}

/// Regression test for deterministic tie-breaking: on a dataset where every
/// series is identical, all distances tie, so every backend must order the
/// k results by `(distance, id, timestamp)` — i.e. ascending id — and agree
/// with brute force byte-for-byte at every worker count.
#[test]
fn all_duplicates_dataset_orders_ties_by_id_everywhere() {
    let dir = ScratchDir::new("qeq-dups").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 7);
    let template = gen.next_series();
    let series: Vec<Series> = (0..300u64)
        .map(|id| Series::new(id, template.values.clone()))
        .collect();
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let query: Vec<f32> = template.values.iter().map(|v| v + 0.25).collect();
    let k = 9;

    let expected = coconut_series::distance::brute_force_knn(
        &query,
        series.iter().map(|s| (s.id, s.values.as_slice())),
        k,
    );
    let expected_ids: Vec<u64> = (0..k as u64).collect();
    assert_eq!(
        expected.iter().map(|n| n.id).collect::<Vec<_>>(),
        expected_ids,
        "brute force must order equal distances by ascending id"
    );

    let workers = parallel_workers();
    for variant in VariantKind::all() {
        for query_par in [1usize, workers] {
            let config = IndexConfig::new(variant, 64)
                .materialized(true)
                .with_memory_budget(1 << 19)
                .with_query_parallelism(query_par);
            let subdir = dir.file(&format!("{}-q{query_par}", variant.name()));
            let (index, _) =
                StaticIndex::build(&dataset, config, &subdir, IoStats::shared()).unwrap();
            let (nn, _) = index.exact_knn(&query, k).unwrap();
            assert_eq!(nn, expected, "{} q{query_par}", variant.name());
        }
    }

    // Streaming: identical values arriving at increasing timestamps with
    // repeating ids tie on (distance, id) and fall through to the timestamp.
    let mut config = StreamingConfig::new(
        VariantKind::Clsm,
        WindowScheme::BoundedTemporalPartitioning,
        64,
    );
    config.buffer_capacity = 50;
    for query_par in [1usize, workers] {
        config.query_parallelism = query_par;
        let mut index = streaming_index(
            config,
            &dir.file(&format!("stream-q{query_par}")),
            IoStats::shared(),
        )
        .unwrap();
        for ts in 0..4u64 {
            let batch: Vec<coconut_series::TimestampedSeries> = (0..50u64)
                .map(|id| coconut_series::TimestampedSeries {
                    series: Series::new(id, template.values.clone()),
                    timestamp: ts,
                })
                .collect();
            index.ingest_batch(&batch).unwrap();
        }
        let result = index.query_window(&query, 6, None, true).unwrap();
        let keys: Vec<(u64, u64)> = result
            .neighbors
            .iter()
            .map(|n| (n.id, n.timestamp))
            .collect();
        assert_eq!(
            keys,
            vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1)],
            "equal-distance streaming ties must order by (id, timestamp), q{query_par}"
        );
    }
}

/// The satellite guarantee in isolation: the *parallel* cost equals the
/// *sequential* cost on the same index — per-worker counters are summed
/// exactly, nothing is lost or double-counted across threads.
#[test]
fn parallel_query_cost_equals_sequential_cost() {
    let dir = ScratchDir::new("qeq-cost").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 99);
    let series = gen.generate(800);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let seq = build_clsm(&dir, &dataset, 4, 1);
    let par = build_clsm(&dir, &dataset, 4, parallel_workers());
    let mut qgen = RandomWalkGenerator::new(64, 123);
    let mut nonzero = false;
    for _ in 0..10 {
        let q = qgen.next_series();
        let (_, cost_s) = seq.exact_knn(&q.values, 5).unwrap();
        let (_, cost_p) = par.exact_knn(&q.values, 5).unwrap();
        assert_eq!(cost_s, cost_p);
        nonzero |= cost_s.entries_examined > 0 && cost_s.blocks_read > 0;
    }
    assert!(nonzero, "costs must actually be exercised");
}
