//! Cross-crate integration tests: every variant of the Figure-1 matrix must
//! agree with brute force on exact answers, and the streaming schemes must
//! agree with each other under windowed queries.

use std::sync::Arc;

use coconut_core::{
    streaming_index, Dataset, IndexConfig, IoStats, ScratchDir, StaticIndex, StreamingConfig,
    VariantKind, WindowScheme,
};
use coconut_series::distance::brute_force_knn;
use coconut_series::generator::{RandomWalkGenerator, SeismicStreamGenerator, SeriesGenerator};

#[test]
fn all_static_variants_match_brute_force_on_many_queries() {
    let dir = ScratchDir::new("integration-static").unwrap();
    let len = 96;
    let mut gen = RandomWalkGenerator::new(len, 11);
    let series = gen.generate(500);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let queries = gen.generate(10);

    for variant in VariantKind::all() {
        for materialized in [false, true] {
            let config = IndexConfig::new(variant, len)
                .materialized(materialized)
                .with_memory_budget(1 << 20);
            let stats = IoStats::shared();
            let sub = dir.file(&format!("{}-{materialized}", config.display_name()));
            let (index, _) =
                StaticIndex::build(&dataset, config, &sub, Arc::clone(&stats)).unwrap();
            for q in &queries {
                let expected = brute_force_knn(
                    &q.values,
                    series.iter().map(|s| (s.id, s.values.as_slice())),
                    3,
                );
                let (got, _) = index.exact_knn(&q.values, 3).unwrap();
                assert_eq!(got.len(), 3, "{}", config.display_name());
                for (g, e) in got.iter().zip(expected.iter()) {
                    assert!(
                        (g.squared_distance - e.squared_distance).abs() < 1e-6,
                        "{} disagrees with brute force",
                        config.display_name()
                    );
                }
            }
        }
    }
}

#[test]
fn approximate_answers_are_reasonable_across_variants() {
    // Approximate queries carry no guarantee, but for a perturbed member the
    // answer must be very close to the true nearest neighbour.
    let dir = ScratchDir::new("integration-approx").unwrap();
    let len = 64;
    let mut gen = RandomWalkGenerator::new(len, 13);
    let series = gen.generate(800);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    for variant in VariantKind::all() {
        let config = IndexConfig::new(variant, len).materialized(true);
        let stats = IoStats::shared();
        let sub = dir.file(&format!("approx-{}", config.display_name()));
        let (index, _) = StaticIndex::build(&dataset, config, &sub, stats).unwrap();
        let mut ok = 0;
        for target in series.iter().step_by(100) {
            let query: Vec<f32> = target.values.iter().map(|v| v + 0.002).collect();
            let (got, _) = index.approximate_knn(&query, 1).unwrap();
            if !got.is_empty() && got[0].id == target.id {
                ok += 1;
            }
        }
        assert!(
            ok >= 6,
            "{}: only {ok}/8 approximate probes found the target",
            config.display_name()
        );
    }
}

#[test]
fn streaming_schemes_agree_on_windowed_exact_queries() {
    let dir = ScratchDir::new("integration-stream").unwrap();
    let len = 64;
    let mut gen = SeismicStreamGenerator::new(len, 17, 0.1);
    let batches: Vec<_> = (0..10).map(|_| gen.next_batch(50)).collect();
    let all: Vec<_> = batches.iter().flatten().cloned().collect();
    let query = gen.quake_template();

    let configs = [
        StreamingConfig::new(VariantKind::Clsm, WindowScheme::PostProcessing, len),
        StreamingConfig::new(VariantKind::Ads, WindowScheme::PostProcessing, len),
        StreamingConfig::new(VariantKind::CTree, WindowScheme::TemporalPartitioning, len),
        StreamingConfig::new(VariantKind::Ads, WindowScheme::TemporalPartitioning, len),
        StreamingConfig::new(
            VariantKind::Clsm,
            WindowScheme::BoundedTemporalPartitioning,
            len,
        ),
    ];
    for window in [None, Some((120u64, 380u64)), Some((480u64, 499u64))] {
        let expected = brute_force_knn(
            &query,
            all.iter()
                .filter(|a| {
                    window
                        .map(|(s, e)| a.timestamp >= s && a.timestamp <= e)
                        .unwrap_or(true)
                })
                .map(|a| (a.series.id, a.series.values.as_slice())),
            2,
        );
        for (i, cfg) in configs.iter().enumerate() {
            let mut cfg = *cfg;
            cfg.buffer_capacity = 50;
            let stats = IoStats::shared();
            let mut index =
                streaming_index(cfg, &dir.file(&format!("s{i}-{window:?}")), stats).unwrap();
            for b in &batches {
                index.ingest_batch(b).unwrap();
            }
            let r = index.query_window(&query, 2, window, true).unwrap();
            for (g, e) in r.neighbors.iter().zip(expected.iter()) {
                assert!(
                    (g.squared_distance - e.squared_distance).abs() < 1e-6,
                    "scheme {} window {:?} disagrees with brute force",
                    cfg.display_name(),
                    window
                );
            }
        }
    }
}
