//! Kernel-backend equivalence of the whole engine, end to end.
//!
//! `crates/series/tests/kernel_equivalence.rs` proves the raw kernels are
//! bit-identical across backends; this test re-proves it where it matters:
//! a full index build + query run per backend must produce byte-identical
//! index files, identical kNN answers (exact and approximate), identical
//! `QueryCost`s and identical `IoStats` totals — the same discipline the
//! `parallelism` / `io_overlap` / `io_backend` knobs are held to.
//!
//! `force_backend` pins a process-wide atomic, so everything runs inside
//! one sequential `#[test]` (Rust runs tests in one process on many
//! threads; two tests pinning different backends would race).

use coconut_core::{IndexConfig, IoStats, IoStatsSnapshot, ScratchDir, StaticIndex, VariantKind};
use coconut_ctree::kernels::{active_backend, force_backend, KernelBackend};
use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
use coconut_series::Dataset;

/// Recursively collects `(relative name, bytes)` of all files under `dir`.
fn dir_contents(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("prefix")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("read file")));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Everything a build + query run observably produces under one backend.
struct Outcome {
    files: Vec<(String, Vec<u8>)>,
    build_io: IoStatsSnapshot,
    answers: Vec<String>,
}

fn run_variant(
    dir: &ScratchDir,
    dataset: &Dataset,
    variant: VariantKind,
    backend: KernelBackend,
) -> Outcome {
    force_backend(backend);
    let config = IndexConfig::new(variant, 64)
        .materialized(true)
        .with_memory_budget(128 << 10)
        .with_shard_count(if variant == VariantKind::Clsm { 2 } else { 1 });
    let subdir = dir.file(&format!("{}-{}", variant.name(), backend));
    let stats = IoStats::shared();
    let (index, _report) =
        StaticIndex::build(dataset, config, &subdir, std::sync::Arc::clone(&stats)).expect("build");
    let files = dir_contents(&subdir);
    let build_io = stats.snapshot();

    let mut answers = Vec::new();
    let mut qgen = RandomWalkGenerator::new(64, 20626);
    for _ in 0..8 {
        let q = qgen.next_series();
        let (nn, cost) = index.exact_knn(&q.values, 5).expect("exact");
        answers.push(format!("exact {nn:?} {cost:?}"));
        let (ap, ap_cost) = index.approximate_knn(&q.values, 5).expect("approx");
        answers.push(format!("approx {ap:?} {ap_cost:?}"));
    }
    Outcome {
        files,
        build_io,
        answers,
    }
}

/// One sequential test over the whole grid: every available SIMD backend
/// must match the scalar reference on files, I/O totals, answers and costs
/// for both static variants.
#[test]
fn all_backends_build_and_query_identically() {
    let initial = active_backend();
    let dir = ScratchDir::new("kernel-be-eq").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 2024);
    let series = gen.generate(1500);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();

    for variant in [VariantKind::CTree, VariantKind::Clsm] {
        let reference = run_variant(&dir, &dataset, variant, KernelBackend::Scalar);
        for backend in KernelBackend::available_backends() {
            if backend == KernelBackend::Scalar {
                continue;
            }
            let got = run_variant(&dir, &dataset, variant, backend);
            assert_eq!(
                reference.files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
                got.files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
                "{variant:?}: same file set under {backend}"
            );
            for ((name, a), (_, b)) in reference.files.iter().zip(got.files.iter()) {
                assert_eq!(
                    a, b,
                    "{variant:?}: index file {name} differs between scalar and {backend}"
                );
            }
            assert_eq!(
                reference.build_io, got.build_io,
                "{variant:?}: build IoStats totals differ under {backend}"
            );
            assert_eq!(
                reference.answers, got.answers,
                "{variant:?}: answers / QueryCosts differ under {backend}"
            );
        }
    }
    force_backend(initial);
}
