//! Overlapped/sequential I/O equivalence of the whole build pipeline.
//!
//! The tentpole guarantee of the overlapped-I/O pipeline is that
//! `io_overlap` is a *pure* performance knob: double-buffered run
//! generation and prefetching merge readers change *when* each I/O happens,
//! never which I/Os happen, so for every variant the on-disk index is
//! byte-identical, every kNN answer is identical, and the `IoStats` totals
//! (reads/writes, sequential/random counts) are identical at either
//! setting — on spilling and in-memory workloads, sharded and unsharded,
//! at build `parallelism` 1 and 8 (the acceptance matrix of this PR).

use coconut_core::{
    streaming_index, IndexConfig, IoStats, IoStatsSnapshot, ScratchDir, StaticIndex,
    StreamingConfig, VariantKind, WindowScheme,
};
use coconut_series::generator::{RandomWalkGenerator, SeismicStreamGenerator, SeriesGenerator};
use coconut_series::Dataset;
use proptest::prelude::*;

/// Recursively collects `(relative name, bytes)` of all files under `dir`.
fn dir_contents(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("prefix")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("read file")));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[allow(clippy::type_complexity)]
fn build_variant(
    dir: &ScratchDir,
    dataset: &Dataset,
    variant: VariantKind,
    budget: usize,
    parallelism: usize,
    shard_count: usize,
    io_overlap: bool,
) -> (StaticIndex, Vec<(String, Vec<u8>)>, IoStatsSnapshot) {
    let config = IndexConfig::new(variant, 64)
        .materialized(true)
        .with_memory_budget(budget)
        .with_parallelism(parallelism)
        .with_shard_count(shard_count)
        .with_io_overlap(io_overlap);
    let subdir = dir.file(&format!(
        "{}-p{parallelism}-s{shard_count}-ov{io_overlap}",
        variant.name()
    ));
    let stats = IoStats::shared();
    let (index, _report) =
        StaticIndex::build(dataset, config, &subdir, std::sync::Arc::clone(&stats)).expect("build");
    let files = dir_contents(&subdir);
    (index, files, stats.snapshot())
}

fn assert_equivalent(
    dataset: &Dataset,
    dir: &ScratchDir,
    variant: VariantKind,
    budget: usize,
    parallelism: usize,
    shard_count: usize,
) {
    let (seq, seq_files, seq_io) = build_variant(
        dir,
        dataset,
        variant,
        budget,
        parallelism,
        shard_count,
        false,
    );
    let (ovl, ovl_files, ovl_io) = build_variant(
        dir,
        dataset,
        variant,
        budget,
        parallelism,
        shard_count,
        true,
    );
    assert_eq!(
        seq_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        ovl_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "same file set ({variant:?}, p{parallelism}, s{shard_count})"
    );
    for ((name, a), (_, b)) in seq_files.iter().zip(ovl_files.iter()) {
        assert_eq!(
            a, b,
            "file {name} differs between io_overlap off and on \
             ({variant:?}, p{parallelism}, s{shard_count})"
        );
    }
    assert_eq!(
        seq_io, ovl_io,
        "IoStats totals differ ({variant:?}, p{parallelism}, s{shard_count})"
    );
    let mut qgen = RandomWalkGenerator::new(64, 4242);
    for _ in 0..6 {
        let q = qgen.next_series();
        let (nn_seq, cost_seq) = seq.exact_knn(&q.values, 5).unwrap();
        let (nn_ovl, cost_ovl) = ovl.exact_knn(&q.values, 5).unwrap();
        assert_eq!(nn_seq, nn_ovl, "exact kNN answers must be identical");
        assert_eq!(cost_seq, cost_ovl, "query costs must be identical");
        let (ap_seq, _) = seq.approximate_knn(&q.values, 5).unwrap();
        let (ap_ovl, _) = ovl.approximate_knn(&q.values, 5).unwrap();
        assert_eq!(ap_seq, ap_ovl, "approximate answers must be identical");
    }
}

/// Acceptance matrix: CTree (spilling external sort) at parallelism 1 and 8.
#[test]
fn ctree_overlap_equivalent_spilling() {
    let dir = ScratchDir::new("ovl-eq-ctree").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 808);
    let series = gen.generate(3000);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    for parallelism in [1usize, 8] {
        // 256 KiB budget forces spill runs for 3000 materialized entries.
        assert_equivalent(
            &dataset,
            &dir,
            VariantKind::CTree,
            256 << 10,
            parallelism,
            1,
        );
    }
}

/// In-memory workload: the budget swallows the whole input, so run
/// generation degenerates to a plain in-memory sort in both modes.
#[test]
fn ctree_overlap_equivalent_in_memory() {
    let dir = ScratchDir::new("ovl-eq-ctree-mem").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 809);
    let series = gen.generate(800);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    assert_equivalent(&dataset, &dir, VariantKind::CTree, 64 << 20, 8, 1);
}

/// CLSM compactions (prefetching shard merges), unsharded and sharded.
#[test]
fn clsm_overlap_equivalent_sharded_and_unsharded() {
    let dir = ScratchDir::new("ovl-eq-clsm").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 810);
    let series = gen.generate(2000);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    for shard_count in [1usize, 4] {
        for parallelism in [1usize, 8] {
            assert_equivalent(
                &dataset,
                &dir,
                VariantKind::Clsm,
                1 << 20,
                parallelism,
                shard_count,
            );
        }
    }
}

/// Streaming BTP: prefetching partition merges must not change partitions,
/// answers or I/O totals.
#[test]
fn btp_overlap_equivalent() {
    let dir = ScratchDir::new("ovl-eq-btp").unwrap();
    let mut gen = SeismicStreamGenerator::new(64, 77, 0.1);
    let batches: Vec<_> = (0..12).map(|_| gen.next_batch(100)).collect();
    let query = gen.quake_template();

    let mut outcomes = Vec::new();
    for io_overlap in [false, true] {
        let mut config = StreamingConfig::new(
            VariantKind::Clsm,
            WindowScheme::BoundedTemporalPartitioning,
            64,
        );
        config.buffer_capacity = 100;
        config.io_overlap = io_overlap;
        let stats = IoStats::shared();
        let subdir = dir.file(&format!("btp-ov{io_overlap}"));
        let mut index = streaming_index(config, &subdir, std::sync::Arc::clone(&stats)).unwrap();
        for batch in &batches {
            index.ingest_batch(batch).unwrap();
        }
        let mut answers = Vec::new();
        for window in [None, Some((200u64, 700u64))] {
            answers.push(
                index
                    .query_window(&query, 3, window, true)
                    .unwrap()
                    .neighbors,
            );
        }
        outcomes.push((dir_contents(&subdir), stats.snapshot(), answers));
    }
    let (seq_files, seq_io, seq_answers) = &outcomes[0];
    let (ovl_files, ovl_io, ovl_answers) = &outcomes[1];
    assert_eq!(seq_files.len(), ovl_files.len(), "same partition file set");
    for ((name, a), (_, b)) in seq_files.iter().zip(ovl_files.iter()) {
        assert_eq!(a, b, "partition file {name} differs");
    }
    assert_eq!(seq_io, ovl_io, "IoStats totals differ");
    assert_eq!(seq_answers, ovl_answers, "windowed answers differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the acceptance matrix: for random dataset sizes,
    /// budgets and worker counts, overlapped and sequential CTree builds
    /// are file-identical with identical I/O totals and identical answers.
    #[test]
    fn ctree_overlap_equivalence_holds_for_random_configs(
        n in 300usize..1200,
        budget_kib in 64usize..512,
        parallelism in 1usize..9,
        seed in 0u64..1000,
    ) {
        let dir = ScratchDir::new("ovl-eq-prop").unwrap();
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let mut outcomes = Vec::new();
        for io_overlap in [false, true] {
            let (_, files, io) = build_variant(
                &dir,
                &dataset,
                VariantKind::CTree,
                budget_kib << 10,
                parallelism,
                1,
                io_overlap,
            );
            outcomes.push((files, io));
        }
        prop_assert_eq!(&outcomes[0].0, &outcomes[1].0);
        prop_assert_eq!(outcomes[0].1, outcomes[1].1);
    }
}
