//! Parallel/sequential equivalence of the whole build pipeline.
//!
//! The tentpole guarantee of the multi-core pipeline is that `parallelism`
//! is a *pure* performance knob: for every variant the on-disk index is
//! byte-identical and every query answer is identical at any worker count.
//! These tests build each index at `parallelism = 1` and `parallelism = 8`
//! (well above this machine's core count, which is legal) and compare both.

use coconut_core::{
    streaming_index, IndexConfig, IoStats, ScratchDir, StaticIndex, StreamingConfig, VariantKind,
    WindowScheme,
};
use coconut_series::generator::{RandomWalkGenerator, SeismicStreamGenerator, SeriesGenerator};
use coconut_series::Dataset;

fn build_at(
    dir: &ScratchDir,
    dataset: &Dataset,
    variant: VariantKind,
    parallelism: usize,
) -> (StaticIndex, std::path::PathBuf) {
    let config = IndexConfig::new(variant, 64)
        .materialized(true)
        .with_memory_budget(1 << 20)
        .with_parallelism(parallelism);
    let subdir = dir.file(&format!("{}-p{parallelism}", variant.name()));
    let (index, _report) =
        StaticIndex::build(dataset, config, &subdir, IoStats::shared()).expect("build");
    (index, subdir)
}

/// Recursively collects `(relative name, bytes)` of all files under `dir`.
fn dir_contents(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("prefix")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("read file")));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn ctree_parallel_build_is_byte_identical_and_answers_match() {
    let dir = ScratchDir::new("par-eq-ctree").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 321);
    let series = gen.generate(3000);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();

    let (seq, seq_dir) = build_at(&dir, &dataset, VariantKind::CTree, 1);
    let (par, par_dir) = build_at(&dir, &dataset, VariantKind::CTree, 8);

    // Every file of the index directory must match byte-for-byte (the
    // external-sort scratch runs are deleted; what remains is the index).
    let seq_files = dir_contents(&seq_dir);
    let par_files = dir_contents(&par_dir);
    assert_eq!(
        seq_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        par_files.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "same file set"
    );
    for ((name, a), (_, b)) in seq_files.iter().zip(par_files.iter()) {
        assert_eq!(a, b, "file {name} differs between parallelism 1 and 8");
    }

    let mut qgen = RandomWalkGenerator::new(64, 99);
    for _ in 0..10 {
        let q = qgen.next_series();
        let (nn_seq, _) = seq.exact_knn(&q.values, 5).unwrap();
        let (nn_par, _) = par.exact_knn(&q.values, 5).unwrap();
        assert_eq!(nn_seq, nn_par, "exact kNN answers must be identical");
        let (ap_seq, _) = seq.approximate_knn(&q.values, 5).unwrap();
        let (ap_par, _) = par.approximate_knn(&q.values, 5).unwrap();
        assert_eq!(ap_seq, ap_par, "approximate answers must be identical");
    }
}

#[test]
fn clsm_parallel_build_answers_match() {
    let dir = ScratchDir::new("par-eq-clsm").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 654);
    let series = gen.generate(2500);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();

    let (seq, seq_dir) = build_at(&dir, &dataset, VariantKind::Clsm, 1);
    let (par, par_dir) = build_at(&dir, &dataset, VariantKind::Clsm, 8);

    // CLSM run files are byte-identical too: flush batches and sort order do
    // not depend on the worker count.
    let seq_files = dir_contents(&seq_dir);
    let par_files = dir_contents(&par_dir);
    assert_eq!(seq_files.len(), par_files.len());
    for ((name, a), (_, b)) in seq_files.iter().zip(par_files.iter()) {
        assert_eq!(a, b, "file {name} differs between parallelism 1 and 8");
    }

    let mut qgen = RandomWalkGenerator::new(64, 7);
    for _ in 0..10 {
        let q = qgen.next_series();
        let (nn_seq, _) = seq.exact_knn(&q.values, 3).unwrap();
        let (nn_par, _) = par.exact_knn(&q.values, 3).unwrap();
        assert_eq!(nn_seq, nn_par);
    }
}

#[test]
fn streaming_btp_parallel_ingest_answers_match() {
    let dir = ScratchDir::new("par-eq-btp").unwrap();
    let mut gen = SeismicStreamGenerator::new(64, 31, 0.1);
    let batches: Vec<_> = (0..12).map(|_| gen.next_batch(100)).collect();
    let query = gen.quake_template();

    let mut indexes = Vec::new();
    for parallelism in [1usize, 8] {
        let config = StreamingConfig::new(
            VariantKind::Clsm,
            WindowScheme::BoundedTemporalPartitioning,
            64,
        );
        let mut config = config;
        config.buffer_capacity = 100;
        config.parallelism = parallelism;
        let mut index = streaming_index(
            config,
            &dir.file(&format!("btp-p{parallelism}")),
            IoStats::shared(),
        )
        .unwrap();
        for batch in &batches {
            index.ingest_batch(batch).unwrap();
        }
        indexes.push(index);
    }
    for window in [None, Some((200u64, 700u64))] {
        let a = indexes[0].query_window(&query, 3, window, true).unwrap();
        let b = indexes[1].query_window(&query, 3, window, true).unwrap();
        assert_eq!(a.neighbors, b.neighbors, "window {window:?}");
    }
}
