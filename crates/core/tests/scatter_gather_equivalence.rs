//! Scatter-gather equivalence: the distributed query path answers
//! bit-identically to single-node execution.
//!
//! Three distinct identity claims are pinned here (see DESIGN.md,
//! "Scatter-gather"):
//!
//! 1. **Exact-answer identity** — at every shard count, exact kNN through
//!    the coordinator returns the same `(id, timestamp, squared_distance)`
//!    lists, bit-for-bit, as one unsharded index over the same data.
//!    Per-shard true top-k over disjoint id ranges, merged with the
//!    engine's own total order, *is* the global top-k, and surviving
//!    candidates get their distances fully computed by the same kernel.
//! 2. **Topology identity** — a coordinator over in-process
//!    `LocalBackend`s and one over `RemoteBackend`s (real TCP workers)
//!    produce identical responses in their entirety: answers, merged
//!    `QueryCost`, everything but wall-clock.  The wire adds nothing and
//!    loses nothing (`coconut-json` prints `f64` shortest-round-trip).
//! 3. **N=1 degeneracy** — a coordinator over one shard is the identity
//!    function around a plain `PalmServer`: answers *and* `QueryCost`
//!    match the undistributed service bit-for-bit, exact and approximate
//!    alike.
//!
//! Approximate answers and costs at N>1 are deliberately *not* compared
//! against the unsharded index: N shards hold N differently-shaped trees
//! whose pruning bounds differ, so only claims 1-3 are sound — and they
//! are the ones the coordinator's correctness rests on.

use std::sync::Arc;

use coconut_core::backend::{ExecutionBackend, LocalBackend};
use coconut_core::palm::{PalmRequest, PalmResponse, PalmServer};
use coconut_core::{Dataset, IoBackend, PlannerMode, VariantKind};
use coconut_json::{Json, ToJson};
use coconut_net::{Coordinator, NetServer, RemoteBackend, ServerConfig};
use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
use coconut_storage::ScratchDir;
use proptest::prelude::*;

const SERIES_LEN: usize = 64;

fn build_request(name: &str, dataset_path: &str) -> PalmRequest {
    PalmRequest::BuildIndex {
        name: name.into(),
        dataset_path: dataset_path.into(),
        variant: VariantKind::Clsm,
        materialized: true,
        memory_budget_bytes: 4 << 20,
        parallelism: 1,
        query_parallelism: 1,
        shard_count: 1,
        range: None,
        io_overlap: true,
        io_backend: IoBackend::Pread,
        planner: PlannerMode::Fixed,
        compression: coconut_storage::Compression::Off,
    }
}

fn query_request(name: &str, query: &[f32], k: usize, exact: bool) -> PalmRequest {
    PalmRequest::Query {
        name: name.into(),
        query: query.to_vec(),
        k,
        exact,
    }
}

/// A coordinator over `shards` in-process workers, plus the workers
/// themselves (so callers can build through the coordinator).
fn local_fleet(dir: &ScratchDir, tag: &str, shards: usize) -> Coordinator {
    let backends: Vec<Arc<dyn ExecutionBackend>> = (0..shards)
        .map(|shard| {
            let palm = Arc::new(PalmServer::new(dir.file(&format!("{tag}-w{shard}"))));
            Arc::new(LocalBackend::new(palm)) as Arc<dyn ExecutionBackend>
        })
        .collect();
    Coordinator::new(backends)
}

/// A coordinator over `shards` real TCP workers.  The returned servers
/// must stay alive while the coordinator is used.
fn remote_fleet(dir: &ScratchDir, tag: &str, shards: usize) -> (Coordinator, Vec<NetServer>) {
    let mut servers = Vec::with_capacity(shards);
    let mut backends: Vec<Arc<dyn ExecutionBackend>> = Vec::with_capacity(shards);
    for shard in 0..shards {
        let palm = Arc::new(PalmServer::new(dir.file(&format!("{tag}-w{shard}"))));
        let server = NetServer::spawn(palm, ServerConfig::default()).unwrap();
        backends.push(Arc::new(RemoteBackend::new(
            server.local_addr().to_string(),
        )));
        servers.push(server);
    }
    (Coordinator::new(backends), servers)
}

/// Response JSON with the named members removed at any depth.
fn strip_keys(json: Json, keys: &[&str]) -> Json {
    match json {
        Json::Obj(members) => Json::Obj(
            members
                .into_iter()
                .filter(|(key, _)| !keys.contains(&key.as_str()))
                .map(|(key, value)| (key, strip_keys(value, keys)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(|v| strip_keys(v, keys)).collect()),
        other => other,
    }
}

/// Everything but wall-clock: the comparison for claims that include
/// `QueryCost` identity (same index shapes on both sides).
fn normalized(response: &PalmResponse) -> String {
    strip_keys(response.to_json(), &["elapsed_ms"]).to_string()
}

/// Answers only — `(id, timestamp, squared_distance)` lists and their
/// derived distances.  Used where the index *shapes* differ (N shards vs
/// one tree), so costs legitimately diverge while answers must not.
fn answers(response: &PalmResponse) -> String {
    strip_keys(response.to_json(), &["elapsed_ms", "cost", "explain"]).to_string()
}

fn dataset(dir: &ScratchDir, n: usize, seed: u64) -> (String, Vec<coconut_series::Series>) {
    let mut gen = RandomWalkGenerator::new(SERIES_LEN, seed);
    let series = gen.generate(n);
    let path = dir.file("raw.bin");
    Dataset::create_from_series(&path, &series).unwrap();
    (path.to_string_lossy().into_owned(), series)
}

fn queries(series: &[coconut_series::Series], count: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            let base = &series[(i * 37) % series.len()].values;
            base.iter().map(|v| v + 0.01 * (i as f32 + 1.0)).collect()
        })
        .collect()
}

/// Claim 1: exact answers through the coordinator are bit-identical to
/// one unsharded index, across shard counts and batch widths.
#[test]
fn exact_answers_match_single_node_at_every_shard_count() {
    let dir = ScratchDir::new("sg-exact").unwrap();
    let (dataset_path, series) = dataset(&dir, 240, 7);
    let single = PalmServer::new(dir.file("single"));
    assert!(matches!(
        single.handle(build_request("idx", &dataset_path)),
        PalmResponse::Built { .. }
    ));
    let qs = queries(&series, 8);
    for shards in [1usize, 2, 4] {
        let fleet = local_fleet(&dir, &format!("s{shards}"), shards);
        let built = fleet.handle_with_deadline(build_request("idx", &dataset_path), None);
        assert!(matches!(built, PalmResponse::Built { .. }), "{built:?}");
        // Single queries, varying k.
        for (i, q) in qs.iter().enumerate() {
            let k = 1 + i % 7;
            let expected = single.handle(query_request("idx", q, k, true));
            let merged = fleet.handle_with_deadline(query_request("idx", q, k, true), None);
            assert_eq!(
                answers(&expected),
                answers(&merged),
                "exact kNN diverged at {shards} shards, k={k}"
            );
        }
        // Batched widths 1, 3, 8.
        for width in [1usize, 3, 8] {
            let batch: Vec<PalmRequest> = qs
                .iter()
                .take(width)
                .map(|q| query_request("idx", q, 5, true))
                .collect();
            let expected = single.handle(PalmRequest::Batch {
                requests: batch.clone(),
            });
            let merged = fleet.handle_with_deadline(PalmRequest::Batch { requests: batch }, None);
            assert_eq!(
                answers(&expected),
                answers(&merged),
                "batched exact kNN diverged at {shards} shards, width {width}"
            );
        }
    }
}

/// Claim 2: local and remote topologies answer identically — answers,
/// merged `QueryCost`, error-free equality of whole responses — across
/// shard counts, exactness and batch widths.
#[test]
fn local_and_remote_topologies_are_identical() {
    let dir = ScratchDir::new("sg-topo").unwrap();
    let (dataset_path, series) = dataset(&dir, 180, 11);
    let qs = queries(&series, 6);
    for shards in [1usize, 2, 4] {
        let local = local_fleet(&dir, &format!("l{shards}"), shards);
        let (remote, servers) = remote_fleet(&dir, &format!("r{shards}"), shards);
        for fleet in [&local, &remote] {
            let built = fleet.handle_with_deadline(build_request("idx", &dataset_path), None);
            assert!(matches!(built, PalmResponse::Built { .. }), "{built:?}");
        }
        for exact in [true, false] {
            for (i, q) in qs.iter().enumerate() {
                let k = 1 + i % 5;
                let a = local.handle_with_deadline(query_request("idx", q, k, exact), None);
                let b = remote.handle_with_deadline(query_request("idx", q, k, exact), None);
                assert_eq!(
                    normalized(&a),
                    normalized(&b),
                    "topologies diverged at {shards} shards, k={k}, exact={exact}"
                );
            }
            for width in [3usize, 8] {
                let batch: Vec<PalmRequest> = qs
                    .iter()
                    .cycle()
                    .take(width)
                    .map(|q| query_request("idx", q, 4, exact))
                    .collect();
                let a = local.handle_with_deadline(
                    PalmRequest::Batch {
                        requests: batch.clone(),
                    },
                    None,
                );
                let b = remote.handle_with_deadline(PalmRequest::Batch { requests: batch }, None);
                assert_eq!(
                    normalized(&a),
                    normalized(&b),
                    "batched topologies diverged at {shards} shards, width {width}, exact={exact}"
                );
            }
        }
        // Aggregated verbs agree across topologies too.
        for request in [
            PalmRequest::ListIndexes,
            PalmRequest::Metrics { name: "idx".into() },
        ] {
            let a = local.handle_with_deadline(request.clone(), None);
            let b = remote.handle_with_deadline(request, None);
            assert_eq!(normalized(&a), normalized(&b), "{shards} shards");
        }
        for server in servers {
            let report = server.shutdown();
            assert!(report.is_clean(), "{report:?}");
        }
    }
}

/// Claim 3: one shard behind the coordinator degenerates to the plain
/// service — answers *and* costs, exact and approximate.
#[test]
fn single_shard_coordinator_degenerates_to_plain_server() {
    let dir = ScratchDir::new("sg-degenerate").unwrap();
    let (dataset_path, series) = dataset(&dir, 150, 23);
    let plain = PalmServer::new(dir.file("plain"));
    plain.handle(build_request("idx", &dataset_path));
    let fleet = local_fleet(&dir, "one", 1);
    fleet.handle_with_deadline(build_request("idx", &dataset_path), None);
    let qs = queries(&series, 6);
    for exact in [true, false] {
        for (i, q) in qs.iter().enumerate() {
            let k = 1 + i % 6;
            let expected = plain.handle(query_request("idx", q, k, exact));
            let merged = fleet.handle_with_deadline(query_request("idx", q, k, exact), None);
            assert_eq!(
                normalized(&expected),
                normalized(&merged),
                "single-shard coordinator diverged, k={k}, exact={exact}"
            );
        }
    }
    // Metrics degenerate too (one shard, nothing to aggregate).
    let expected = plain.handle(PalmRequest::Metrics { name: "idx".into() });
    let merged = fleet.handle_with_deadline(PalmRequest::Metrics { name: "idx".into() }, None);
    assert_eq!(normalized(&expected), normalized(&merged));
}

/// Sharded `stats` aggregates per-shard counters: the fleet's requests
/// and cache counters are the field-wise sums of its workers'.
#[test]
fn stats_aggregate_across_shards() {
    let dir = ScratchDir::new("sg-stats").unwrap();
    let (dataset_path, series) = dataset(&dir, 120, 31);
    let fleet = local_fleet(&dir, "st", 2);
    fleet.handle_with_deadline(build_request("idx", &dataset_path), None);
    for q in queries(&series, 4) {
        let response = fleet.handle_with_deadline(query_request("idx", &q, 3, true), None);
        assert!(matches!(response, PalmResponse::QueryResult { .. }));
    }
    match fleet.handle_with_deadline(PalmRequest::Stats, None) {
        PalmResponse::Stats {
            requests, indexes, ..
        } => {
            // Each of the 2 shards saw the build, 4 queries, and the
            // scattered stats request itself.
            assert_eq!(requests, 12, "per-shard counters must sum");
            assert_eq!(indexes, 1, "indexes reports the fleet-wide name count");
        }
        other => panic!("unexpected stats response {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random query/insert interleavings against both topologies: after
    /// every operation the exact answers of the unsharded single node and
    /// the 2-shard coordinator agree bit-for-bit.  Inserts go through the
    /// coordinator's id routing, so this also pins that the coordinator's
    /// global id assignment matches single-node sequential assignment.
    #[test]
    fn random_interleavings_agree_across_topologies(
        seed in 0u64..500,
        ops in proptest::collection::vec(0u8..4, 4..12),
    ) {
        let dir = ScratchDir::new("sg-prop").unwrap();
        let (dataset_path, series) = dataset(&dir, 90, seed);
        let single = PalmServer::new(dir.file("single"));
        single.handle(build_request("idx", &dataset_path));
        let fleet = local_fleet(&dir, "fleet", 2);
        fleet.handle_with_deadline(build_request("idx", &dataset_path), None);
        let mut gen = RandomWalkGenerator::new(SERIES_LEN, seed ^ 0xc0c0);
        for (step, op) in ops.into_iter().enumerate() {
            if op == 0 {
                // Insert a small batch through both topologies.
                let fresh: Vec<Vec<f32>> = (0..1 + step % 3).map(|_| gen.next_series().values).collect();
                let insert = PalmRequest::Insert {
                    name: "idx".into(),
                    series: fresh,
                    timestamp: step as u64,
                    base_id: None,
                };
                let a = single.handle(insert.clone());
                let b = fleet.handle_with_deadline(insert, None);
                // Inserted totals agree because the coordinator's global
                // id space starts at the dataset length, like the index's.
                prop_assert_eq!(normalized(&a), normalized(&b), "insert diverged at step {}", step);
            } else {
                let q: Vec<f32> = series[(seed as usize + step * 13) % series.len()]
                    .values
                    .iter()
                    .map(|v| v + 0.02 * op as f32)
                    .collect();
                let k = 1 + (step % 5);
                let expected = single.handle(query_request("idx", &q, k, true));
                let merged = fleet.handle_with_deadline(query_request("idx", &q, k, true), None);
                prop_assert_eq!(
                    answers(&expected),
                    answers(&merged),
                    "query diverged at step {}", step
                );
            }
        }
    }
}
