//! Cache-invalidation ordering: a reader racing a writer must never
//! observe a stale cached answer, and a cached server must be
//! indistinguishable — bit for bit — from an uncached one under any
//! interleaving of queries and inserts.
//!
//! The invalidation design under test (see DESIGN.md, "Palm over the
//! wire"): every slot carries a monotonic version tag bumped under the
//! write lock; cache entries record the version they were computed
//! against and are unservable the moment it changes, even if the purge
//! races an in-flight insert into the cache.

use coconut_core::palm::{PalmRequest, PalmResponse, PalmServer};
use coconut_core::{Dataset, IoBackend, PlannerMode, VariantKind};
use coconut_json::{Json, ToJson};
use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
use coconut_storage::ScratchDir;
use proptest::prelude::*;

fn build_request(name: &str, dataset_path: &str) -> PalmRequest {
    PalmRequest::BuildIndex {
        name: name.into(),
        dataset_path: dataset_path.into(),
        variant: VariantKind::Clsm,
        materialized: true,
        memory_budget_bytes: 1 << 20,
        parallelism: 1,
        query_parallelism: 1,
        shard_count: 1,
        range: None,
        io_overlap: true,
        io_backend: IoBackend::Pread,
        planner: PlannerMode::Fixed,
        compression: coconut_storage::Compression::Off,
    }
}

fn make_dataset(
    dir: &ScratchDir,
    count: usize,
    seed: u64,
) -> (String, Vec<coconut_series::Series>) {
    let mut gen = RandomWalkGenerator::new(64, seed);
    let series = gen.generate(count);
    let path = dir.file("raw.bin");
    Dataset::create_from_series(&path, &series).unwrap();
    (path.to_string_lossy().into_owned(), series)
}

/// Strips the timing member so responses can be compared for identity.
fn identity_view(response: &PalmResponse) -> String {
    let Json::Obj(members) = response.to_json() else {
        panic!("responses serialize to objects");
    };
    Json::Obj(
        members
            .into_iter()
            .filter(|(k, _)| k != "elapsed_ms")
            .collect(),
    )
    .to_string()
}

/// Satellite stress test: a writer streams ever-closer matches to a fixed
/// query while readers hammer that exact query (the worst case for a
/// result cache — every request shares one cache key).  Each reader's
/// observed nearest distance must be non-increasing: serving one stale
/// cached answer after an insert landed would bounce it back up.
#[test]
fn readers_racing_inserts_never_observe_stale_answers() {
    let dir = ScratchDir::new("cache-race").unwrap();
    let (dataset_path, series) = make_dataset(&dir, 200, 5);
    let server = PalmServer::new(dir.file("work")).with_result_cache(128);
    let built = server.handle(build_request("race", &dataset_path));
    assert!(matches!(built, PalmResponse::Built { .. }), "{built:?}");

    let query: Vec<f32> = series[3].values.iter().map(|v| v + 4.0).collect();
    let rounds = 24u64;
    std::thread::scope(|scope| {
        let server = &server;
        let query = &query;
        let writer = scope.spawn(move || {
            for round in 0..rounds {
                // Each insert is strictly closer to the query than every
                // earlier series: distance shrinks round by round.
                let offset = 2.0 - (round as f32 / rounds as f32) * 2.0 + 0.01;
                let close: Vec<f32> = query.iter().map(|v| v + offset).collect();
                match server.handle(PalmRequest::Insert {
                    name: "race".into(),
                    series: vec![close],
                    timestamp: round,
                    base_id: None,
                }) {
                    PalmResponse::Inserted { .. } => {}
                    other => panic!("insert failed: {other:?}"),
                }
                std::thread::yield_now();
            }
        });
        for _ in 0..4 {
            scope.spawn(move || {
                let mut last = f64::INFINITY;
                for _ in 0..60 {
                    match server.handle(PalmRequest::Query {
                        name: "race".into(),
                        query: query.clone(),
                        k: 1,
                        exact: true,
                    }) {
                        PalmResponse::QueryResult { distances, .. } => {
                            assert!(
                                distances[0] <= last,
                                "stale cached answer: distance went {last} -> {}",
                                distances[0]
                            );
                            last = distances[0];
                        }
                        other => panic!("query failed: {other:?}"),
                    }
                }
            });
        }
        writer.join().unwrap();
    });

    // Settled state: the cached answer equals a fresh computation.
    let request = PalmRequest::Query {
        name: "race".into(),
        query: query.clone(),
        k: 1,
        exact: true,
    };
    let cached = server.handle(request.clone());
    let fresh_server = PalmServer::new(dir.file("work2"));
    fresh_server.handle(build_request("race", &dataset_path));
    // Replay the writer's inserts so both servers hold the same data.
    for round in 0..rounds {
        let offset = 2.0 - (round as f32 / rounds as f32) * 2.0 + 0.01;
        let close: Vec<f32> = query.iter().map(|v| v + offset).collect();
        fresh_server.handle(PalmRequest::Insert {
            name: "race".into(),
            series: vec![close],
            timestamp: round,
            base_id: None,
        });
    }
    let computed = fresh_server.handle(request);
    assert_eq!(
        identity_view(&cached),
        identity_view(&computed),
        "cached answer must equal recomputation"
    );
    let stats = server.stats();
    assert!(
        stats.cache_hits > 0,
        "the race must exercise hits: {stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Drive a cached and an uncached server through the same random
    /// interleaving of queries and inserts: every response — ids,
    /// distance bits, costs, insert totals — must be identical.  Any
    /// invalidation bug (stale entry surviving a write, over-eager key
    /// matching, ABA across versions) shows up as a divergence.
    #[test]
    fn interleaved_queries_and_inserts_cached_equals_uncached(
        seed in 0u64..1000,
        ops in proptest::collection::vec(0u64..1_000_000u64, 6..30),
    ) {
        let dir = ScratchDir::new("cache-prop").unwrap();
        let (dataset_path, _series) = make_dataset(&dir, 80, seed);
        let cached = PalmServer::new(dir.file("work-cached")).with_result_cache(16);
        let uncached = PalmServer::new(dir.file("work-uncached"));
        cached.handle(build_request("p", &dataset_path));
        uncached.handle(build_request("p", &dataset_path));

        // A small query pool makes repeats (cache hits) likely.
        let mut qgen = RandomWalkGenerator::new(64, seed ^ 0xabcd);
        let pool: Vec<Vec<f32>> = (0..5).map(|_| qgen.next_series().values).collect();

        for encoded in ops {
            // One draw encodes the op kind and its argument.
            let (op, arg) = ((encoded % 5) as u8, encoded / 5);
            let request = match op {
                // Inserts: identical fresh series on both servers.
                0 => {
                    let mut gen = RandomWalkGenerator::new(64, arg);
                    let batch: Vec<Vec<f32>> =
                        (0..1 + (arg % 3) as usize).map(|_| gen.next_series().values).collect();
                    PalmRequest::Insert {
                        name: "p".into(),
                        series: batch,
                        timestamp: arg,
                        base_id: None,
                    }
                }
                // Queries from the pool, varying k and exactness.
                _ => PalmRequest::Query {
                    name: "p".into(),
                    query: pool[arg as usize % pool.len()].clone(),
                    k: 1 + (arg % 4) as usize,
                    exact: op % 2 == 0,
                },
            };
            let a = cached.handle(request.clone());
            let b = uncached.handle(request);
            prop_assert_eq!(
                identity_view(&a),
                identity_view(&b),
                "cached and uncached servers diverged"
            );
        }
        // The interleavings must actually exercise the cache.
        let stats = cached.stats();
        prop_assert!(stats.cache_misses > 0, "no cache traffic: {:?}", stats);
    }
}
