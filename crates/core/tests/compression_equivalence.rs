//! Compression equivalence of the whole stack.
//!
//! The tentpole guarantee of the block-compressed run format is that
//! `compression` is a *pure* performance knob: front-coding keys and
//! delta-varint-coding the integer columns changes how many bytes reach the
//! disk, never which entries an index holds or which pages the logical view
//! charges.  For every variant in the grid
//! `{off, prefix} x {CTree, CLSM, streaming} x {materialized, non} x
//! {exact, approx}` the answers, `QueryCost` and the *logical* `IoStats`
//! view must be bit-identical — only the physical byte counters and the
//! on-disk footprint may (and on sorted keys, do) shrink.

use coconut_core::{
    streaming_index, Compression, IndexConfig, IoStats, IoStatsSnapshot, ScratchDir, StaticIndex,
    StreamingConfig, VariantKind, WindowScheme,
};
use coconut_series::generator::{RandomWalkGenerator, SeismicStreamGenerator, SeriesGenerator};
use coconut_series::Dataset;

fn build_static(
    dir: &ScratchDir,
    dataset: &Dataset,
    variant: VariantKind,
    materialized: bool,
    compression: Compression,
) -> (StaticIndex, IoStatsSnapshot, u64) {
    let config = IndexConfig::new(variant, 64)
        .materialized(materialized)
        // Small budget so CTree spills external-sort runs and CLSM flushes
        // and compacts: every compressed code path runs, not just the leaf.
        .with_memory_budget(256 << 10)
        .with_shard_count(2)
        .with_compression(compression);
    let subdir = dir.file(&format!("{}-m{materialized}-{compression}", variant.name()));
    let stats = IoStats::shared();
    let (index, _report) =
        StaticIndex::build(dataset, config, &subdir, std::sync::Arc::clone(&stats)).expect("build");
    let footprint = index.footprint_bytes();
    (index, stats.snapshot(), footprint)
}

/// The static grid: CTree and CLSM, materialized and not, exact and
/// approximate — answers, costs and logical I/O identical; compressed
/// footprint strictly smaller.
#[test]
fn static_variants_are_equivalent_at_either_compression() {
    let dir = ScratchDir::new("comp-eq-static").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 2026);
    let series = gen.generate(2500);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let mut qgen = RandomWalkGenerator::new(64, 808);
    let queries: Vec<_> = (0..6).map(|_| qgen.next_series()).collect();

    for variant in [VariantKind::CTree, VariantKind::Clsm] {
        for materialized in [true, false] {
            let (off, off_io, off_fp) =
                build_static(&dir, &dataset, variant, materialized, Compression::Off);
            let (prefix, prefix_io, prefix_fp) =
                build_static(&dir, &dataset, variant, materialized, Compression::Prefix);
            let ctx = format!("{variant:?} materialized={materialized}");
            assert_eq!(
                off_io.logical(),
                prefix_io.logical(),
                "build logical IoStats must be knob-invariant ({ctx})"
            );
            assert!(
                prefix_io.physical_bytes_written < off_io.physical_bytes_written,
                "compressed build must write fewer physical bytes ({ctx}): \
                 {} vs {}",
                prefix_io.physical_bytes_written,
                off_io.physical_bytes_written
            );
            assert!(
                prefix_fp < off_fp,
                "compressed footprint must be smaller ({ctx}): {prefix_fp} vs {off_fp}"
            );
            for (qi, q) in queries.iter().enumerate() {
                let (nn_off, cost_off) = off.exact_knn(&q.values, 5).unwrap();
                let (nn_prefix, cost_prefix) = prefix.exact_knn(&q.values, 5).unwrap();
                assert_eq!(nn_off, nn_prefix, "exact answers differ ({ctx}, q{qi})");
                assert_eq!(cost_off, cost_prefix, "exact costs differ ({ctx}, q{qi})");
                let (ap_off, ap_cost_off) = off.approximate_knn(&q.values, 5).unwrap();
                let (ap_prefix, ap_cost_prefix) = prefix.approximate_knn(&q.values, 5).unwrap();
                assert_eq!(ap_off, ap_prefix, "approx answers differ ({ctx}, q{qi})");
                assert_eq!(
                    ap_cost_off, ap_cost_prefix,
                    "approx costs differ ({ctx}, q{qi})"
                );
            }
        }
    }
}

/// The streaming arm: a BTP stream (flushes + size-tiered merges, the
/// paper's streaming write path) ingesting identical batches must produce
/// identical windowed answers and logical I/O at either setting.
#[test]
fn streaming_btp_is_equivalent_at_either_compression() {
    let dir = ScratchDir::new("comp-eq-btp").unwrap();
    let mut gen = SeismicStreamGenerator::new(64, 321, 0.1);
    let batches: Vec<_> = (0..12).map(|_| gen.next_batch(100)).collect();
    let query = gen.quake_template();

    let mut outcomes = Vec::new();
    for compression in [Compression::Off, Compression::Prefix] {
        let mut config = StreamingConfig::new(
            VariantKind::Clsm,
            WindowScheme::BoundedTemporalPartitioning,
            64,
        )
        .with_compression(compression);
        config.buffer_capacity = 100;
        let stats = IoStats::shared();
        let subdir = dir.file(&format!("btp-{compression}"));
        let mut index = streaming_index(config, &subdir, std::sync::Arc::clone(&stats)).unwrap();
        for batch in &batches {
            index.ingest_batch(batch).unwrap();
        }
        let mut answers = Vec::new();
        for window in [None, Some((200u64, 700u64))] {
            for exact in [true, false] {
                answers.push(
                    index
                        .query_window(&query, 3, window, exact)
                        .unwrap()
                        .neighbors,
                );
            }
        }
        outcomes.push((answers, stats.snapshot(), index.footprint_bytes()));
    }
    let (off_answers, off_io, off_fp) = &outcomes[0];
    let (prefix_answers, prefix_io, prefix_fp) = &outcomes[1];
    assert_eq!(off_answers, prefix_answers, "windowed answers differ");
    assert_eq!(
        off_io.logical(),
        prefix_io.logical(),
        "streaming logical IoStats must be knob-invariant"
    );
    assert!(
        prefix_io.physical_bytes_written < off_io.physical_bytes_written,
        "compressed stream must write fewer physical bytes"
    );
    assert!(
        prefix_fp < off_fp,
        "compressed partitions must occupy fewer bytes: {prefix_fp} vs {off_fp}"
    );
}

/// Query-time logical reads are knob-invariant too: run the same query set
/// against fresh stats handles after the build, so read-side accounting is
/// isolated from build-side accounting.  Non-materialized, where the
/// key/id/timestamp columns *are* the record, so the compressed probes also
/// move strictly fewer physical bytes (materialized full-record probes can
/// overshoot on block boundaries; their win is the key-only scan, checked
/// by `e18_compression`).
#[test]
fn query_logical_reads_are_knob_invariant() {
    let dir = ScratchDir::new("comp-eq-reads").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 555);
    let series = gen.generate(1500);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let mut qgen = RandomWalkGenerator::new(64, 777);
    let queries: Vec<_> = (0..5).map(|_| qgen.next_series()).collect();

    let mut per_setting = Vec::new();
    for compression in [Compression::Off, Compression::Prefix] {
        let config = IndexConfig::new(VariantKind::CTree, 64)
            .materialized(false)
            .with_memory_budget(256 << 10)
            .with_compression(compression);
        let subdir = dir.file(&format!("reads-{compression}"));
        let stats = IoStats::shared();
        let (index, _) =
            StaticIndex::build(&dataset, config, &subdir, std::sync::Arc::clone(&stats)).unwrap();
        let before = stats.snapshot();
        for q in &queries {
            index.exact_knn(&q.values, 5).unwrap();
        }
        per_setting.push(stats.snapshot().since(&before));
    }
    assert_eq!(
        per_setting[0].logical(),
        per_setting[1].logical(),
        "query-time logical IoStats must be knob-invariant"
    );
    assert!(
        per_setting[1].physical_bytes_read < per_setting[0].physical_bytes_read,
        "compressed queries must read fewer physical bytes: {} vs {}",
        per_setting[1].physical_bytes_read,
        per_setting[0].physical_bytes_read
    );
}
