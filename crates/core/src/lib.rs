//! # coconut-core
//!
//! The Coconut Palm facade: one entry point over the whole index variant
//! matrix of Figure 1, plus the recommender and the "algorithms server"
//! request/response layer the demo GUI talks to.
//!
//! * [`IndexConfig`] / [`StaticIndex`] — build and query any static variant
//!   (ADS+, CTree, CLSM; materialized or not) behind a single API, with
//!   uniform build/query metrics.
//! * [`streaming_index`] — instantiate any streaming variant (ADS+PP,
//!   CLSM+PP, TP with sorted or ADS partitions, CLSM-style BTP).
//! * [`palm`] — a JSON request/response layer mirroring the demo's
//!   client/server protocol (build an index, run queries, fetch metrics,
//!   consult the recommender).

pub mod backend;
pub mod palm;

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use coconut_json::{member, FromJson, Json, JsonError, ToJson};

pub use coconut_ads::{AdsConfig, AdsTree};
pub use coconut_clsm::{ClsmConfig, ClsmTree};
pub use coconut_ctree::engine::merge_topk;
pub use coconut_ctree::planner::{
    self, PlanDecision, PlanReport, PlannedAnswer, PlannedBatch, PlannerInputs, PlannerMode,
};
pub use coconut_ctree::query::QueryCost;
pub use coconut_ctree::{CTree, CTreeConfig, IndexError, Result};
pub use coconut_parallel::CancelToken;
pub use coconut_recommender::{recommend, DataArrival, Recommendation, Scenario, StructureKind};
pub use coconut_sax::SaxConfig;
pub use coconut_series::distance::Neighbor;
pub use coconut_series::{Dataset, Series, TimestampedSeries};
pub use coconut_storage::{
    Compression, CostModel, IoBackend, IoStats, IoStatsSnapshot, ScratchDir, SharedIoStats,
};
pub use coconut_stream::{
    PartitionKind, PartitionedConfig, PartitionedStream, PpStream, StreamingIndex, WindowScheme,
};

/// The three index structure families of the Figure 1 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantKind {
    /// ADS+-style baseline.
    Ads,
    /// CoconutTree.
    CTree,
    /// CoconutLSM.
    Clsm,
}

impl VariantKind {
    /// All variants, in the order used by reports.
    pub fn all() -> [VariantKind; 3] {
        [VariantKind::Ads, VariantKind::CTree, VariantKind::Clsm]
    }

    /// Display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            VariantKind::Ads => "ADS+",
            VariantKind::CTree => "CTree",
            VariantKind::Clsm => "CLSM",
        }
    }
}

/// Configuration of a static index variant.
#[derive(Debug, Clone, Copy)]
pub struct IndexConfig {
    /// Which structure family to build.
    pub variant: VariantKind,
    /// Summarization configuration.
    pub sax: SaxConfig,
    /// Whether the index embeds the full series (materialized).
    pub materialized: bool,
    /// CTree leaf fill factor.
    pub fill_factor: f64,
    /// CLSM growth factor.
    pub growth_factor: usize,
    /// Memory budget in bytes (external sort / buffers).
    pub memory_budget_bytes: usize,
    /// Worker threads used by the build pipeline (`1` = sequential, `0` =
    /// one per available core).  Results are identical at every setting;
    /// see DESIGN.md ("Threading model").
    pub parallelism: usize,
    /// Worker threads used by the query fan-out (`1` = sequential, `0` =
    /// one per available core).  Neighbours, distances, tie-breaking order
    /// and cost counters are identical at every setting; see DESIGN.md
    /// ("Query threading model").
    pub query_parallelism: usize,
    /// Key-range shards per CLSM compaction (`1` = classic single-run
    /// merges).  Ignored by the other variants.
    pub shard_count: usize,
    /// Overlap computation with I/O in the build pipeline (default `true`;
    /// `false` restores the strictly alternating sort-then-write pipeline).
    /// A pure performance knob: index files, query answers and `IoStats`
    /// totals are identical at either setting; see DESIGN.md ("I/O
    /// overlap").
    pub io_overlap: bool,
    /// Read backend for the index's run/leaf files (`pread` positioned
    /// reads, the default, or `mmap` read-only file mappings).  A pure
    /// performance knob: index files, answers, `QueryCost` and `IoStats`
    /// totals are identical at either setting; see DESIGN.md ("Read path
    /// backends").
    pub io_backend: IoBackend,
    /// Query planning mode (default `Adaptive`).  `Fixed` uses the knobs
    /// above verbatim; `Adaptive` lets the per-query cost-model planner
    /// pick fan-out, read-ahead gate and batch shape from observed state.
    /// Answers, `QueryCost` and `IoStats` are identical in both modes; see
    /// DESIGN.md ("Adaptive planning").
    pub planner: PlannerMode,
    /// Minimum contiguous byte range for which merge/compaction read-ahead
    /// engages (default `coconut_storage::PREFETCH_MIN_BYTES`; `usize::MAX`
    /// disables read-ahead).  A pure performance knob the adaptive planner
    /// also sets.
    pub prefetch_min_bytes: usize,
    /// On-disk compression of sorted runs and leaf blocks (default `off`).
    /// Answers, `QueryCost` and the logical `IoStats` view are identical at
    /// either setting; only physical bytes on disk and read shrink.  See
    /// DESIGN.md ("Compressed runs").
    pub compression: coconut_storage::Compression,
}

impl IndexConfig {
    /// Default configuration for a variant at a given series length.
    pub fn new(variant: VariantKind, series_len: usize) -> Self {
        IndexConfig {
            variant,
            sax: SaxConfig::paper_default(series_len),
            materialized: false,
            fill_factor: 1.0,
            growth_factor: 4,
            memory_budget_bytes: 32 << 20,
            parallelism: 1,
            query_parallelism: 1,
            shard_count: 1,
            io_overlap: true,
            io_backend: IoBackend::Pread,
            planner: PlannerMode::Adaptive,
            prefetch_min_bytes: coconut_storage::PREFETCH_MIN_BYTES,
            compression: coconut_storage::Compression::Off,
        }
    }

    /// Enables or disables materialization.
    pub fn materialized(mut self, yes: bool) -> Self {
        self.materialized = yes;
        self
    }

    /// Sets the memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget_bytes = bytes;
        self
    }

    /// Sets the build parallelism (`1` = sequential, `0` = all cores).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Sets the query fan-out parallelism (`1` = sequential, `0` = all
    /// cores).  A pure performance knob.
    pub fn with_query_parallelism(mut self, workers: usize) -> Self {
        self.query_parallelism = workers;
        self
    }

    /// Sets the number of key-range shards per CLSM compaction.
    pub fn with_shard_count(mut self, shards: usize) -> Self {
        self.shard_count = shards.max(1);
        self
    }

    /// Enables or disables overlapped build I/O (default on).  A pure
    /// performance knob; see DESIGN.md ("I/O overlap").
    pub fn with_io_overlap(mut self, overlap: bool) -> Self {
        self.io_overlap = overlap;
        self
    }

    /// Selects the read backend (default `pread`).  A pure performance
    /// knob; see DESIGN.md ("Read path backends").
    pub fn with_io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = backend;
        self
    }

    /// Selects the query planning mode (default `Adaptive`).  A pure
    /// performance knob; see DESIGN.md ("Adaptive planning").
    pub fn with_planner(mut self, mode: PlannerMode) -> Self {
        self.planner = mode;
        self
    }

    /// Sets the read-ahead engagement gate in bytes (`usize::MAX` disables
    /// read-ahead).  A pure performance knob.
    pub fn with_prefetch_min_bytes(mut self, bytes: usize) -> Self {
        self.prefetch_min_bytes = bytes;
        self
    }

    /// Selects the on-disk compression of sorted runs and leaf blocks
    /// (default `off`).  A pure performance knob; see DESIGN.md
    /// ("Compressed runs").
    pub fn with_compression(mut self, compression: coconut_storage::Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Display name like "CTreeFull" / "CTree" following Figure 1.
    pub fn display_name(&self) -> String {
        if self.materialized {
            format!("{}Full", self.variant.name())
        } else {
            self.variant.name().to_string()
        }
    }

    /// Builds a configuration from a recommender output.
    pub fn from_recommendation(rec: &Recommendation, series_len: usize) -> Self {
        let variant = match rec.structure {
            StructureKind::Ads => VariantKind::Ads,
            StructureKind::CTree => VariantKind::CTree,
            StructureKind::Clsm => VariantKind::Clsm,
        };
        IndexConfig {
            variant,
            sax: SaxConfig::paper_default(series_len),
            materialized: rec.materialized,
            fill_factor: rec.fill_factor,
            growth_factor: rec.growth_factor.max(2),
            memory_budget_bytes: 32 << 20,
            parallelism: 1,
            query_parallelism: 1,
            shard_count: 1,
            io_overlap: true,
            io_backend: IoBackend::Pread,
            planner: PlannerMode::Adaptive,
            prefetch_min_bytes: coconut_storage::PREFETCH_MIN_BYTES,
            compression: coconut_storage::Compression::Off,
        }
    }
}

impl ToJson for VariantKind {
    fn to_json(&self) -> Json {
        let name = match self {
            VariantKind::Ads => "Ads",
            VariantKind::CTree => "CTree",
            VariantKind::Clsm => "Clsm",
        };
        Json::Str(name.to_string())
    }
}

impl FromJson for VariantKind {
    fn from_json(json: &Json) -> coconut_json::Result<VariantKind> {
        match json.as_str() {
            Some("Ads") => Ok(VariantKind::Ads),
            Some("CTree") => Ok(VariantKind::CTree),
            Some("Clsm") => Ok(VariantKind::Clsm),
            Some(other) => Err(JsonError::new(format!("unknown variant '{other}'"))),
            None => Err(JsonError::new("expected a string for the index variant")),
        }
    }
}

/// Metrics reported after building an index.
#[derive(Debug, Clone, Copy)]
pub struct BuildReport {
    /// Wall-clock build time in milliseconds.
    pub elapsed_ms: f64,
    /// I/O performed during the build.
    pub io: IoStatsSnapshot,
    /// Index footprint on disk in bytes.
    pub footprint_bytes: u64,
    /// Number of entries indexed.
    pub entries: u64,
}

impl ToJson for BuildReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("elapsed_ms", self.elapsed_ms.to_json()),
            ("io", self.io.to_json()),
            ("footprint_bytes", self.footprint_bytes.to_json()),
            ("entries", self.entries.to_json()),
        ])
    }
}

impl FromJson for BuildReport {
    fn from_json(json: &Json) -> coconut_json::Result<BuildReport> {
        let io = json
            .get("io")
            .ok_or_else(|| JsonError::new("missing field 'io'"))?;
        Ok(BuildReport {
            elapsed_ms: member(json, "elapsed_ms")?,
            io: IoStatsSnapshot::from_json(io)?,
            footprint_bytes: member(json, "footprint_bytes")?,
            entries: member(json, "entries")?,
        })
    }
}

/// A built static index of any variant.
pub enum StaticIndex {
    /// ADS+-style baseline.
    Ads(AdsTree),
    /// CoconutTree.
    CTree(CTree),
    /// CoconutLSM.
    Clsm(ClsmTree),
}

impl StaticIndex {
    /// Builds the configured variant over `dataset`, storing index files in
    /// `dir` and charging I/O to `stats`.
    pub fn build(
        dataset: &Dataset,
        config: IndexConfig,
        dir: &Path,
        stats: SharedIoStats,
    ) -> Result<(StaticIndex, BuildReport)> {
        std::fs::create_dir_all(dir).map_err(coconut_storage::StorageError::from)?;
        let before = stats.snapshot();
        let start = Instant::now();
        let index = match config.variant {
            VariantKind::Ads => {
                let ads_config = AdsConfig::new(config.sax)
                    .materialized(config.materialized)
                    .with_buffer_capacity(
                        (config.memory_budget_bytes / (config.sax.series_len * 4 + 32)).max(64),
                    );
                StaticIndex::Ads(AdsTree::build(
                    dataset,
                    ads_config,
                    dir,
                    Arc::clone(&stats),
                )?)
            }
            VariantKind::CTree => {
                let ctree_config = CTreeConfig::new(config.sax)
                    .materialized(config.materialized)
                    .with_fill_factor(config.fill_factor)
                    .with_memory_budget(config.memory_budget_bytes)
                    .with_parallelism(config.parallelism)
                    .with_query_parallelism(config.query_parallelism)
                    .with_io_overlap(config.io_overlap)
                    .with_io_backend(config.io_backend)
                    .with_planner(config.planner)
                    .with_prefetch_min_bytes(config.prefetch_min_bytes)
                    .with_compression(config.compression);
                StaticIndex::CTree(CTree::build(
                    dataset,
                    ctree_config,
                    dir,
                    Arc::clone(&stats),
                )?)
            }
            VariantKind::Clsm => {
                let clsm_config = ClsmConfig::new(config.sax)
                    .materialized(config.materialized)
                    .with_growth_factor(config.growth_factor)
                    .with_parallelism(config.parallelism)
                    .with_query_parallelism(config.query_parallelism)
                    .with_shard_count(config.shard_count)
                    .with_io_overlap(config.io_overlap)
                    .with_io_backend(config.io_backend)
                    .with_planner(config.planner)
                    .with_prefetch_min_bytes(config.prefetch_min_bytes)
                    .with_compression(config.compression)
                    .with_buffer_capacity(
                        (config.memory_budget_bytes / (config.sax.series_len * 4 + 32)).max(64),
                    );
                StaticIndex::Clsm(ClsmTree::build(
                    dataset,
                    clsm_config,
                    dir,
                    Arc::clone(&stats),
                )?)
            }
        };
        let report = BuildReport {
            elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
            io: stats.snapshot().since(&before),
            footprint_bytes: index.footprint_bytes(),
            entries: index.len(),
        };
        Ok((index, report))
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        match self {
            StaticIndex::Ads(t) => t.len(),
            StaticIndex::CTree(t) => t.len(),
            StaticIndex::Clsm(t) => t.len(),
        }
    }

    /// Returns `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        match self {
            StaticIndex::Ads(t) => t.footprint_bytes(),
            StaticIndex::CTree(t) => t.footprint_bytes(),
            StaticIndex::Clsm(t) => t.footprint_bytes(),
        }
    }

    /// Returns `true` when the index embeds full series values.  A
    /// non-materialized index refines candidates from the original dataset
    /// file, so series appended after the build (which that file does not
    /// contain) cannot be served by it.
    pub fn is_materialized(&self) -> bool {
        match self {
            StaticIndex::Ads(t) => t.config().materialized,
            StaticIndex::CTree(t) => t.config().materialized,
            StaticIndex::Clsm(t) => t.config().materialized,
        }
    }

    /// Approximate kNN query.
    pub fn approximate_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        match self {
            StaticIndex::Ads(t) => t.approximate_knn(query, k),
            StaticIndex::CTree(t) => t.approximate_knn(query, k),
            StaticIndex::Clsm(t) => t.approximate_knn(query, k),
        }
    }

    /// Exact kNN query.
    pub fn exact_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        match self {
            StaticIndex::Ads(t) => t.exact_knn(query, k),
            StaticIndex::CTree(t) => t.exact_knn(query, k),
            StaticIndex::Clsm(t) => t.exact_knn(query, k),
        }
    }

    /// Runs a batch of kNN queries, returning per-query `(neighbours,
    /// cost)` in query order.
    ///
    /// Coconut variants execute the whole batch through the engine's round
    /// pipeline (`coconut_ctree::engine::batch_knn`), reusing per-unit
    /// state across consecutive queries; the ADS+ baseline loops.  Either
    /// way every query's answers and `QueryCost` are bit-identical to
    /// issuing it alone via [`StaticIndex::exact_knn`] /
    /// [`StaticIndex::approximate_knn`].
    pub fn batch_knn(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
    ) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
        match self {
            StaticIndex::Ads(t) => queries
                .iter()
                .map(|q| {
                    if exact {
                        t.exact_knn(q, k)
                    } else {
                        t.approximate_knn(q, k)
                    }
                })
                .collect(),
            StaticIndex::CTree(t) => t.batch_knn(queries, k, exact),
            StaticIndex::Clsm(t) => t.batch_knn(queries, k, exact),
        }
    }

    /// Single kNN query with cooperative cancellation.
    ///
    /// Coconut variants poll the token at the engine's `SearchUnit` round
    /// boundaries; the ADS+ baseline (which does not go through the engine)
    /// only checks it up front.  When the token never fires, answers and
    /// `QueryCost` are bit-identical to [`StaticIndex::exact_knn`] /
    /// [`StaticIndex::approximate_knn`] — the cancellable path *is* the
    /// regular path plus pure reads of the token.  On cancellation the
    /// query unwinds with `IndexError::Cancelled` carrying the partial cost.
    pub fn knn_with(
        &self,
        query: &[f32],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        match self {
            StaticIndex::Ads(t) => {
                if cancel.is_cancelled() {
                    return Err(IndexError::Cancelled {
                        partial_cost: QueryCost::default(),
                    });
                }
                if exact {
                    t.exact_knn(query, k)
                } else {
                    t.approximate_knn(query, k)
                }
            }
            StaticIndex::CTree(t) => t.knn_with(query, k, exact, cancel),
            StaticIndex::Clsm(t) => t.knn_with(query, k, exact, cancel),
        }
    }

    /// [`StaticIndex::batch_knn`] with cooperative cancellation.  Coconut
    /// variants poll at the engine's round boundaries; the ADS+ loop checks
    /// between consecutive queries, accumulating the completed queries'
    /// costs into the `Cancelled` error.
    pub fn batch_knn_with(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
        match self {
            StaticIndex::Ads(t) => {
                let mut out = Vec::with_capacity(queries.len());
                let mut partial_cost = QueryCost::default();
                for q in queries {
                    if cancel.is_cancelled() {
                        return Err(IndexError::Cancelled { partial_cost });
                    }
                    let result = if exact {
                        t.exact_knn(q, k)?
                    } else {
                        t.approximate_knn(q, k)?
                    };
                    partial_cost = partial_cost.plus(&result.1);
                    out.push(result);
                }
                Ok(out)
            }
            StaticIndex::CTree(t) => t.batch_knn_with(queries, k, exact, cancel),
            StaticIndex::Clsm(t) => t.batch_knn_with(queries, k, exact, cancel),
        }
    }

    /// Like [`StaticIndex::knn_with`], but routed through the per-query
    /// cost-model planner when the index was built with
    /// [`PlannerMode::Adaptive`]: the execution knobs come from a
    /// [`PlanReport`] captured for this query, returned alongside the
    /// answer.  In `Fixed` mode (and for the ADS+ baseline, which does not
    /// go through the engine) this is exactly `knn_with` and the report is
    /// `None`.  Answers and `QueryCost` are identical in both modes.
    pub fn knn_planned(
        &self,
        query: &[f32],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<PlannedAnswer> {
        match self {
            StaticIndex::Ads(_) => self.knn_with(query, k, exact, cancel).map(|r| (r, None)),
            StaticIndex::CTree(t) => t.knn_planned(query, k, exact, cancel),
            StaticIndex::Clsm(t) => t.knn_planned(query, k, exact, cancel),
        }
    }

    /// Like [`StaticIndex::batch_knn_with`], but routed through the
    /// per-query cost-model planner when the index was built with
    /// [`PlannerMode::Adaptive`] (one [`PlanReport`] covers the whole
    /// batch).  In `Fixed` mode (and for ADS+) this is exactly
    /// `batch_knn_with` and the report is `None`.  Answers and `QueryCost`
    /// are identical in both modes.
    pub fn batch_knn_planned(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<PlannedBatch> {
        match self {
            StaticIndex::Ads(_) => self
                .batch_knn_with(queries, k, exact, cancel)
                .map(|r| (r, None)),
            StaticIndex::CTree(t) => t.batch_knn_planned(queries, k, exact, cancel),
            StaticIndex::Clsm(t) => t.batch_knn_planned(queries, k, exact, cancel),
        }
    }

    /// Inserts a batch of new series (updates after the initial build).
    pub fn insert_batch(&mut self, series: &[Series], timestamp: u64) -> Result<()> {
        match self {
            StaticIndex::Ads(t) => t.insert_batch(series, timestamp),
            StaticIndex::CTree(t) => t.insert_batch(series, timestamp),
            StaticIndex::Clsm(t) => t.insert_batch(series, timestamp),
        }
    }

    /// Makes every buffered update durable: pending CTree delta entries are
    /// merged into the contiguous (fdatasync'd) leaf file, the CLSM write
    /// buffer is flushed into a durable run, and ADS+ leaf buffers are
    /// written back and synced.  Used by the server's graceful shutdown;
    /// also a *write* from the cache's point of view (flushing can change
    /// the cost accounting of later queries), so callers holding the index
    /// behind a lock must invalidate cached answers afterwards.
    pub fn sync(&mut self) -> Result<()> {
        match self {
            StaticIndex::Ads(t) => t.flush_buffers(),
            StaticIndex::CTree(t) => t.merge_delta(),
            StaticIndex::Clsm(t) => t.flush(),
        }
    }
}

/// Configuration of a streaming index variant (structure + window scheme).
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Structure family used by the scheme (`Ads` or `Clsm` for PP; the
    /// partition kind for TP; BTP always uses sorted partitions).
    pub variant: VariantKind,
    /// Windowing scheme.
    pub scheme: WindowScheme,
    /// Summarization configuration.
    pub sax: SaxConfig,
    /// Buffer capacity in entries (partition size for TP/BTP).
    pub buffer_capacity: usize,
    /// Growth factor for CLSM / BTP merging.
    pub growth_factor: usize,
    /// Worker threads used when summarizing and flushing batches.
    pub parallelism: usize,
    /// Worker threads used by the query fan-out over partitions (`1` =
    /// sequential, `0` = one per available core).  A pure performance knob.
    pub query_parallelism: usize,
    /// Overlap computation with I/O during CLSM compactions and BTP
    /// partition merges (default `true`).  A pure performance knob; see
    /// DESIGN.md ("I/O overlap").
    pub io_overlap: bool,
    /// Read backend for runs and partitions (default `pread`).  A pure
    /// performance knob; see DESIGN.md ("Read path backends").
    pub io_backend: IoBackend,
    /// Query planning mode (default `Adaptive`).  A pure performance knob;
    /// see DESIGN.md ("Adaptive planning").
    pub planner: PlannerMode,
    /// Minimum contiguous byte range for which merge read-ahead engages
    /// (default `coconut_storage::PREFETCH_MIN_BYTES`).  A pure performance
    /// knob the adaptive planner also sets.
    pub prefetch_min_bytes: usize,
    /// On-disk compression of runs and partitions (default `off`).  A pure
    /// performance knob; see DESIGN.md ("Compressed runs").
    pub compression: coconut_storage::Compression,
}

impl StreamingConfig {
    /// Default streaming configuration.
    pub fn new(variant: VariantKind, scheme: WindowScheme, series_len: usize) -> Self {
        StreamingConfig {
            variant,
            scheme,
            sax: SaxConfig::paper_default(series_len),
            buffer_capacity: 1024,
            growth_factor: 3,
            parallelism: 1,
            query_parallelism: 1,
            io_overlap: true,
            io_backend: IoBackend::Pread,
            planner: PlannerMode::Adaptive,
            prefetch_min_bytes: coconut_storage::PREFETCH_MIN_BYTES,
            compression: coconut_storage::Compression::Off,
        }
    }

    /// Sets the ingest parallelism (`1` = sequential, `0` = all cores).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Sets the query fan-out parallelism (`1` = sequential, `0` = all
    /// cores).  A pure performance knob.
    pub fn with_query_parallelism(mut self, workers: usize) -> Self {
        self.query_parallelism = workers;
        self
    }

    /// Enables or disables overlapped merge I/O (default on).  A pure
    /// performance knob; see DESIGN.md ("I/O overlap").
    pub fn with_io_overlap(mut self, overlap: bool) -> Self {
        self.io_overlap = overlap;
        self
    }

    /// Selects the read backend (default `pread`).  A pure performance
    /// knob; see DESIGN.md ("Read path backends").
    pub fn with_io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = backend;
        self
    }

    /// Selects the query planning mode (default `Adaptive`).  A pure
    /// performance knob; see DESIGN.md ("Adaptive planning").
    pub fn with_planner(mut self, mode: PlannerMode) -> Self {
        self.planner = mode;
        self
    }

    /// Sets the read-ahead engagement gate in bytes (`usize::MAX` disables
    /// read-ahead).  A pure performance knob.
    pub fn with_prefetch_min_bytes(mut self, bytes: usize) -> Self {
        self.prefetch_min_bytes = bytes;
        self
    }

    /// Selects the on-disk compression of runs and partitions (default
    /// `off`).  A pure performance knob; see DESIGN.md ("Compressed runs").
    pub fn with_compression(mut self, compression: coconut_storage::Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Display name like "ADS+ PP", "CLSM BTP".
    pub fn display_name(&self) -> String {
        format!("{} {}", self.variant.name(), self.scheme.short_name())
    }
}

/// Instantiates a streaming index for the given configuration.
pub fn streaming_index(
    config: StreamingConfig,
    dir: &Path,
    stats: SharedIoStats,
) -> Result<Box<dyn StreamingIndex>> {
    std::fs::create_dir_all(dir).map_err(coconut_storage::StorageError::from)?;
    match config.scheme {
        WindowScheme::PostProcessing => match config.variant {
            VariantKind::Ads => {
                let ads = AdsTree::new(AdsConfig::new(config.sax).materialized(true), dir, stats)?;
                Ok(Box::new(PpStream::over_ads(ads)))
            }
            _ => {
                let clsm = ClsmTree::new(
                    ClsmConfig::new(config.sax)
                        .materialized(true)
                        .with_buffer_capacity(config.buffer_capacity)
                        .with_growth_factor(config.growth_factor)
                        .with_parallelism(config.parallelism)
                        .with_query_parallelism(config.query_parallelism)
                        .with_io_overlap(config.io_overlap)
                        .with_io_backend(config.io_backend)
                        .with_planner(config.planner)
                        .with_prefetch_min_bytes(config.prefetch_min_bytes)
                        .with_compression(config.compression),
                    dir,
                    stats,
                )?;
                Ok(Box::new(PpStream::over_clsm(clsm)))
            }
        },
        WindowScheme::TemporalPartitioning => {
            let kind = if config.variant == VariantKind::Ads {
                PartitionKind::Ads
            } else {
                PartitionKind::Sorted
            };
            let cfg = PartitionedConfig::new(config.sax)
                .with_buffer_capacity(config.buffer_capacity)
                .with_partition_kind(kind)
                .with_parallelism(config.parallelism)
                .with_query_parallelism(config.query_parallelism)
                .with_io_overlap(config.io_overlap)
                .with_io_backend(config.io_backend)
                .with_planner(config.planner)
                .with_prefetch_min_bytes(config.prefetch_min_bytes)
                .with_compression(config.compression);
            Ok(Box::new(PartitionedStream::temporal_partitioning(
                cfg, dir, stats,
            )?))
        }
        WindowScheme::BoundedTemporalPartitioning => {
            let cfg = PartitionedConfig::new(config.sax)
                .with_buffer_capacity(config.buffer_capacity)
                .with_growth_factor(config.growth_factor)
                .with_parallelism(config.parallelism)
                .with_query_parallelism(config.query_parallelism)
                .with_io_overlap(config.io_overlap)
                .with_io_backend(config.io_backend)
                .with_planner(config.planner)
                .with_prefetch_min_bytes(config.prefetch_min_bytes)
                .with_compression(config.compression);
            Ok(Box::new(PartitionedStream::bounded_temporal_partitioning(
                cfg, dir, stats,
            )?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};

    fn dataset(dir: &ScratchDir, n: usize, len: usize, seed: u64) -> (Vec<Series>, Dataset) {
        let mut gen = RandomWalkGenerator::new(len, seed);
        let series = gen.generate(n);
        let ds = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        (series, ds)
    }

    #[test]
    fn every_static_variant_builds_and_agrees_on_exact_answers() {
        let dir = ScratchDir::new("core-matrix").unwrap();
        let (series, ds) = dataset(&dir, 300, 64, 1);
        let mut gen = RandomWalkGenerator::new(64, 50);
        let query = gen.next_series();
        let mut distances = Vec::new();
        for variant in VariantKind::all() {
            for materialized in [false, true] {
                let config = IndexConfig::new(variant, 64).materialized(materialized);
                let stats = IoStats::shared();
                let subdir = dir.file(&format!("{}-{}", config.display_name(), materialized));
                let (index, report) =
                    StaticIndex::build(&ds, config, &subdir, Arc::clone(&stats)).unwrap();
                assert_eq!(index.len(), series.len() as u64);
                assert!(report.footprint_bytes > 0);
                let (nn, _) = index.exact_knn(&query.values, 1).unwrap();
                distances.push(nn[0].squared_distance);
            }
        }
        // Every variant must return the same exact nearest-neighbour distance.
        for d in &distances {
            assert!((d - distances[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn display_names_follow_figure_1() {
        assert_eq!(
            IndexConfig::new(VariantKind::CTree, 64).display_name(),
            "CTree"
        );
        assert_eq!(
            IndexConfig::new(VariantKind::Ads, 64)
                .materialized(true)
                .display_name(),
            "ADS+Full"
        );
        let sc = StreamingConfig::new(
            VariantKind::Clsm,
            WindowScheme::BoundedTemporalPartitioning,
            64,
        );
        assert_eq!(sc.display_name(), "CLSM BTP");
    }

    #[test]
    fn recommendation_translates_to_config() {
        let rec = recommend(&Scenario::streaming(10_000, 64));
        let config = IndexConfig::from_recommendation(&rec, 64);
        assert_eq!(config.variant, VariantKind::Clsm);
        let rec = recommend(&Scenario::static_archive(10_000, 64));
        let config = IndexConfig::from_recommendation(&rec, 64);
        assert_eq!(config.variant, VariantKind::CTree);
    }

    #[test]
    fn streaming_variants_ingest_and_answer_window_queries() {
        let dir = ScratchDir::new("core-stream").unwrap();
        let mut gen = coconut_series::generator::SeismicStreamGenerator::new(64, 3, 0.1);
        let batches: Vec<_> = (0..6).map(|_| gen.next_batch(40)).collect();
        let query = gen.quake_template();
        let configs = [
            StreamingConfig::new(VariantKind::Ads, WindowScheme::PostProcessing, 64),
            StreamingConfig::new(VariantKind::Clsm, WindowScheme::PostProcessing, 64),
            StreamingConfig::new(VariantKind::CTree, WindowScheme::TemporalPartitioning, 64),
            StreamingConfig::new(
                VariantKind::Clsm,
                WindowScheme::BoundedTemporalPartitioning,
                64,
            ),
        ];
        let mut results = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            let mut cfg = *cfg;
            cfg.buffer_capacity = 40;
            let stats = IoStats::shared();
            let mut index = streaming_index(cfg, &dir.file(&format!("s{i}")), stats).unwrap();
            for b in &batches {
                index.ingest_batch(b).unwrap();
            }
            assert_eq!(index.len(), 240);
            let r = index
                .query_window(&query, 1, Some((100, 200)), true)
                .unwrap();
            assert_eq!(r.neighbors.len(), 1);
            results.push(r.neighbors[0].squared_distance);
        }
        for d in &results {
            assert!((d - results[0]).abs() < 1e-6, "streaming variants disagree");
        }
    }
}
