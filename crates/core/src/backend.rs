//! The `ExecutionBackend` seam: *where* a Palm request runs.
//!
//! Every request path in the repo funnels through [`PalmServer`] — the
//! service verbs, their JSON encoding, deadlines, and error taxonomy are
//! all defined there.  This module abstracts only the *placement* of that
//! execution: an [`ExecutionBackend`] accepts a [`PalmRequest`] plus an
//! optional deadline and returns the [`PalmResponse`] some Palm instance
//! produced, whether that instance lives in this process
//! ([`LocalBackend`]) or behind a socket (`coconut-net`'s
//! `RemoteBackend`).
//!
//! The contract that makes scatter-gather provable is *transparency*: a
//! backend never rewrites, reorders, or re-rounds the response.  The
//! coordinator merges per-shard answers with the engine's own
//! [`merge_topk`](coconut_ctree::engine::merge_topk) total order, so two
//! topologies that execute the same per-shard requests return
//! bit-identical merged answers regardless of which backend carried them.
//!
//! Service-level errors (unknown index, deadline, overload shed) are
//! *responses* — they travel inside `Ok(PalmResponse::Error { .. })` just
//! as they travel inside a wire frame.  [`BackendError`] is reserved for
//! the transport itself failing: the process behind a remote backend died
//! or the bytes that came back were not a Palm response.  A local backend
//! has no transport, so it is infallible by construction.

use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_json::{FromJson, Json, ToJson};
use coconut_parallel::CancelToken;

use crate::palm::{PalmRequest, PalmResponse, PalmServer};

/// Transport-level failure of a backend — the request never produced a
/// Palm response at all (distinct from `PalmResponse::Error`, which is a
/// well-formed service answer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The backend cannot be reached: connection refused, reset, timed
    /// out below the protocol level, or the worker process is gone.
    Unavailable(String),
    /// The backend answered with bytes that do not parse as a Palm
    /// response — a protocol bug, not a service condition.
    Protocol(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Unavailable(why) => write!(f, "backend unavailable: {why}"),
            BackendError::Protocol(why) => write!(f, "backend protocol error: {why}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A place where Palm requests execute.
pub trait ExecutionBackend: Send + Sync {
    /// Human-readable identity for logs and error messages (e.g.
    /// `"local"` or `"worker 127.0.0.1:9042"`).
    fn describe(&self) -> String;

    /// Executes one request to completion.  `deadline` bounds the whole
    /// call from now; `None` means the caller imposes no limit.  Running
    /// past the deadline must surface as a `deadline_exceeded` error
    /// *response* when the engine noticed, or [`BackendError::Unavailable`]
    /// when the transport gave up waiting.
    fn execute(
        &self,
        request: &PalmRequest,
        deadline: Option<Duration>,
    ) -> Result<PalmResponse, BackendError>;
}

/// The in-process placement: requests run directly on a [`PalmServer`]
/// in this address space.  This is the pre-refactor query path, now one
/// implementation among several.
///
/// `execute` round-trips the request through its JSON encoding before
/// handing it to the server.  That costs microseconds per request and
/// buys the identity proof: a local shard and a remote shard present the
/// *same bytes* to the same `PalmServer` entry point (`coconut-json`
/// prints `f64` shortest-round-trip, so numeric values survive exactly),
/// which is what lets the equivalence suite compare topologies at the
/// bit level rather than "close enough".
pub struct LocalBackend {
    palm: Arc<PalmServer>,
}

impl LocalBackend {
    /// Wraps an in-process server as a backend.
    pub fn new(palm: Arc<PalmServer>) -> Self {
        LocalBackend { palm }
    }

    /// The wrapped server.
    pub fn palm(&self) -> &Arc<PalmServer> {
        &self.palm
    }
}

impl ExecutionBackend for LocalBackend {
    fn describe(&self) -> String {
        "local".to_string()
    }

    fn execute(
        &self,
        request: &PalmRequest,
        deadline: Option<Duration>,
    ) -> Result<PalmResponse, BackendError> {
        let cancel = match deadline {
            None => CancelToken::never(),
            Some(limit) => CancelToken::at(Instant::now() + limit),
        };
        let request_json = request.to_json().to_string();
        let response_json = self.palm.handle_json_with(&request_json, &cancel);
        let parsed = Json::parse(&response_json)
            .map_err(|e| BackendError::Protocol(format!("local response unparseable: {e}")))?;
        PalmResponse::from_json(&parsed)
            .map_err(|e| BackendError::Protocol(format!("local response malformed: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::ScratchDir;

    use crate::{Dataset, IoBackend, PlannerMode, VariantKind};

    fn build(name: &str, dataset_path: String) -> PalmRequest {
        PalmRequest::BuildIndex {
            name: name.into(),
            dataset_path,
            variant: VariantKind::Clsm,
            materialized: true,
            memory_budget_bytes: 8 << 20,
            parallelism: 1,
            query_parallelism: 1,
            shard_count: 1,
            range: None,
            io_overlap: true,
            io_backend: IoBackend::Pread,
            planner: PlannerMode::Fixed,
            compression: coconut_storage::Compression::Off,
        }
    }

    /// A query through the backend seam answers bit-identically to the
    /// same query handled directly — the JSON round-trip is lossless.
    #[test]
    fn local_backend_is_transparent() {
        let dir = ScratchDir::new("backend-local").unwrap();
        let mut gen = RandomWalkGenerator::new(64, 41);
        let series = gen.generate(96);
        let dataset_path = dir.file("raw.bin");
        Dataset::create_from_series(&dataset_path, &series).unwrap();

        let palm = Arc::new(PalmServer::new(dir.file("work")));
        let backend = LocalBackend::new(Arc::clone(&palm));
        let built = backend
            .execute(
                &build("b", dataset_path.to_string_lossy().into_owned()),
                None,
            )
            .unwrap();
        assert!(matches!(built, PalmResponse::Built { .. }), "{built:?}");

        let query = PalmRequest::Query {
            name: "b".into(),
            query: series[17].values.iter().map(|v| v + 0.01).collect(),
            k: 5,
            exact: true,
        };
        let direct = palm.handle(query.clone());
        let via_backend = backend.execute(&query, None).unwrap();
        match (direct, via_backend) {
            (
                PalmResponse::QueryResult {
                    ids: i1,
                    squared_distances: d1,
                    cost: c1,
                    ..
                },
                PalmResponse::QueryResult {
                    ids: i2,
                    squared_distances: d2,
                    cost: c2,
                    ..
                },
            ) => {
                assert_eq!(i1, i2);
                let b1: Vec<u64> = d1.iter().map(|d| d.to_bits()).collect();
                let b2: Vec<u64> = d2.iter().map(|d| d.to_bits()).collect();
                assert_eq!(
                    b1, b2,
                    "squared distances must survive the seam bit-exactly"
                );
                assert_eq!(c1, c2);
            }
            other => panic!("unexpected responses {other:?}"),
        }
    }

    /// A zero deadline surfaces as the service's own typed
    /// `deadline_exceeded` response, not a transport error.
    #[test]
    fn local_backend_maps_deadline_to_service_error() {
        let dir = ScratchDir::new("backend-deadline").unwrap();
        let palm = Arc::new(PalmServer::new(dir.file("work")));
        let backend = LocalBackend::new(palm);
        let response = backend
            .execute(
                &PalmRequest::Query {
                    name: "missing".into(),
                    query: vec![0.0; 8],
                    k: 1,
                    exact: false,
                },
                Some(Duration::from_millis(0)),
            )
            .unwrap();
        // The index does not exist, so the service answers before the
        // engine ever consults the token; what matters here is that the
        // seam returned a typed response rather than failing transport.
        assert!(
            matches!(response, PalmResponse::Error { .. }),
            "{response:?}"
        );
    }
}
