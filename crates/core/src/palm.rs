//! The "algorithms server" request/response layer.
//!
//! The demo's GUI client talks to a back-end algorithms server over REST with
//! JSON payloads (Section 4, "Implementation").  This module reproduces that
//! protocol as a library: [`PalmServer`] holds built indexes keyed by name
//! and processes [`PalmRequest`] values, returning [`PalmResponse`] values
//! that serialize to the same kind of JSON the GUI would consume (build
//! metrics, query results, heat-map style access summaries, recommender
//! advice).  Examples and benchmarks drive it directly; an actual HTTP
//! front-end would be a thin wrapper around [`PalmServer::handle`].
//!
//! # Concurrency
//!
//! [`PalmServer::handle`] takes `&self`: the server is shared across request
//! threads, so many clients are served concurrently.  The lock hierarchy has
//! two levels (see DESIGN.md, "Palm service concurrency"):
//!
//! 1. the **registry** — an `RwLock` over the name → index map, held only
//!    long enough to look a slot up (read) or register a built index
//!    (write); index builds run entirely outside it;
//! 2. one **slot** `RwLock` per index — queries share the read side (reads
//!    of one index run concurrently with each other), streaming
//!    [`PalmRequest::Insert`]s take the write side, so every query observes
//!    a consistent snapshot of the index.
//!
//! A [`PalmRequest::Batch`] dispatches its sub-requests across a
//! [`WorkerPool`]; kNN queries sharing `(index, k, exact)` are grouped and
//! executed through the engine's batched round pipeline
//! (`coconut_ctree::engine::batch_knn`), whose per-query answers and costs
//! are bit-identical to one-at-a-time execution.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_json::{member, member_or, FromJson, Json, JsonError, ToJson};
use coconut_parallel::{CancelToken, WorkerPool};
use parking_lot::{Mutex, RwLock};

use crate::{
    recommend, BuildReport, Dataset, IndexConfig, IoBackend, IoStats, PlanReport, PlannerMode,
    Scenario, Series, StaticIndex, VariantKind,
};
use coconut_storage::SharedIoStats;

/// A request to the algorithms server.
#[derive(Debug, Clone)]
pub enum PalmRequest {
    /// Build an index over a dataset file.
    BuildIndex {
        /// Name under which the index is registered.
        name: String,
        /// Path of the raw dataset file.
        dataset_path: String,
        /// Structure family.
        variant: VariantKind,
        /// Whether to materialize the series inside the index.
        materialized: bool,
        /// Memory budget in bytes.
        memory_budget_bytes: usize,
        /// Worker threads for the build (`1` = sequential, `0` = all cores).
        /// Optional in the JSON protocol; defaults to `1`.
        parallelism: usize,
        /// Worker threads for the query fan-out (`1` = sequential, `0` =
        /// all cores).  Optional in the JSON protocol; defaults to `1`.
        /// A pure performance knob: query results are identical at every
        /// setting.
        query_parallelism: usize,
        /// Key-range shards per CLSM compaction.  Optional in the JSON
        /// protocol; defaults to `1` (ignored by non-CLSM variants).
        shard_count: usize,
        /// Restrict the build to the dataset's id window `[lo, hi)`.
        /// Optional in the JSON protocol (`range_lo`/`range_hi` members);
        /// defaults to the whole file.  Ids stay global (a series' id is
        /// its file position), which is what makes service-level sharding
        /// sound: each worker builds over its own contiguous id range of
        /// the shared dataset and merged answers need no id translation.
        range: Option<(u64, u64)>,
        /// Overlap computation with I/O during the build.  Optional in the
        /// JSON protocol; defaults to `true`.  A pure performance knob:
        /// index files, answers and I/O totals are identical either way.
        io_overlap: bool,
        /// Read backend for the index files ("pread" | "mmap").  Optional
        /// in the JSON protocol; defaults to "pread".  A pure performance
        /// knob: index files, answers and I/O totals are identical either
        /// way.
        io_backend: IoBackend,
        /// Query planning mode ("fixed" | "adaptive").  Optional in the
        /// JSON protocol; defaults to "fixed".  A pure performance knob:
        /// query results are identical in both modes — "adaptive" only
        /// changes which execution knobs the engine runs with, and attaches
        /// an `explain` member to query responses.
        planner: PlannerMode,
        /// On-disk compression of sorted runs and leaf blocks ("off" |
        /// "prefix").  Optional in the JSON protocol; defaults to the
        /// `COCONUT_COMPRESSION` environment variable (itself defaulting to
        /// "off").  A pure performance knob: answers, `QueryCost` and the
        /// logical I/O totals are identical at either setting.
        compression: coconut_storage::Compression,
    },
    /// Run a query against a registered index.
    Query {
        /// Name of the index to query.
        name: String,
        /// The query series values.
        query: Vec<f32>,
        /// Number of neighbours.
        k: usize,
        /// Exact or approximate search.
        exact: bool,
    },
    /// Execute a batch of sub-requests concurrently on the worker pool.
    ///
    /// Responses come back in request order.  kNN queries sharing
    /// `(index, k, exact)` are grouped through the engine's batched round
    /// pipeline, so each one's answers and cost are identical to issuing it
    /// alone.
    Batch {
        /// The sub-requests; each produces one entry of
        /// [`PalmResponse::Batch`].
        requests: Vec<PalmRequest>,
    },
    /// Append new series to a registered index (streaming ingest).  Series
    /// ids are assigned sequentially after the index's current entries.
    Insert {
        /// Name of the index to append to.
        name: String,
        /// The series values, one inner vector per series.
        series: Vec<Vec<f32>>,
        /// Arrival timestamp shared by the batch.  Optional in the JSON
        /// protocol; defaults to `0`.
        timestamp: u64,
        /// First id to assign, overriding the default
        /// `index.len()`-sequential assignment.  Optional in the JSON
        /// protocol.  Used by the scatter-gather coordinator, which owns
        /// the global id space and routes each insert to one shard; direct
        /// single-node clients leave it unset.
        base_id: Option<u64>,
    },
    /// Fetch the build report of a registered index.
    Metrics {
        /// Name of the index.
        name: String,
    },
    /// Ask the recommender for advice.
    Recommend {
        /// The application scenario.
        scenario: Scenario,
    },
    /// List registered indexes.
    ListIndexes,
    /// Fetch service counters (requests, cache hits/misses, shed load,
    /// deadline misses).
    Stats,
}

/// A response from the algorithms server.
#[derive(Debug, Clone)]
pub enum PalmResponse {
    /// Result of a build request.
    Built {
        /// Index name.
        name: String,
        /// Variant display name ("CTreeFull", ...).
        variant: String,
        /// Build metrics.
        report: BuildReport,
    },
    /// Result of a query request.
    QueryResult {
        /// Index name.
        name: String,
        /// Neighbour ids, ascending distance.
        ids: Vec<u64>,
        /// Neighbour distances (Euclidean, not squared).
        distances: Vec<f64>,
        /// Squared distances, exactly as the engine compares them.  The
        /// full neighbour identity `(squared_distance, id, timestamp)`
        /// travels on the wire so a scatter-gather coordinator can merge
        /// per-shard top-k with the engine's own total order, bit-exactly
        /// (`sqrt` rounding could collapse distinct squared distances).
        squared_distances: Vec<f64>,
        /// Arrival timestamps of the matched entries (zero for static
        /// data); the tie-break of last resort in the engine's order.
        timestamps: Vec<u64>,
        /// Query latency in milliseconds.  For a query answered inside a
        /// batched group this is the wall-clock of the whole group.
        elapsed_ms: f64,
        /// Entries examined / refined / raw fetches / blocks read+skipped.
        cost: QueryCostJson,
        /// The planner's recorded decision for this execution, present only
        /// when the index runs in "adaptive" mode *and* the answer was
        /// computed (cache hits carry no plan — nothing was planned).
        /// Serialized only when present.
        explain: Option<PlanReportJson>,
    },
    /// Per-sub-request responses of a batch, in request order.
    Batch {
        /// One response per sub-request.
        responses: Vec<PalmResponse>,
    },
    /// Result of an insert request.
    Inserted {
        /// Index name.
        name: String,
        /// Number of series appended by this request.
        inserted: u64,
        /// Total entries in the index afterwards.
        total: u64,
    },
    /// Metrics of a registered index.
    Metrics {
        /// Index name.
        name: String,
        /// Build metrics.
        report: BuildReport,
        /// Current footprint in bytes.
        footprint_bytes: u64,
    },
    /// Recommender advice.
    Recommendation {
        /// The recommendation, including the rationale path.
        recommendation: coconut_recommender::Recommendation,
    },
    /// Names of registered indexes.
    Indexes {
        /// Registered names.
        names: Vec<String>,
    },
    /// Service counters (see [`PalmRequest::Stats`]).
    Stats {
        /// Requests handled (batch sub-requests count individually).
        requests: u64,
        /// Queries answered from the result cache.
        cache_hits: u64,
        /// Queries that missed the result cache (counted only when the
        /// cache is enabled).
        cache_misses: u64,
        /// Entries currently resident in the result cache.
        cache_entries: u64,
        /// Requests shed by admission control (reported by a network
        /// front-end via [`PalmServer::note_shed`]).
        shed: u64,
        /// Requests that missed their deadline.
        deadline_exceeded: u64,
        /// Indexes currently registered.
        indexes: u64,
        /// Queries (and batched groups) executed through the adaptive
        /// planner's compute path.
        planner_adaptive: u64,
        /// Queries (and batched groups) executed with fixed knobs.
        planner_fixed: u64,
        /// Adaptive plans that chose a parallel fan-out (>1 worker).
        plans_parallel: u64,
        /// Adaptive plans that chose sequential execution (1 worker).
        plans_sequential: u64,
        /// Adaptive plans that disabled read-ahead (cache-resident index).
        plans_read_ahead_off: u64,
        /// Adaptive plans that split the batch into round-pipeline chunks.
        plans_chunked: u64,
    },
    /// The request failed.
    Error {
        /// Machine-readable error kind; one of the `ERROR_KIND_*`
        /// constants ("malformed_request", "unknown_index", "config",
        /// "storage", "series", "deadline_exceeded", "overloaded",
        /// "shutting_down").
        kind: String,
        /// Human-readable error message.
        message: String,
        /// For `deadline_exceeded`: the work performed before the
        /// cancellation was observed.  Serialized only when present.
        partial_cost: Option<QueryCostJson>,
        /// For `overloaded`: how long the client should wait before
        /// retrying.  Attached by the network front-end's admission
        /// control and preserved end-to-end so retry loops (the client's
        /// `call_with_retry`, the coordinator's per-shard retries) can
        /// honour the server's hint.  Serialized only when present.
        retry_after_ms: Option<u64>,
        /// For `shard_unavailable` (and other scatter-gather failures):
        /// the per-shard partial costs the coordinator had collected when
        /// the request failed, in shard order.  Serialized only when
        /// present.
        shard_costs: Option<Vec<ShardCostJson>>,
    },
}

/// Per-shard cost evidence attached to scatter-gather error responses: what
/// each worker reported (or failed to report) before the coordinator gave
/// up on the request.
#[derive(Debug, Clone, Copy)]
pub struct ShardCostJson {
    /// Shard index in the coordinator's configured order.
    pub shard: u64,
    /// The shard's (possibly partial) cost; `None` when the shard became
    /// unreachable before reporting anything.
    pub cost: Option<QueryCostJson>,
}

impl ToJson for ShardCostJson {
    fn to_json(&self) -> Json {
        let mut members = vec![("shard", self.shard.to_json())];
        if let Some(cost) = &self.cost {
            members.push(("cost", cost.to_json()));
        }
        Json::obj(members)
    }
}

impl FromJson for ShardCostJson {
    fn from_json(json: &Json) -> coconut_json::Result<ShardCostJson> {
        Ok(ShardCostJson {
            shard: member(json, "shard")?,
            cost: match json.get("cost") {
                Some(cost) => Some(QueryCostJson::from_json(cost)?),
                None => None,
            },
        })
    }
}

/// Error kind for requests that could not be parsed as JSON / protocol.
pub const ERROR_KIND_MALFORMED: &str = "malformed_request";
/// Error kind for requests naming an unregistered index.
pub const ERROR_KIND_UNKNOWN_INDEX: &str = "unknown_index";
/// Error kind for configuration errors (mismatched lengths, bad knobs).
pub const ERROR_KIND_CONFIG: &str = "config";
/// Error kind for storage-layer failures.
pub const ERROR_KIND_STORAGE: &str = "storage";
/// Error kind for raw-dataset failures.
pub const ERROR_KIND_SERIES: &str = "series";
/// Error kind for requests cancelled because their deadline passed.  The
/// response carries the partial [`QueryCostJson`] accumulated so far.
pub const ERROR_KIND_DEADLINE: &str = "deadline_exceeded";
/// Error kind for requests shed by admission control.  Emitted by the
/// network front-end (`coconut_net`), which adds a `retry_after_ms` hint.
pub const ERROR_KIND_OVERLOADED: &str = "overloaded";
/// Error kind for requests refused because the server is draining before
/// exit.  Emitted by the network front-end (`coconut_net`).
pub const ERROR_KIND_SHUTTING_DOWN: &str = "shutting_down";
/// Error kind for scatter-gather requests that lost a shard: a worker
/// became unreachable (connection refused, reset, or silent past the
/// deadline) before every fragment of the answer arrived.  Emitted by the
/// coordinator (`coconut_net::coordinator`), carrying the per-shard
/// partial costs collected so far in `shard_costs`.
pub const ERROR_KIND_SHARD_UNAVAILABLE: &str = "shard_unavailable";

/// Internal error carrying the machine-readable kind alongside the message.
struct ServiceError {
    kind: &'static str,
    message: String,
    partial_cost: Option<QueryCostJson>,
}

impl ServiceError {
    fn unknown_index(name: &str) -> Self {
        ServiceError {
            kind: ERROR_KIND_UNKNOWN_INDEX,
            message: format!("no index registered under '{name}'"),
            partial_cost: None,
        }
    }

    fn config(message: String) -> Self {
        ServiceError {
            kind: ERROR_KIND_CONFIG,
            message,
            partial_cost: None,
        }
    }

    /// A request cancelled before (or while) touching the index: the
    /// partial cost is whatever the engine accumulated up to the round
    /// boundary where the cancellation was observed.
    fn deadline(partial_cost: QueryCostJson) -> Self {
        ServiceError {
            kind: ERROR_KIND_DEADLINE,
            message: "deadline exceeded before the request completed".to_string(),
            partial_cost: Some(partial_cost),
        }
    }

    fn into_response(self) -> PalmResponse {
        PalmResponse::Error {
            kind: self.kind.to_string(),
            message: self.message,
            partial_cost: self.partial_cost,
            retry_after_ms: None,
            shard_costs: None,
        }
    }
}

impl From<crate::IndexError> for ServiceError {
    fn from(e: crate::IndexError) -> Self {
        if let crate::IndexError::Cancelled { partial_cost } = &e {
            return ServiceError::deadline((*partial_cost).into());
        }
        let kind = match &e {
            crate::IndexError::Config(_) => ERROR_KIND_CONFIG,
            crate::IndexError::Storage(_) => ERROR_KIND_STORAGE,
            crate::IndexError::Series(_) => ERROR_KIND_SERIES,
            crate::IndexError::Cancelled { .. } => unreachable!("handled above"),
        };
        ServiceError {
            kind,
            message: e.to_string(),
            partial_cost: None,
        }
    }
}

impl From<coconut_series::SeriesError> for ServiceError {
    fn from(e: coconut_series::SeriesError) -> Self {
        ServiceError {
            kind: ERROR_KIND_SERIES,
            message: e.to_string(),
            partial_cost: None,
        }
    }
}

/// JSON-friendly projection of [`coconut_ctree::query::QueryCost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCostJson {
    /// Entries whose summarization was examined.
    pub entries_examined: u64,
    /// Entries refined with a true distance computation.
    pub entries_refined: u64,
    /// Raw series fetched from the data file.
    pub raw_fetches: u64,
    /// Blocks/partitions read.
    pub blocks_read: u64,
    /// Blocks/partitions skipped by pruning.
    pub blocks_skipped: u64,
}

impl From<coconut_ctree::query::QueryCost> for QueryCostJson {
    fn from(c: coconut_ctree::query::QueryCost) -> Self {
        QueryCostJson {
            entries_examined: c.entries_examined,
            entries_refined: c.entries_refined,
            raw_fetches: c.raw_fetches,
            blocks_read: c.blocks_read,
            blocks_skipped: c.blocks_skipped,
        }
    }
}

impl ToJson for QueryCostJson {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("entries_examined", self.entries_examined.to_json()),
            ("entries_refined", self.entries_refined.to_json()),
            ("raw_fetches", self.raw_fetches.to_json()),
            ("blocks_read", self.blocks_read.to_json()),
            ("blocks_skipped", self.blocks_skipped.to_json()),
        ])
    }
}

impl FromJson for QueryCostJson {
    fn from_json(json: &Json) -> coconut_json::Result<QueryCostJson> {
        Ok(QueryCostJson {
            entries_examined: member(json, "entries_examined")?,
            entries_refined: member(json, "entries_refined")?,
            raw_fetches: member(json, "raw_fetches")?,
            blocks_read: member(json, "blocks_read")?,
            blocks_skipped: member(json, "blocks_skipped")?,
        })
    }
}

/// JSON-friendly projection of [`crate::PlanReport`]: the captured
/// [`crate::PlannerInputs`] snapshot and the [`crate::PlanDecision`] chosen
/// from it, exactly as recorded (replayable: `decision` is the pure
/// `planner::plan` of `inputs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanReportJson {
    /// Index footprint at capture time, bytes.
    pub footprint_bytes: u64,
    /// Estimated page-cache budget at capture time, bytes.
    pub cache_budget_bytes: u64,
    /// Search units the query fans out over.
    pub unit_count: u64,
    /// Runs/levels backing the index.
    pub run_count: u64,
    /// Cores at capture time.
    pub cores: u64,
    /// Neighbours requested.
    pub k: u64,
    /// Queries covered by this plan.
    pub batch_width: u64,
    /// Exact or approximate search.
    pub exact: bool,
    /// Random share of reads so far, permille.
    pub random_read_permille: u64,
    /// Chosen engine fan-out workers.
    pub query_parallelism: u64,
    /// Chosen read-ahead engagement.
    pub read_ahead: bool,
    /// Chosen read-ahead gate, bytes.
    pub prefetch_min_bytes: u64,
    /// Chosen batch round chunk.
    pub batch_chunk: u64,
}

impl From<PlanReport> for PlanReportJson {
    fn from(r: PlanReport) -> Self {
        PlanReportJson {
            footprint_bytes: r.inputs.footprint_bytes,
            cache_budget_bytes: r.inputs.cache_budget_bytes,
            unit_count: r.inputs.unit_count as u64,
            run_count: r.inputs.run_count as u64,
            cores: r.inputs.cores as u64,
            k: r.inputs.k as u64,
            batch_width: r.inputs.batch_width as u64,
            exact: r.inputs.exact,
            random_read_permille: r.inputs.random_read_permille as u64,
            query_parallelism: r.decision.query_parallelism as u64,
            read_ahead: r.decision.read_ahead,
            prefetch_min_bytes: r.decision.prefetch_min_bytes,
            batch_chunk: r.decision.batch_chunk as u64,
        }
    }
}

impl ToJson for PlanReportJson {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "inputs",
                Json::obj(vec![
                    ("footprint_bytes", self.footprint_bytes.to_json()),
                    ("cache_budget_bytes", self.cache_budget_bytes.to_json()),
                    ("unit_count", self.unit_count.to_json()),
                    ("run_count", self.run_count.to_json()),
                    ("cores", self.cores.to_json()),
                    ("k", self.k.to_json()),
                    ("batch_width", self.batch_width.to_json()),
                    ("exact", self.exact.to_json()),
                    ("random_read_permille", self.random_read_permille.to_json()),
                ]),
            ),
            (
                "decision",
                Json::obj(vec![
                    ("query_parallelism", self.query_parallelism.to_json()),
                    ("read_ahead", self.read_ahead.to_json()),
                    ("prefetch_min_bytes", self.prefetch_min_bytes.to_json()),
                    ("batch_chunk", self.batch_chunk.to_json()),
                ]),
            ),
        ])
    }
}

impl FromJson for PlanReportJson {
    fn from_json(json: &Json) -> coconut_json::Result<PlanReportJson> {
        let inputs = json
            .get("inputs")
            .ok_or_else(|| JsonError::new("missing field 'inputs'"))?;
        let decision = json
            .get("decision")
            .ok_or_else(|| JsonError::new("missing field 'decision'"))?;
        Ok(PlanReportJson {
            footprint_bytes: member(inputs, "footprint_bytes")?,
            cache_budget_bytes: member(inputs, "cache_budget_bytes")?,
            unit_count: member(inputs, "unit_count")?,
            run_count: member(inputs, "run_count")?,
            cores: member(inputs, "cores")?,
            k: member(inputs, "k")?,
            batch_width: member(inputs, "batch_width")?,
            exact: member(inputs, "exact")?,
            random_read_permille: member(inputs, "random_read_permille")?,
            query_parallelism: member(decision, "query_parallelism")?,
            read_ahead: member(decision, "read_ahead")?,
            prefetch_min_bytes: member(decision, "prefetch_min_bytes")?,
            batch_chunk: member(decision, "batch_chunk")?,
        })
    }
}

impl ToJson for PalmRequest {
    fn to_json(&self) -> Json {
        match self {
            PalmRequest::BuildIndex {
                name,
                dataset_path,
                variant,
                materialized,
                memory_budget_bytes,
                parallelism,
                query_parallelism,
                shard_count,
                range,
                io_overlap,
                io_backend,
                planner,
                compression,
            } => {
                let mut members = vec![
                    ("type", Json::Str("build_index".into())),
                    ("name", name.to_json()),
                    ("dataset_path", dataset_path.to_json()),
                    ("variant", variant.to_json()),
                    ("materialized", materialized.to_json()),
                    ("memory_budget_bytes", memory_budget_bytes.to_json()),
                    ("parallelism", parallelism.to_json()),
                    ("query_parallelism", query_parallelism.to_json()),
                    ("shard_count", shard_count.to_json()),
                    ("io_overlap", io_overlap.to_json()),
                    ("io_backend", io_backend.to_json()),
                    ("planner", planner.to_json()),
                    ("compression", compression.to_json()),
                ];
                if let Some((lo, hi)) = range {
                    members.push(("range_lo", lo.to_json()));
                    members.push(("range_hi", hi.to_json()));
                }
                Json::obj(members)
            }
            PalmRequest::Query {
                name,
                query,
                k,
                exact,
            } => Json::obj(vec![
                ("type", Json::Str("query".into())),
                ("name", name.to_json()),
                ("query", query.to_json()),
                ("k", k.to_json()),
                ("exact", exact.to_json()),
            ]),
            PalmRequest::Batch { requests } => Json::obj(vec![
                ("type", Json::Str("batch".into())),
                ("requests", requests.to_json()),
            ]),
            PalmRequest::Insert {
                name,
                series,
                timestamp,
                base_id,
            } => {
                let mut members = vec![
                    ("type", Json::Str("insert".into())),
                    ("name", name.to_json()),
                    ("series", series.to_json()),
                    ("timestamp", timestamp.to_json()),
                ];
                if let Some(base) = base_id {
                    members.push(("base_id", base.to_json()));
                }
                Json::obj(members)
            }
            PalmRequest::Metrics { name } => Json::obj(vec![
                ("type", Json::Str("metrics".into())),
                ("name", name.to_json()),
            ]),
            PalmRequest::Recommend { scenario } => Json::obj(vec![
                ("type", Json::Str("recommend".into())),
                ("scenario", scenario.to_json()),
            ]),
            PalmRequest::ListIndexes => Json::obj(vec![("type", Json::Str("list_indexes".into()))]),
            PalmRequest::Stats => Json::obj(vec![("type", Json::Str("stats".into()))]),
        }
    }
}

impl FromJson for PalmRequest {
    fn from_json(json: &Json) -> coconut_json::Result<PalmRequest> {
        let kind: String = member(json, "type")?;
        match kind.as_str() {
            "build_index" => Ok(PalmRequest::BuildIndex {
                name: member(json, "name")?,
                dataset_path: member(json, "dataset_path")?,
                variant: member(json, "variant")?,
                materialized: member(json, "materialized")?,
                memory_budget_bytes: member(json, "memory_budget_bytes")?,
                parallelism: member_or(json, "parallelism", 1)?,
                query_parallelism: member_or(json, "query_parallelism", 1)?,
                shard_count: member_or(json, "shard_count", 1)?,
                range: match (json.get("range_lo"), json.get("range_hi")) {
                    (None, None) => None,
                    (Some(_), Some(_)) => {
                        Some((member(json, "range_lo")?, member(json, "range_hi")?))
                    }
                    _ => {
                        return Err(JsonError::new(
                            "range_lo and range_hi must be given together",
                        ))
                    }
                },
                io_overlap: member_or(json, "io_overlap", true)?,
                io_backend: member_or(json, "io_backend", IoBackend::Pread)?,
                planner: member_or(json, "planner", PlannerMode::Fixed)?,
                compression: member_or(
                    json,
                    "compression",
                    coconut_storage::Compression::from_env(),
                )?,
            }),
            "query" => Ok(PalmRequest::Query {
                name: member(json, "name")?,
                query: member(json, "query")?,
                k: member(json, "k")?,
                exact: member(json, "exact")?,
            }),
            "batch" => Ok(PalmRequest::Batch {
                requests: member(json, "requests")?,
            }),
            "insert" => Ok(PalmRequest::Insert {
                name: member(json, "name")?,
                series: member(json, "series")?,
                timestamp: member_or(json, "timestamp", 0u64)?,
                base_id: match json.get("base_id") {
                    Some(_) => Some(member(json, "base_id")?),
                    None => None,
                },
            }),
            "metrics" => Ok(PalmRequest::Metrics {
                name: member(json, "name")?,
            }),
            "recommend" => Ok(PalmRequest::Recommend {
                scenario: member(json, "scenario")?,
            }),
            "list_indexes" => Ok(PalmRequest::ListIndexes),
            "stats" => Ok(PalmRequest::Stats),
            other => Err(JsonError::new(format!("unknown request type '{other}'"))),
        }
    }
}

impl ToJson for PalmResponse {
    fn to_json(&self) -> Json {
        match self {
            PalmResponse::Built {
                name,
                variant,
                report,
            } => Json::obj(vec![
                ("type", Json::Str("built".into())),
                ("name", name.to_json()),
                ("variant", variant.to_json()),
                ("report", report.to_json()),
            ]),
            PalmResponse::QueryResult {
                name,
                ids,
                distances,
                squared_distances,
                timestamps,
                elapsed_ms,
                cost,
                explain,
            } => {
                let mut members = vec![
                    ("type", Json::Str("query_result".into())),
                    ("name", name.to_json()),
                    ("ids", ids.to_json()),
                    ("distances", distances.to_json()),
                    ("squared_distances", squared_distances.to_json()),
                    ("timestamps", timestamps.to_json()),
                    ("elapsed_ms", elapsed_ms.to_json()),
                    ("cost", cost.to_json()),
                ];
                if let Some(report) = explain {
                    members.push(("explain", report.to_json()));
                }
                Json::obj(members)
            }
            PalmResponse::Batch { responses } => Json::obj(vec![
                ("type", Json::Str("batch_result".into())),
                ("responses", responses.to_json()),
            ]),
            PalmResponse::Inserted {
                name,
                inserted,
                total,
            } => Json::obj(vec![
                ("type", Json::Str("inserted".into())),
                ("name", name.to_json()),
                ("inserted", inserted.to_json()),
                ("total", total.to_json()),
            ]),
            PalmResponse::Metrics {
                name,
                report,
                footprint_bytes,
            } => Json::obj(vec![
                ("type", Json::Str("metrics".into())),
                ("name", name.to_json()),
                ("report", report.to_json()),
                ("footprint_bytes", footprint_bytes.to_json()),
            ]),
            PalmResponse::Recommendation { recommendation } => Json::obj(vec![
                ("type", Json::Str("recommendation".into())),
                ("recommendation", recommendation.to_json()),
            ]),
            PalmResponse::Indexes { names } => Json::obj(vec![
                ("type", Json::Str("indexes".into())),
                ("names", names.to_json()),
            ]),
            PalmResponse::Stats {
                requests,
                cache_hits,
                cache_misses,
                cache_entries,
                shed,
                deadline_exceeded,
                indexes,
                planner_adaptive,
                planner_fixed,
                plans_parallel,
                plans_sequential,
                plans_read_ahead_off,
                plans_chunked,
            } => Json::obj(vec![
                ("type", Json::Str("stats".into())),
                ("requests", requests.to_json()),
                ("cache_hits", cache_hits.to_json()),
                ("cache_misses", cache_misses.to_json()),
                ("cache_entries", cache_entries.to_json()),
                ("shed", shed.to_json()),
                ("deadline_exceeded", deadline_exceeded.to_json()),
                ("indexes", indexes.to_json()),
                ("planner_adaptive", planner_adaptive.to_json()),
                ("planner_fixed", planner_fixed.to_json()),
                ("plans_parallel", plans_parallel.to_json()),
                ("plans_sequential", plans_sequential.to_json()),
                ("plans_read_ahead_off", plans_read_ahead_off.to_json()),
                ("plans_chunked", plans_chunked.to_json()),
            ]),
            PalmResponse::Error {
                kind,
                message,
                partial_cost,
                retry_after_ms,
                shard_costs,
            } => {
                let mut members = vec![
                    ("type", Json::Str("error".into())),
                    ("kind", kind.to_json()),
                    ("message", message.to_json()),
                ];
                if let Some(cost) = partial_cost {
                    members.push(("partial_cost", cost.to_json()));
                }
                if let Some(ms) = retry_after_ms {
                    members.push(("retry_after_ms", ms.to_json()));
                }
                if let Some(costs) = shard_costs {
                    members.push(("shard_costs", costs.to_json()));
                }
                Json::obj(members)
            }
        }
    }
}

impl FromJson for PalmResponse {
    fn from_json(json: &Json) -> coconut_json::Result<PalmResponse> {
        let kind: String = member(json, "type")?;
        match kind.as_str() {
            "built" => Ok(PalmResponse::Built {
                name: member(json, "name")?,
                variant: member(json, "variant")?,
                report: member(json, "report")?,
            }),
            "query_result" => Ok(PalmResponse::QueryResult {
                name: member(json, "name")?,
                ids: member(json, "ids")?,
                distances: member(json, "distances")?,
                squared_distances: member(json, "squared_distances")?,
                timestamps: member(json, "timestamps")?,
                elapsed_ms: member(json, "elapsed_ms")?,
                cost: member(json, "cost")?,
                explain: match json.get("explain") {
                    Some(report) => Some(PlanReportJson::from_json(report)?),
                    None => None,
                },
            }),
            "batch_result" => Ok(PalmResponse::Batch {
                responses: member(json, "responses")?,
            }),
            "inserted" => Ok(PalmResponse::Inserted {
                name: member(json, "name")?,
                inserted: member(json, "inserted")?,
                total: member(json, "total")?,
            }),
            "metrics" => Ok(PalmResponse::Metrics {
                name: member(json, "name")?,
                report: member(json, "report")?,
                footprint_bytes: member(json, "footprint_bytes")?,
            }),
            "recommendation" => Ok(PalmResponse::Recommendation {
                recommendation: member(json, "recommendation")?,
            }),
            "indexes" => Ok(PalmResponse::Indexes {
                names: member(json, "names")?,
            }),
            "stats" => Ok(PalmResponse::Stats {
                requests: member(json, "requests")?,
                cache_hits: member(json, "cache_hits")?,
                cache_misses: member(json, "cache_misses")?,
                cache_entries: member(json, "cache_entries")?,
                shed: member(json, "shed")?,
                deadline_exceeded: member(json, "deadline_exceeded")?,
                indexes: member(json, "indexes")?,
                planner_adaptive: member(json, "planner_adaptive")?,
                planner_fixed: member(json, "planner_fixed")?,
                plans_parallel: member(json, "plans_parallel")?,
                plans_sequential: member(json, "plans_sequential")?,
                plans_read_ahead_off: member(json, "plans_read_ahead_off")?,
                plans_chunked: member(json, "plans_chunked")?,
            }),
            "error" => Ok(PalmResponse::Error {
                kind: member(json, "kind")?,
                message: member(json, "message")?,
                partial_cost: match json.get("partial_cost") {
                    Some(cost) => Some(QueryCostJson::from_json(cost)?),
                    None => None,
                },
                retry_after_ms: match json.get("retry_after_ms") {
                    Some(_) => Some(member(json, "retry_after_ms")?),
                    None => None,
                },
                shard_costs: match json.get("shard_costs") {
                    Some(_) => Some(member(json, "shard_costs")?),
                    None => None,
                },
            }),
            other => Err(JsonError::new(format!("unknown response type '{other}'"))),
        }
    }
}

struct Registered {
    index: StaticIndex,
    report: BuildReport,
    stats: SharedIoStats,
    /// Monotonic write-version tag.  Unique across every index the server
    /// ever registers (drawn from [`PalmServer::versions`]), and bumped
    /// under the slot's write lock by every mutation (insert, sync,
    /// rebuild under the same name).  Cache entries carry the version they
    /// were computed against; a version mismatch makes them invisible, so
    /// a stale entry can never be served — even across an index rebuild
    /// that reuses a name (no ABA).
    version: u64,
}

/// One registered index behind its own reader-writer lock: queries share
/// the read side, streaming inserts take the write side.
type Slot = Arc<RwLock<Registered>>;

/// Key of a memoized query answer: the full identity of the computation.
/// Query values are compared bit-wise (`f32::to_bits`), so `-0.0 != 0.0`
/// and NaN payloads are distinguished — the cache only ever coalesces
/// requests that are bit-identical on the wire.  `window` is carried for
/// forward compatibility with windowed queries; the service protocol
/// currently always issues unwindowed queries (`None`).
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    name: String,
    query_bits: Vec<u32>,
    k: usize,
    exact: bool,
    window: Option<(u64, u64)>,
}

impl CacheKey {
    fn query(name: &str, query: &[f32], k: usize, exact: bool) -> Self {
        CacheKey {
            name: name.to_string(),
            query_bits: query.iter().map(|v| v.to_bits()).collect(),
            k,
            exact,
            window: None,
        }
    }
}

/// A memoized answer: exactly what the compute path produced, so a hit is
/// bit-identical to a recomputation against the same index version.
#[derive(Clone)]
struct CachedAnswer {
    ids: Vec<u64>,
    distances: Vec<f64>,
    squared_distances: Vec<f64>,
    timestamps: Vec<u64>,
    cost: QueryCostJson,
}

impl CachedAnswer {
    /// Captures the engine's answer with full neighbour identity.
    fn from_neighbors(
        neighbors: &[coconut_series::distance::Neighbor],
        cost: QueryCostJson,
    ) -> Self {
        CachedAnswer {
            ids: neighbors.iter().map(|n| n.id).collect(),
            distances: neighbors.iter().map(|n| n.distance()).collect(),
            squared_distances: neighbors.iter().map(|n| n.squared_distance).collect(),
            timestamps: neighbors.iter().map(|n| n.timestamp).collect(),
            cost,
        }
    }
    /// `explain` is the plan that drove this computation — `None` for cache
    /// hits (nothing was planned) and for fixed-mode executions.
    fn into_response(
        self,
        name: &str,
        elapsed_ms: f64,
        explain: Option<PlanReportJson>,
    ) -> PalmResponse {
        PalmResponse::QueryResult {
            name: name.to_string(),
            ids: self.ids,
            distances: self.distances,
            squared_distances: self.squared_distances,
            timestamps: self.timestamps,
            elapsed_ms,
            cost: self.cost,
            explain,
        }
    }
}

struct CacheEntry {
    version: u64,
    answer: CachedAnswer,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    /// FIFO insertion order used for eviction.  May hold keys already
    /// purged from `map`; eviction skips them.
    order: VecDeque<CacheKey>,
}

/// Bounded result cache with version-tagged entries (see [`Registered`]).
struct ResultCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Returns the cached answer iff it was computed against exactly
    /// `version`; a stale entry is dropped on sight.
    fn lookup(&self, key: &CacheKey, version: u64) -> Option<CachedAnswer> {
        let mut inner = self.inner.lock();
        match inner.map.get(key) {
            Some(entry) if entry.version == version => Some(entry.answer.clone()),
            Some(_) => {
                inner.map.remove(key);
                None
            }
            None => None,
        }
    }

    fn insert(&self, key: CacheKey, version: u64, answer: CachedAnswer) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.map.get_mut(&key) {
            // Same key, possibly newer version: replace in place.
            *entry = CacheEntry { version, answer };
            return;
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, CacheEntry { version, answer });
    }

    /// Drops every entry belonging to `name`.  The version tags already
    /// make such entries unservable; the purge just returns their memory.
    fn purge(&self, name: &str) {
        let mut inner = self.inner.lock();
        inner.map.retain(|key, _| key.name != name);
        inner.order.retain(|key| key.name != name);
    }

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

/// Monotonic service counters, updated with relaxed atomics (they are
/// telemetry, not synchronization).
#[derive(Default)]
pub struct ServiceStats {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    planner_adaptive: AtomicU64,
    planner_fixed: AtomicU64,
    plans_parallel: AtomicU64,
    plans_sequential: AtomicU64,
    plans_read_ahead_off: AtomicU64,
    plans_chunked: AtomicU64,
}

/// A point-in-time copy of [`ServiceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStatsSnapshot {
    /// Requests handled (batch sub-requests count individually).
    pub requests: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that consulted the result cache and missed.
    pub cache_misses: u64,
    /// Requests shed by admission control (see [`PalmServer::note_shed`]).
    pub shed: u64,
    /// Requests that missed their deadline.
    pub deadline_exceeded: u64,
    /// Queries (and batched groups) executed through the adaptive planner.
    pub planner_adaptive: u64,
    /// Queries (and batched groups) executed with fixed knobs.
    pub planner_fixed: u64,
    /// Adaptive plans that chose a parallel fan-out.
    pub plans_parallel: u64,
    /// Adaptive plans that chose sequential execution.
    pub plans_sequential: u64,
    /// Adaptive plans that disabled read-ahead.
    pub plans_read_ahead_off: u64,
    /// Adaptive plans that chunked the batch round shape.
    pub plans_chunked: u64,
}

impl ServiceStats {
    /// Reads all counters.
    pub fn snapshot(&self) -> ServiceStatsSnapshot {
        ServiceStatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            planner_adaptive: self.planner_adaptive.load(Ordering::Relaxed),
            planner_fixed: self.planner_fixed.load(Ordering::Relaxed),
            plans_parallel: self.plans_parallel.load(Ordering::Relaxed),
            plans_sequential: self.plans_sequential.load(Ordering::Relaxed),
            plans_read_ahead_off: self.plans_read_ahead_off.load(Ordering::Relaxed),
            plans_chunked: self.plans_chunked.load(Ordering::Relaxed),
        }
    }

    /// Folds one compute-path execution into the planner counters: `None`
    /// means the index ran with fixed knobs, `Some` is the adaptive plan
    /// that drove the execution (its decision is tallied by knob value).
    fn note_plan(&self, report: Option<&PlanReport>) {
        match report {
            None => {
                self.planner_fixed.fetch_add(1, Ordering::Relaxed);
            }
            Some(report) => {
                self.planner_adaptive.fetch_add(1, Ordering::Relaxed);
                if report.decision.query_parallelism > 1 {
                    self.plans_parallel.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.plans_sequential.fetch_add(1, Ordering::Relaxed);
                }
                if !report.decision.read_ahead {
                    self.plans_read_ahead_off.fetch_add(1, Ordering::Relaxed);
                }
                if report.decision.batch_chunk < report.inputs.batch_width {
                    self.plans_chunked.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// The in-process algorithms server.
///
/// `handle` takes `&self`, so one server is shared across request threads;
/// see the module docs for the lock hierarchy.
pub struct PalmServer {
    work_dir: PathBuf,
    indexes: RwLock<HashMap<String, Slot>>,
    pool: WorkerPool,
    /// Result cache; `None` (the default) disables memoization entirely.
    cache: Option<ResultCache>,
    stats: ServiceStats,
    /// Source of unique [`Registered::version`] tags.
    versions: AtomicU64,
}

impl PalmServer {
    /// Creates a server that stores index files under `work_dir`.  Batch
    /// sub-requests fan out over one worker per available core; see
    /// [`PalmServer::with_batch_parallelism`].
    pub fn new<P: Into<PathBuf>>(work_dir: P) -> Self {
        PalmServer {
            work_dir: work_dir.into(),
            indexes: RwLock::new(HashMap::new()),
            pool: WorkerPool::new(0),
            cache: None,
            stats: ServiceStats::default(),
            versions: AtomicU64::new(0),
        }
    }

    /// Sets the worker count batch sub-requests are dispatched over
    /// (`1` = sequential, `0` = one per available core).  A pure
    /// performance knob: batch responses are identical at every setting.
    pub fn with_batch_parallelism(mut self, workers: usize) -> Self {
        self.pool = WorkerPool::new(workers);
        self
    }

    /// Enables the result cache, memoizing up to `capacity` query answers
    /// keyed by `(index, query bits, k, exact, window)`.  Entries are
    /// version-tagged and invalidated by the write side (inserts, syncs,
    /// rebuilds), so a hit is bit-identical to recomputation: answers are
    /// a pure function of the key and the index version.
    pub fn with_result_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(ResultCache::new(capacity));
        self
    }

    /// Whether [`PalmServer::with_result_cache`] was applied.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Service counters (shared with the `stats` verb).
    pub fn stats(&self) -> ServiceStatsSnapshot {
        self.stats.snapshot()
    }

    /// Records a request shed by admission control.  The network
    /// front-end calls this when it refuses a request before it ever
    /// reaches [`PalmServer::handle`], so the `stats` verb still sees it.
    pub fn note_shed(&self) {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
    }

    fn next_version(&self) -> u64 {
        self.versions.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Handles one request, never panicking: failures become
    /// [`PalmResponse::Error`] carrying a machine-readable `kind`.
    pub fn handle(&self, request: PalmRequest) -> PalmResponse {
        self.handle_with(request, &CancelToken::never())
    }

    /// [`PalmServer::handle`] under a cancellation token: the engine
    /// checks it at round boundaries and aborts with
    /// [`ERROR_KIND_DEADLINE`] (carrying the partial cost) once it trips.
    /// Completed requests are unaffected by the token — answers stay
    /// bit-identical to the untokened path.
    pub fn handle_with(&self, request: PalmRequest, cancel: &CancelToken) -> PalmResponse {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let response = match self.try_handle(request, cancel) {
            Ok(response) => response,
            Err(e) => e.into_response(),
        };
        if let PalmResponse::Error { kind, .. } = &response {
            if kind == ERROR_KIND_DEADLINE {
                self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
        }
        response
    }

    /// Handles a request given as a JSON string, returning a JSON response
    /// (the exact shape the GUI client would exchange over REST).
    pub fn handle_json(&self, request_json: &str) -> String {
        self.handle_json_with(request_json, &CancelToken::never())
    }

    /// [`PalmServer::handle_json`] under a cancellation token.  A numeric
    /// top-level `deadline_ms` member tightens the token for this request
    /// only (relative to now); the response then reports
    /// `deadline_exceeded` if the engine could not finish in time.
    pub fn handle_json_with(&self, request_json: &str, cancel: &CancelToken) -> String {
        let response = match Json::parse(request_json) {
            Ok(json) => self.handle_parsed(&json, cancel),
            Err(e) => PalmResponse::Error {
                kind: ERROR_KIND_MALFORMED.to_string(),
                message: format!("malformed request: {e}"),
                partial_cost: None,
                retry_after_ms: None,
                shard_costs: None,
            },
        };
        response.to_json().to_string()
    }

    /// [`PalmServer::handle_json_with`] over an owned byte buffer, as a
    /// network front-end reads it off a socket.  The buffer is consumed —
    /// validated in place, never copied — and the invalid-UTF-8 reject
    /// path allocates only a short fixed message, not a second copy of
    /// the (attacker-sized) payload.
    pub fn handle_json_bytes(&self, request: Vec<u8>, cancel: &CancelToken) -> String {
        match String::from_utf8(request) {
            Ok(text) => self.handle_json_with(&text, cancel),
            Err(_) => {
                let response = PalmResponse::Error {
                    kind: ERROR_KIND_MALFORMED.to_string(),
                    message: "request is not valid UTF-8".to_string(),
                    partial_cost: None,
                    retry_after_ms: None,
                    shard_costs: None,
                };
                response.to_json().to_string()
            }
        }
    }

    /// Handles an already-parsed JSON request.  This is where the
    /// protocol-level `deadline_ms` member is folded into the token.
    pub fn handle_parsed(&self, json: &Json, cancel: &CancelToken) -> PalmResponse {
        let cancel = match json.get("deadline_ms") {
            None => cancel.clone(),
            Some(value) => match value.as_f64() {
                Some(ms) if ms >= 0.0 => {
                    cancel.with_deadline(Instant::now() + Duration::from_millis(ms as u64))
                }
                _ => {
                    return PalmResponse::Error {
                        kind: ERROR_KIND_MALFORMED.to_string(),
                        message: "deadline_ms must be a non-negative number".to_string(),
                        partial_cost: None,
                        retry_after_ms: None,
                        shard_costs: None,
                    }
                }
            },
        };
        match PalmRequest::from_json(json) {
            Ok(request) => self.handle_with(request, &cancel),
            Err(e) => PalmResponse::Error {
                kind: ERROR_KIND_MALFORMED.to_string(),
                message: format!("malformed request: {e}"),
                partial_cost: None,
                retry_after_ms: None,
                shard_costs: None,
            },
        }
    }

    /// Syncs every registered index to durable storage (delta merges,
    /// buffer flushes).  Each sync runs under its slot's write lock and —
    /// being a mutation from the cache's point of view — bumps the slot
    /// version and purges the index's cache entries.  Called by the
    /// network front-end during graceful shutdown.
    pub fn sync_all(&self) -> Result<usize, String> {
        let slots: Vec<(String, Slot)> = self
            .indexes
            .read()
            .iter()
            .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
            .collect();
        let mut synced = 0;
        for (name, slot) in slots {
            let mut registered = slot.write();
            registered
                .index
                .sync()
                .map_err(|e| format!("sync of index '{name}' failed: {e}"))?;
            registered.version = self.next_version();
            if let Some(cache) = &self.cache {
                cache.purge(&name);
            }
            synced += 1;
        }
        Ok(synced)
    }

    fn slot(&self, name: &str) -> Result<Slot, ServiceError> {
        self.indexes
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| ServiceError::unknown_index(name))
    }

    fn try_handle(
        &self,
        request: PalmRequest,
        cancel: &CancelToken,
    ) -> Result<PalmResponse, ServiceError> {
        match request {
            PalmRequest::BuildIndex {
                name,
                dataset_path,
                variant,
                materialized,
                memory_budget_bytes,
                parallelism,
                query_parallelism,
                shard_count,
                range,
                io_overlap,
                io_backend,
                planner,
                compression,
            } => {
                // The build runs entirely outside the registry lock, so
                // queries against other indexes proceed while it sorts.
                // A ranged build (service-level sharding) windows the
                // dataset to `[lo, hi)`; ids stay global.
                let dataset = match range {
                    None => Dataset::open(&dataset_path)?,
                    Some((lo, hi)) => Dataset::open_range(&dataset_path, lo, hi)?,
                };
                let config = IndexConfig::new(variant, dataset.series_len())
                    .materialized(materialized)
                    .with_memory_budget(memory_budget_bytes.max(1 << 20))
                    .with_parallelism(parallelism)
                    .with_query_parallelism(query_parallelism)
                    .with_shard_count(shard_count)
                    .with_io_overlap(io_overlap)
                    .with_io_backend(io_backend)
                    .with_planner(planner)
                    .with_compression(compression);
                let stats = IoStats::shared();
                let dir = self.work_dir.join(&name);
                let (index, report) =
                    StaticIndex::build(&dataset, config, &dir, Arc::clone(&stats))?;
                let variant_name = config.display_name();
                self.indexes.write().insert(
                    name.clone(),
                    Arc::new(RwLock::new(Registered {
                        index,
                        report,
                        stats,
                        version: self.next_version(),
                    })),
                );
                // Rebuilding under an existing name is a write: the fresh
                // version tag already hides old entries, the purge just
                // frees them.
                if let Some(cache) = &self.cache {
                    cache.purge(&name);
                }
                Ok(PalmResponse::Built {
                    name,
                    variant: variant_name,
                    report,
                })
            }
            PalmRequest::Query {
                name,
                query,
                k,
                exact,
            } => {
                let slot = self.slot(&name)?;
                let registered = slot.read();
                let start = Instant::now();
                // The version is read under the slot read lock, so it is
                // exactly the version the computation below runs against:
                // any insert orders entirely before (older version, entry
                // invisible to future readers) or after this read section.
                let version = registered.version;
                let key = self
                    .cache
                    .as_ref()
                    .map(|_| CacheKey::query(&name, &query, k, exact));
                if let (Some(cache), Some(key)) = (&self.cache, &key) {
                    if let Some(hit) = cache.lookup(key, version) {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
                        // A hit ran no plan, so there is no explain.
                        return Ok(hit.into_response(&name, elapsed_ms, None));
                    }
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                }
                let ((neighbors, cost), plan) =
                    registered.index.knn_planned(&query, k, exact, cancel)?;
                self.stats.note_plan(plan.as_ref());
                let answer = CachedAnswer::from_neighbors(&neighbors, cost.into());
                if let (Some(cache), Some(key)) = (&self.cache, key) {
                    cache.insert(key, version, answer.clone());
                }
                let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
                Ok(answer.into_response(&name, elapsed_ms, plan.map(Into::into)))
            }
            PalmRequest::Batch { requests } => Ok(self.execute_batch(requests, cancel)),
            PalmRequest::Insert {
                name,
                series,
                timestamp,
                base_id,
            } => {
                let slot = self.slot(&name)?;
                // The write side: queries drain first, then the append runs
                // exclusively, so every query sees a consistent snapshot.
                let mut registered = slot.write();
                // A non-materialized index refines from the original dataset
                // file, which does not contain appended series: accepting
                // the insert would poison every later query with fetch
                // errors, so reject it up front.
                if !registered.index.is_materialized() {
                    return Err(ServiceError::config(format!(
                        "index '{name}' is non-materialized: streaming inserts require a                          materialized index (appended series do not exist in the raw                          dataset file used for refinement)"
                    )));
                }
                // The coordinator owns the global id space when sharding
                // and passes the base explicitly; a direct client gets the
                // local-sequential default.
                let base = base_id.unwrap_or_else(|| registered.index.len());
                let batch: Vec<Series> = series
                    .into_iter()
                    .enumerate()
                    .map(|(i, values)| Series::new(base + i as u64, values))
                    .collect();
                let inserted = registered.index.insert_batch(&batch, timestamp);
                // Invalidate before releasing the write lock — and even on
                // failure, which may have partially mutated the index.  A
                // reader that raced this insert cached under the *old*
                // version while holding the read side; bumping the version
                // here makes that entry (and any in-flight insert of it)
                // unservable before any post-insert reader can look up.
                registered.version = self.next_version();
                if let Some(cache) = &self.cache {
                    cache.purge(&name);
                }
                inserted?;
                Ok(PalmResponse::Inserted {
                    name,
                    inserted: batch.len() as u64,
                    total: registered.index.len(),
                })
            }
            PalmRequest::Metrics { name } => {
                let slot = self.slot(&name)?;
                let registered = slot.read();
                Ok(PalmResponse::Metrics {
                    name,
                    report: registered.report,
                    footprint_bytes: registered.index.footprint_bytes(),
                })
            }
            PalmRequest::Recommend { scenario } => Ok(PalmResponse::Recommendation {
                recommendation: recommend(&scenario),
            }),
            PalmRequest::ListIndexes => {
                let mut names: Vec<String> = self.indexes.read().keys().cloned().collect();
                names.sort();
                Ok(PalmResponse::Indexes { names })
            }
            PalmRequest::Stats => {
                let snapshot = self.stats.snapshot();
                Ok(PalmResponse::Stats {
                    requests: snapshot.requests,
                    cache_hits: snapshot.cache_hits,
                    cache_misses: snapshot.cache_misses,
                    cache_entries: self.cache.as_ref().map_or(0, |c| c.len() as u64),
                    shed: snapshot.shed,
                    deadline_exceeded: snapshot.deadline_exceeded,
                    indexes: self.indexes.read().len() as u64,
                    planner_adaptive: snapshot.planner_adaptive,
                    planner_fixed: snapshot.planner_fixed,
                    plans_parallel: snapshot.plans_parallel,
                    plans_sequential: snapshot.plans_sequential,
                    plans_read_ahead_off: snapshot.plans_read_ahead_off,
                    plans_chunked: snapshot.plans_chunked,
                })
            }
        }
    }

    /// Executes a batch: kNN queries sharing `(index, k, exact)` become one
    /// grouped job answered through [`StaticIndex::batch_knn_with`]; every
    /// other sub-request is a singleton job.  Jobs fan out over the worker
    /// pool and responses are scattered back into request order.
    /// Sub-requests are consumed, never cloned; nested batches are rejected
    /// (the service boundary must not recurse on attacker-chosen depth).
    ///
    /// Deadlines are reported per sub-request: a job that trips the token
    /// produces `deadline_exceeded` for *its* entries only, while jobs that
    /// completed (possibly on other workers) keep their answers — the batch
    /// as a whole never turns into one blanket error.
    fn execute_batch(&self, requests: Vec<PalmRequest>, cancel: &CancelToken) -> PalmResponse {
        enum Job {
            /// A singleton sub-request, taken (exactly once) by the worker
            /// that claims the job; the `Mutex` only exists because the
            /// pool hands out shared references.
            Single(usize, parking_lot::Mutex<Option<PalmRequest>>),
            Queries {
                name: String,
                k: usize,
                exact: bool,
                idxs: Vec<usize>,
                queries: Vec<Vec<f32>>,
            },
        }
        let total = requests.len();
        let mut jobs: Vec<Job> = Vec::new();
        let mut ready: Vec<(usize, PalmResponse)> = Vec::new();
        let mut groups: HashMap<(String, usize, bool), usize> = HashMap::new();
        for (i, request) in requests.into_iter().enumerate() {
            match request {
                PalmRequest::Query {
                    name,
                    query,
                    k,
                    exact,
                } => {
                    let job = *groups.entry((name.clone(), k, exact)).or_insert_with(|| {
                        jobs.push(Job::Queries {
                            name,
                            k,
                            exact,
                            idxs: Vec::new(),
                            queries: Vec::new(),
                        });
                        jobs.len() - 1
                    });
                    let Job::Queries { idxs, queries, .. } = &mut jobs[job] else {
                        unreachable!("query group indexes only point at query jobs");
                    };
                    idxs.push(i);
                    queries.push(query);
                    // Grouped queries bypass `handle_with`, so count them
                    // here: every sub-request shows up in the stats.
                    self.stats.requests.fetch_add(1, Ordering::Relaxed);
                }
                PalmRequest::Batch { .. } => ready.push((
                    i,
                    PalmResponse::Error {
                        kind: ERROR_KIND_MALFORMED.to_string(),
                        message: "batch requests cannot be nested".to_string(),
                        partial_cost: None,
                        retry_after_ms: None,
                        shard_costs: None,
                    },
                )),
                other => jobs.push(Job::Single(i, parking_lot::Mutex::new(Some(other)))),
            }
        }
        let outcomes = self.pool.run(&jobs, |_, job| match job {
            Job::Single(i, request) => {
                let request = request
                    .lock()
                    .take()
                    .expect("each singleton job is claimed exactly once");
                vec![(*i, self.handle_with(request, cancel))]
            }
            Job::Queries {
                name,
                k,
                exact,
                idxs,
                queries,
            } => match self.batch_query(name, queries, *k, *exact, cancel) {
                Ok(responses) => idxs.iter().copied().zip(responses).collect(),
                Err(e) => {
                    if e.kind == ERROR_KIND_DEADLINE {
                        self.stats
                            .deadline_exceeded
                            .fetch_add(idxs.len() as u64, Ordering::Relaxed);
                    }
                    let response = e.into_response();
                    idxs.iter().map(|&i| (i, response.clone())).collect()
                }
            },
        });
        let mut responses: Vec<Option<PalmResponse>> = vec![None; total];
        for (i, response) in outcomes.into_iter().flatten().chain(ready) {
            responses[i] = Some(response);
        }
        PalmResponse::Batch {
            responses: responses
                .into_iter()
                .map(|r| r.expect("every sub-request produced a response"))
                .collect(),
        }
    }

    /// Answers a group of same-shape kNN queries against one index through
    /// the engine's batched round pipeline.  With the result cache enabled,
    /// hits are served directly and only the misses go through the engine;
    /// this is answer-preserving because batched answers are bit-identical
    /// to one-at-a-time answers (the engine invariant), so a mix of cached
    /// and freshly-batched entries equals the all-fresh batch.
    fn batch_query(
        &self,
        name: &str,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
        cancel: &CancelToken,
    ) -> Result<Vec<PalmResponse>, ServiceError> {
        let slot = self.slot(name)?;
        let registered = slot.read();
        let start = Instant::now();
        let version = registered.version;
        let mut answers: Vec<Option<CachedAnswer>> = vec![None; queries.len()];
        let mut miss_idxs: Vec<usize> = Vec::new();
        match &self.cache {
            Some(cache) => {
                for (i, query) in queries.iter().enumerate() {
                    let key = CacheKey::query(name, query, k, exact);
                    match cache.lookup(&key, version) {
                        Some(hit) => {
                            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                            answers[i] = Some(hit);
                        }
                        None => {
                            self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                            miss_idxs.push(i);
                        }
                    }
                }
            }
            None => miss_idxs.extend(0..queries.len()),
        }
        let mut explain: Option<PlanReportJson> = None;
        if !miss_idxs.is_empty() {
            // Avoid re-cloning the payloads when nothing was cached.
            let miss_queries: Vec<Vec<f32>>;
            let engine_queries: &[Vec<f32>] = if miss_idxs.len() == queries.len() {
                queries
            } else {
                miss_queries = miss_idxs.iter().map(|&i| queries[i].clone()).collect();
                &miss_queries
            };
            let (results, plan) =
                registered
                    .index
                    .batch_knn_planned(engine_queries, k, exact, cancel)?;
            self.stats.note_plan(plan.as_ref());
            explain = plan.map(Into::into);
            for (&i, (neighbors, cost)) in miss_idxs.iter().zip(results) {
                let answer = CachedAnswer::from_neighbors(&neighbors, cost.into());
                if let Some(cache) = &self.cache {
                    cache.insert(
                        CacheKey::query(name, &queries[i], k, exact),
                        version,
                        answer.clone(),
                    );
                }
                answers[i] = Some(answer);
            }
        }
        let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
        // One plan covered every engine-computed miss; cache hits ran no
        // plan and carry no explain.
        let mut missed = vec![false; queries.len()];
        for &i in &miss_idxs {
            missed[i] = true;
        }
        Ok(answers
            .into_iter()
            .zip(missed)
            .map(|(answer, was_miss)| {
                answer
                    .expect("every query is either a cache hit or an engine result")
                    .into_response(name, elapsed_ms, if was_miss { explain } else { None })
            })
            .collect())
    }

    /// Shared I/O statistics of a registered index (for heat-map style
    /// reporting in examples).
    pub fn io_stats(&self, name: &str) -> Option<SharedIoStats> {
        self.indexes
            .read()
            .get(name)
            .map(|slot| Arc::clone(&slot.read().stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::ScratchDir;

    fn setup() -> (ScratchDir, String, Vec<coconut_series::Series>) {
        let dir = ScratchDir::new("palm").unwrap();
        let mut gen = RandomWalkGenerator::new(64, 12);
        let series = gen.generate(200);
        let path = dir.file("raw.bin");
        Dataset::create_from_series(&path, &series).unwrap();
        (dir, path.to_string_lossy().into_owned(), series)
    }

    fn build_request(name: &str, dataset_path: String, variant: VariantKind) -> PalmRequest {
        PalmRequest::BuildIndex {
            name: name.into(),
            dataset_path,
            variant,
            materialized: true,
            memory_budget_bytes: 8 << 20,
            parallelism: 1,
            query_parallelism: 1,
            shard_count: 1,
            range: None,
            io_overlap: true,
            io_backend: IoBackend::Pread,
            planner: PlannerMode::Fixed,
            compression: coconut_storage::Compression::Off,
        }
    }

    #[test]
    fn build_query_metrics_roundtrip() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        let built = server.handle(build_request("ctree", dataset_path, VariantKind::CTree));
        match &built {
            PalmResponse::Built {
                variant, report, ..
            } => {
                assert_eq!(variant, "CTreeFull");
                assert_eq!(report.entries, 200);
            }
            other => panic!("unexpected response {other:?}"),
        }
        let target = &series[17];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.001).collect();
        let result = server.handle(PalmRequest::Query {
            name: "ctree".into(),
            query,
            k: 1,
            exact: true,
        });
        match result {
            PalmResponse::QueryResult { ids, distances, .. } => {
                assert_eq!(ids, vec![17]);
                assert!(distances[0] < 1.0);
            }
            other => panic!("unexpected response {other:?}"),
        }
        match server.handle(PalmRequest::Metrics {
            name: "ctree".into(),
        }) {
            PalmResponse::Metrics {
                footprint_bytes, ..
            } => assert!(footprint_bytes > 0),
            other => panic!("unexpected response {other:?}"),
        }
        match server.handle(PalmRequest::ListIndexes) {
            PalmResponse::Indexes { names } => assert_eq!(names, vec!["ctree".to_string()]),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn json_protocol_roundtrip() {
        let (dir, dataset_path, _series) = setup();
        let server = PalmServer::new(dir.file("work"));
        let request = format!(
            r#"{{"type":"build_index","name":"a","dataset_path":{},"variant":"CTree","materialized":false,"memory_budget_bytes":1048576}}"#,
            Json::Str(dataset_path.clone()).to_string()
        );
        let response = server.handle_json(&request);
        assert!(response.contains("\"built\""), "response was {response}");
        let response = server.handle_json(r#"{"type":"list_indexes"}"#);
        assert!(response.contains("\"a\""));
        let response = server.handle_json("not json at all");
        assert!(response.contains("malformed request"));
    }

    /// Satellite: errors are structured JSON (machine-readable kind +
    /// message), with the schema pinned field by field.
    #[test]
    fn errors_are_structured_json() {
        let dir = ScratchDir::new("palm-err-json").unwrap();
        let server = PalmServer::new(dir.file("work"));

        // Unparseable request.
        let parsed = Json::parse(&server.handle_json("{{{")).unwrap();
        assert_eq!(parsed.get("type").and_then(|j| j.as_str()), Some("error"));
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_MALFORMED)
        );
        assert!(parsed.get("message").and_then(|j| j.as_str()).is_some());

        // Well-formed JSON, unknown verb.
        let parsed = Json::parse(&server.handle_json(r#"{"type":"frobnicate"}"#)).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_MALFORMED)
        );

        // Unknown index name.
        let parsed =
            Json::parse(&server.handle_json(
                r#"{"type":"query","name":"missing","query":[0.0],"k":1,"exact":true}"#,
            ))
            .unwrap();
        assert_eq!(parsed.get("type").and_then(|j| j.as_str()), Some("error"));
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_UNKNOWN_INDEX)
        );
        let message = parsed.get("message").and_then(|j| j.as_str()).unwrap();
        assert!(message.contains("missing"), "message was {message}");

        // Config errors carry their own kind (dataset missing -> series).
        let parsed = Json::parse(&server.handle_json(
            r#"{"type":"build_index","name":"x","dataset_path":"/nonexistent","variant":"CTree","materialized":false,"memory_budget_bytes":1048576}"#,
        ))
        .unwrap();
        assert_eq!(parsed.get("type").and_then(|j| j.as_str()), Some("error"));
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_SERIES)
        );
    }

    #[test]
    fn unknown_index_is_an_error_response() {
        let dir = ScratchDir::new("palm-err").unwrap();
        let server = PalmServer::new(dir.file("work"));
        let response = server.handle(PalmRequest::Query {
            name: "missing".into(),
            query: vec![0.0; 8],
            k: 1,
            exact: false,
        });
        match response {
            PalmResponse::Error { kind, .. } => assert_eq!(kind, ERROR_KIND_UNKNOWN_INDEX),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn recommend_request_returns_rationale() {
        let dir = ScratchDir::new("palm-rec").unwrap();
        let server = PalmServer::new(dir.file("work"));
        let response = server.handle(PalmRequest::Recommend {
            scenario: Scenario::streaming(1_000_000, 256),
        });
        match response {
            PalmResponse::Recommendation { recommendation } => {
                assert!(!recommendation.rationale.is_empty());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn insert_appends_and_is_queryable() {
        let (dir, dataset_path, _series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(build_request("lsm", dataset_path, VariantKind::Clsm));
        let mut gen = RandomWalkGenerator::new(64, 77);
        let fresh = gen.next_series();
        let response = server.handle(PalmRequest::Insert {
            name: "lsm".into(),
            series: vec![fresh.values.clone()],
            timestamp: 9,
            base_id: None,
        });
        match response {
            PalmResponse::Inserted {
                inserted, total, ..
            } => {
                assert_eq!(inserted, 1);
                assert_eq!(total, 201);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The appended series got id 200 and must be findable.
        let query: Vec<f32> = fresh.values.iter().map(|v| v + 0.001).collect();
        match server.handle(PalmRequest::Query {
            name: "lsm".into(),
            query,
            k: 1,
            exact: true,
        }) {
            PalmResponse::QueryResult { ids, .. } => assert_eq!(ids, vec![200]),
            other => panic!("unexpected response {other:?}"),
        }
        // Length mismatch surfaces as a config error.
        match server.handle(PalmRequest::Insert {
            name: "lsm".into(),
            series: vec![vec![0.0; 3]],
            timestamp: 10,
            base_id: None,
        }) {
            PalmResponse::Error { kind, .. } => assert_eq!(kind, ERROR_KIND_CONFIG),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn insert_into_non_materialized_index_is_rejected() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(PalmRequest::BuildIndex {
            name: "thin".into(),
            dataset_path,
            variant: VariantKind::Clsm,
            materialized: false,
            memory_budget_bytes: 8 << 20,
            parallelism: 1,
            query_parallelism: 1,
            shard_count: 1,
            range: None,
            io_overlap: true,
            io_backend: IoBackend::Pread,
            planner: PlannerMode::Fixed,
            compression: coconut_storage::Compression::Off,
        });
        // Appended series would not exist in the raw file the index refines
        // from; the insert must be refused, not accepted and left to poison
        // later queries.
        match server.handle(PalmRequest::Insert {
            name: "thin".into(),
            series: vec![vec![0.5; 64]],
            timestamp: 1,
            base_id: None,
        }) {
            PalmResponse::Error { kind, message, .. } => {
                assert_eq!(kind, ERROR_KIND_CONFIG);
                assert!(message.contains("non-materialized"), "{message}");
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The index still answers queries after the rejected insert.
        let query: Vec<f32> = series[5].values.iter().map(|v| v + 0.001).collect();
        match server.handle(PalmRequest::Query {
            name: "thin".into(),
            query,
            k: 1,
            exact: true,
        }) {
            PalmResponse::QueryResult { ids, .. } => assert_eq!(ids, vec![5]),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn nested_batches_are_rejected_per_entry() {
        let dir = ScratchDir::new("palm-nested").unwrap();
        let server = PalmServer::new(dir.file("work"));
        let response = server.handle(PalmRequest::Batch {
            requests: vec![
                PalmRequest::ListIndexes,
                PalmRequest::Batch {
                    requests: vec![PalmRequest::ListIndexes],
                },
            ],
        });
        let PalmResponse::Batch { responses } = response else {
            panic!("expected a batch response");
        };
        assert!(matches!(responses[0], PalmResponse::Indexes { .. }));
        match &responses[1] {
            PalmResponse::Error { kind, message, .. } => {
                assert_eq!(kind, ERROR_KIND_MALFORMED);
                assert!(message.contains("nested"), "{message}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    /// Tentpole: a `batch` of queries returns, per query, exactly what the
    /// one-at-a-time path returns — same ids, distances and cost — with
    /// responses in request order, heterogeneous sub-requests included.
    #[test]
    fn batch_matches_one_at_a_time_responses() {
        let (dir, dataset_path, _series) = setup();
        let server = PalmServer::new(dir.file("work")).with_batch_parallelism(4);
        server.handle(build_request("a", dataset_path.clone(), VariantKind::CTree));
        server.handle(build_request("b", dataset_path, VariantKind::Clsm));

        let mut gen = RandomWalkGenerator::new(64, 5);
        let mut requests = vec![PalmRequest::ListIndexes];
        for i in 0..6 {
            let q = gen.next_series();
            requests.push(PalmRequest::Query {
                name: if i % 2 == 0 { "a".into() } else { "b".into() },
                query: q.values.clone(),
                k: 3,
                exact: true,
            });
        }
        requests.push(PalmRequest::Query {
            name: "missing".into(),
            query: vec![0.0; 64],
            k: 1,
            exact: true,
        });

        let singles: Vec<PalmResponse> =
            requests.iter().map(|r| server.handle(r.clone())).collect();
        let batched = server.handle(PalmRequest::Batch {
            requests: requests.clone(),
        });
        let PalmResponse::Batch { responses } = batched else {
            panic!("expected a batch response");
        };
        assert_eq!(responses.len(), requests.len());
        for (single, batched) in singles.iter().zip(responses.iter()) {
            match (single, batched) {
                (
                    PalmResponse::QueryResult {
                        name: n1,
                        ids: i1,
                        distances: d1,
                        ..
                    },
                    PalmResponse::QueryResult {
                        name: n2,
                        ids: i2,
                        distances: d2,
                        ..
                    },
                ) => {
                    assert_eq!(n1, n2);
                    assert_eq!(i1, i2);
                    assert_eq!(d1, d2);
                }
                (PalmResponse::Indexes { names: a }, PalmResponse::Indexes { names: b }) => {
                    assert_eq!(a, b)
                }
                (PalmResponse::Error { kind: a, .. }, PalmResponse::Error { kind: b, .. }) => {
                    assert_eq!(a, b)
                }
                other => panic!("mismatched response shapes {other:?}"),
            }
        }
    }

    #[test]
    fn batch_json_verb_roundtrips() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(build_request("idx", dataset_path, VariantKind::CTree));
        let q: Vec<f32> = series[3].values.iter().map(|v| v + 0.001).collect();
        let request = PalmRequest::Batch {
            requests: vec![
                PalmRequest::Query {
                    name: "idx".into(),
                    query: q.clone(),
                    k: 1,
                    exact: true,
                },
                PalmRequest::Query {
                    name: "idx".into(),
                    query: q,
                    k: 1,
                    exact: false,
                },
            ],
        };
        let response = server.handle_json(&request.to_json().to_string());
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(
            parsed.get("type").and_then(|j| j.as_str()),
            Some("batch_result")
        );
        let responses = parsed.get("responses").unwrap().as_arr().unwrap();
        let first = &responses[0];
        assert_eq!(
            first.get("type").and_then(|j| j.as_str()),
            Some("query_result")
        );
    }

    /// Concurrent service smoke test: `handle` takes `&self`, so threads
    /// share one server; queries run while another thread streams inserts,
    /// and every response is a valid snapshot (never an error, always the
    /// still-present base neighbour).
    #[test]
    fn concurrent_queries_and_inserts_share_the_server() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(build_request("shared", dataset_path, VariantKind::Clsm));
        let target = &series[42];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.0005).collect();
        std::thread::scope(|scope| {
            let server = &server;
            let writer = scope.spawn(move || {
                let mut gen = RandomWalkGenerator::new(64, 901);
                for round in 0..10 {
                    let batch: Vec<Vec<f32>> = (0..20).map(|_| gen.next_series().values).collect();
                    let response = server.handle(PalmRequest::Insert {
                        name: "shared".into(),
                        series: batch,
                        timestamp: round,
                        base_id: None,
                    });
                    assert!(
                        matches!(response, PalmResponse::Inserted { .. }),
                        "insert failed: {response:?}"
                    );
                }
            });
            for _ in 0..3 {
                let query = query.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        match server.handle(PalmRequest::Query {
                            name: "shared".into(),
                            query: query.clone(),
                            k: 1,
                            exact: true,
                        }) {
                            PalmResponse::QueryResult { ids, .. } => assert_eq!(ids, vec![42]),
                            other => panic!("query failed mid-stream: {other:?}"),
                        }
                    }
                });
            }
            writer.join().unwrap();
        });
        match server.handle(PalmRequest::Metrics {
            name: "shared".into(),
        }) {
            PalmResponse::Metrics { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }

    /// Tentpole: cached answers are bit-identical to computed ones, and an
    /// insert invalidates so the next query sees the new data.
    #[test]
    fn result_cache_hits_are_bit_identical_and_invalidated_by_inserts() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work")).with_result_cache(64);
        server.handle(build_request("c", dataset_path, VariantKind::Clsm));
        let query: Vec<f32> = series[17].values.iter().map(|v| v + 0.001).collect();
        let request = PalmRequest::Query {
            name: "c".into(),
            query: query.clone(),
            k: 3,
            exact: true,
        };
        let first = server.handle(request.clone());
        let second = server.handle(request.clone());
        match (&first, &second) {
            (
                PalmResponse::QueryResult {
                    ids: i1,
                    distances: d1,
                    cost: c1,
                    ..
                },
                PalmResponse::QueryResult {
                    ids: i2,
                    distances: d2,
                    cost: c2,
                    ..
                },
            ) => {
                assert_eq!(i1, i2);
                let bits1: Vec<u64> = d1.iter().map(|d| d.to_bits()).collect();
                let bits2: Vec<u64> = d2.iter().map(|d| d.to_bits()).collect();
                assert_eq!(bits1, bits2, "cached distances must be bit-identical");
                assert_eq!(c1.entries_examined, c2.entries_examined);
                assert_eq!(c1.entries_refined, c2.entries_refined);
            }
            other => panic!("unexpected responses {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 1, "second query must hit");
        assert_eq!(stats.cache_misses, 1);

        // Insert the query itself: the cached 1-NN answer is now stale.
        server.handle(PalmRequest::Insert {
            name: "c".into(),
            series: vec![query.clone()],
            timestamp: 1,
            base_id: None,
        });
        match server.handle(request) {
            PalmResponse::QueryResult { ids, distances, .. } => {
                assert_eq!(ids[0], 200, "query must see the freshly inserted series");
                assert_eq!(distances[0], 0.0);
            }
            other => panic!("unexpected response {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 1, "post-insert query must not hit");
        assert_eq!(stats.cache_misses, 2);
    }

    /// The `stats` verb reports the counters over JSON.
    #[test]
    fn stats_verb_reports_counters() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work")).with_result_cache(8);
        server.handle(build_request("s", dataset_path, VariantKind::CTree));
        let request = PalmRequest::Query {
            name: "s".into(),
            query: series[0].values.clone(),
            k: 1,
            exact: true,
        };
        server.handle(request.clone());
        server.handle(request);
        server.note_shed();
        let parsed = Json::parse(&server.handle_json(r#"{"type":"stats"}"#)).unwrap();
        assert_eq!(parsed.get("type").and_then(|j| j.as_str()), Some("stats"));
        assert_eq!(parsed.get("cache_hits").and_then(|j| j.as_f64()), Some(1.0));
        assert_eq!(
            parsed.get("cache_misses").and_then(|j| j.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            parsed.get("cache_entries").and_then(|j| j.as_f64()),
            Some(1.0)
        );
        assert_eq!(parsed.get("shed").and_then(|j| j.as_f64()), Some(1.0));
        assert_eq!(parsed.get("indexes").and_then(|j| j.as_f64()), Some(1.0));
    }

    /// Satellite: a pre-expired deadline produces a structured
    /// `deadline_exceeded` error with a `partial_cost` member, and the
    /// server keeps serving afterwards.
    #[test]
    fn expired_deadline_is_a_structured_error_with_partial_cost() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(build_request("d", dataset_path, VariantKind::CTree));
        let query_json = PalmRequest::Query {
            name: "d".into(),
            query: series[9].values.clone(),
            k: 1,
            exact: true,
        }
        .to_json();
        // Splice a deadline_ms of 0 into the request object.
        let Json::Obj(mut members) = query_json else {
            panic!("requests serialize to objects");
        };
        members.push(("deadline_ms".into(), Json::Num(0.0)));
        let response = server.handle_json(&Json::Obj(members.clone()).to_string());
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(parsed.get("type").and_then(|j| j.as_str()), Some("error"));
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_DEADLINE)
        );
        let partial = parsed.get("partial_cost").expect("partial cost reported");
        assert!(partial.get("entries_examined").is_some());
        assert_eq!(server.stats().deadline_exceeded, 1);

        // A sane deadline still answers, identically to no deadline.
        members.pop();
        members.push(("deadline_ms".into(), Json::Num(60_000.0)));
        let response = server.handle_json(&Json::Obj(members).to_string());
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(
            parsed.get("type").and_then(|j| j.as_str()),
            Some("query_result")
        );
        assert_eq!(
            parsed
                .get("ids")
                .and_then(|j| j.as_arr())
                .and_then(|ids| ids[0].as_f64()),
            Some(9.0)
        );

        // Negative deadlines are malformed, not silently clamped.
        let response = server.handle_json(r#"{"type":"list_indexes","deadline_ms":-5}"#);
        assert!(response.contains(ERROR_KIND_MALFORMED), "{response}");
    }

    /// Satellite: per-sub-request deadline reporting inside a batch — the
    /// expired group fails alone, the rest of the batch still answers.
    #[test]
    fn batch_reports_deadlines_per_sub_request() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(build_request("b", dataset_path, VariantKind::CTree));
        let pre_cancelled = CancelToken::new();
        pre_cancelled.cancel();
        let response = server.handle_with(
            PalmRequest::Batch {
                requests: vec![
                    PalmRequest::ListIndexes,
                    PalmRequest::Query {
                        name: "b".into(),
                        query: series[0].values.clone(),
                        k: 1,
                        exact: true,
                    },
                ],
            },
            &pre_cancelled,
        );
        let PalmResponse::Batch { responses } = response else {
            panic!("expected a batch response");
        };
        // ListIndexes does not touch the engine and still answers; the
        // query group reports its own deadline error.
        assert!(matches!(responses[0], PalmResponse::Indexes { .. }));
        match &responses[1] {
            PalmResponse::Error {
                kind, partial_cost, ..
            } => {
                assert_eq!(kind, ERROR_KIND_DEADLINE);
                assert!(partial_cost.is_some());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    /// `sync_all` persists every registered index and the server keeps
    /// answering afterwards.
    #[test]
    fn sync_all_flushes_every_index() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work")).with_result_cache(8);
        server.handle(build_request("x", dataset_path.clone(), VariantKind::Clsm));
        server.handle(build_request("y", dataset_path, VariantKind::CTree));
        server.handle(PalmRequest::Insert {
            name: "x".into(),
            series: vec![series[0].values.clone()],
            timestamp: 3,
            base_id: None,
        });
        assert_eq!(server.sync_all().unwrap(), 2);
        let query: Vec<f32> = series[11].values.iter().map(|v| v + 0.001).collect();
        match server.handle(PalmRequest::Query {
            name: "x".into(),
            query,
            k: 1,
            exact: true,
        }) {
            PalmResponse::QueryResult { ids, .. } => assert_eq!(ids, vec![11]),
            other => panic!("unexpected response {other:?}"),
        }
    }

    /// Satellite: the owned-bytes entry point consumes the buffer and
    /// rejects invalid UTF-8 with a structured error.
    #[test]
    fn handle_json_bytes_rejects_invalid_utf8() {
        let dir = ScratchDir::new("palm-bytes").unwrap();
        let server = PalmServer::new(dir.file("work"));
        let never = CancelToken::never();
        let response = server.handle_json_bytes(vec![0xff, 0xfe, 0x20], &never);
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_MALFORMED)
        );
        let message = parsed.get("message").and_then(|j| j.as_str()).unwrap();
        assert!(message.contains("UTF-8"), "{message}");
        // Valid bytes route through the normal path.
        let response = server.handle_json_bytes(br#"{"type":"list_indexes"}"#.to_vec(), &never);
        assert!(response.contains("indexes"), "{response}");
    }
}
