//! The "algorithms server" request/response layer.
//!
//! The demo's GUI client talks to a back-end algorithms server over REST with
//! JSON payloads (Section 4, "Implementation").  This module reproduces that
//! protocol as a library: [`PalmServer`] holds built indexes keyed by name
//! and processes [`PalmRequest`] values, returning [`PalmResponse`] values
//! that serialize to the same kind of JSON the GUI would consume (build
//! metrics, query results, heat-map style access summaries, recommender
//! advice).  Examples and benchmarks drive it directly; an actual HTTP
//! front-end would be a thin wrapper around [`PalmServer::handle`].
//!
//! # Concurrency
//!
//! [`PalmServer::handle`] takes `&self`: the server is shared across request
//! threads, so many clients are served concurrently.  The lock hierarchy has
//! two levels (see DESIGN.md, "Palm service concurrency"):
//!
//! 1. the **registry** — an `RwLock` over the name → index map, held only
//!    long enough to look a slot up (read) or register a built index
//!    (write); index builds run entirely outside it;
//! 2. one **slot** `RwLock` per index — queries share the read side (reads
//!    of one index run concurrently with each other), streaming
//!    [`PalmRequest::Insert`]s take the write side, so every query observes
//!    a consistent snapshot of the index.
//!
//! A [`PalmRequest::Batch`] dispatches its sub-requests across a
//! [`WorkerPool`]; kNN queries sharing `(index, k, exact)` are grouped and
//! executed through the engine's batched round pipeline
//! (`coconut_ctree::engine::batch_knn`), whose per-query answers and costs
//! are bit-identical to one-at-a-time execution.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use coconut_json::{member, member_or, FromJson, Json, JsonError, ToJson};
use coconut_parallel::WorkerPool;
use parking_lot::RwLock;

use crate::{
    recommend, BuildReport, Dataset, IndexConfig, IoBackend, IoStats, Scenario, Series,
    StaticIndex, VariantKind,
};
use coconut_storage::SharedIoStats;

/// A request to the algorithms server.
#[derive(Debug, Clone)]
pub enum PalmRequest {
    /// Build an index over a dataset file.
    BuildIndex {
        /// Name under which the index is registered.
        name: String,
        /// Path of the raw dataset file.
        dataset_path: String,
        /// Structure family.
        variant: VariantKind,
        /// Whether to materialize the series inside the index.
        materialized: bool,
        /// Memory budget in bytes.
        memory_budget_bytes: usize,
        /// Worker threads for the build (`1` = sequential, `0` = all cores).
        /// Optional in the JSON protocol; defaults to `1`.
        parallelism: usize,
        /// Worker threads for the query fan-out (`1` = sequential, `0` =
        /// all cores).  Optional in the JSON protocol; defaults to `1`.
        /// A pure performance knob: query results are identical at every
        /// setting.
        query_parallelism: usize,
        /// Key-range shards per CLSM compaction.  Optional in the JSON
        /// protocol; defaults to `1` (ignored by non-CLSM variants).
        shard_count: usize,
        /// Overlap computation with I/O during the build.  Optional in the
        /// JSON protocol; defaults to `true`.  A pure performance knob:
        /// index files, answers and I/O totals are identical either way.
        io_overlap: bool,
        /// Read backend for the index files ("pread" | "mmap").  Optional
        /// in the JSON protocol; defaults to "pread".  A pure performance
        /// knob: index files, answers and I/O totals are identical either
        /// way.
        io_backend: IoBackend,
    },
    /// Run a query against a registered index.
    Query {
        /// Name of the index to query.
        name: String,
        /// The query series values.
        query: Vec<f32>,
        /// Number of neighbours.
        k: usize,
        /// Exact or approximate search.
        exact: bool,
    },
    /// Execute a batch of sub-requests concurrently on the worker pool.
    ///
    /// Responses come back in request order.  kNN queries sharing
    /// `(index, k, exact)` are grouped through the engine's batched round
    /// pipeline, so each one's answers and cost are identical to issuing it
    /// alone.
    Batch {
        /// The sub-requests; each produces one entry of
        /// [`PalmResponse::Batch`].
        requests: Vec<PalmRequest>,
    },
    /// Append new series to a registered index (streaming ingest).  Series
    /// ids are assigned sequentially after the index's current entries.
    Insert {
        /// Name of the index to append to.
        name: String,
        /// The series values, one inner vector per series.
        series: Vec<Vec<f32>>,
        /// Arrival timestamp shared by the batch.  Optional in the JSON
        /// protocol; defaults to `0`.
        timestamp: u64,
    },
    /// Fetch the build report of a registered index.
    Metrics {
        /// Name of the index.
        name: String,
    },
    /// Ask the recommender for advice.
    Recommend {
        /// The application scenario.
        scenario: Scenario,
    },
    /// List registered indexes.
    ListIndexes,
}

/// A response from the algorithms server.
#[derive(Debug, Clone)]
pub enum PalmResponse {
    /// Result of a build request.
    Built {
        /// Index name.
        name: String,
        /// Variant display name ("CTreeFull", ...).
        variant: String,
        /// Build metrics.
        report: BuildReport,
    },
    /// Result of a query request.
    QueryResult {
        /// Index name.
        name: String,
        /// Neighbour ids, ascending distance.
        ids: Vec<u64>,
        /// Neighbour distances (Euclidean, not squared).
        distances: Vec<f64>,
        /// Query latency in milliseconds.  For a query answered inside a
        /// batched group this is the wall-clock of the whole group.
        elapsed_ms: f64,
        /// Entries examined / refined / raw fetches / blocks read+skipped.
        cost: QueryCostJson,
    },
    /// Per-sub-request responses of a batch, in request order.
    Batch {
        /// One response per sub-request.
        responses: Vec<PalmResponse>,
    },
    /// Result of an insert request.
    Inserted {
        /// Index name.
        name: String,
        /// Number of series appended by this request.
        inserted: u64,
        /// Total entries in the index afterwards.
        total: u64,
    },
    /// Metrics of a registered index.
    Metrics {
        /// Index name.
        name: String,
        /// Build metrics.
        report: BuildReport,
        /// Current footprint in bytes.
        footprint_bytes: u64,
    },
    /// Recommender advice.
    Recommendation {
        /// The recommendation, including the rationale path.
        recommendation: coconut_recommender::Recommendation,
    },
    /// Names of registered indexes.
    Indexes {
        /// Registered names.
        names: Vec<String>,
    },
    /// The request failed.
    Error {
        /// Machine-readable error kind; one of the `ERROR_KIND_*`
        /// constants ("malformed_request", "unknown_index", "config",
        /// "storage", "series").
        kind: String,
        /// Human-readable error message.
        message: String,
    },
}

/// Error kind for requests that could not be parsed as JSON / protocol.
pub const ERROR_KIND_MALFORMED: &str = "malformed_request";
/// Error kind for requests naming an unregistered index.
pub const ERROR_KIND_UNKNOWN_INDEX: &str = "unknown_index";
/// Error kind for configuration errors (mismatched lengths, bad knobs).
pub const ERROR_KIND_CONFIG: &str = "config";
/// Error kind for storage-layer failures.
pub const ERROR_KIND_STORAGE: &str = "storage";
/// Error kind for raw-dataset failures.
pub const ERROR_KIND_SERIES: &str = "series";

/// Internal error carrying the machine-readable kind alongside the message.
struct ServiceError {
    kind: &'static str,
    message: String,
}

impl ServiceError {
    fn unknown_index(name: &str) -> Self {
        ServiceError {
            kind: ERROR_KIND_UNKNOWN_INDEX,
            message: format!("no index registered under '{name}'"),
        }
    }

    fn into_response(self) -> PalmResponse {
        PalmResponse::Error {
            kind: self.kind.to_string(),
            message: self.message,
        }
    }
}

impl From<crate::IndexError> for ServiceError {
    fn from(e: crate::IndexError) -> Self {
        let kind = match &e {
            crate::IndexError::Config(_) => ERROR_KIND_CONFIG,
            crate::IndexError::Storage(_) => ERROR_KIND_STORAGE,
            crate::IndexError::Series(_) => ERROR_KIND_SERIES,
        };
        ServiceError {
            kind,
            message: e.to_string(),
        }
    }
}

impl From<coconut_series::SeriesError> for ServiceError {
    fn from(e: coconut_series::SeriesError) -> Self {
        ServiceError {
            kind: ERROR_KIND_SERIES,
            message: e.to_string(),
        }
    }
}

/// JSON-friendly projection of [`coconut_ctree::query::QueryCost`].
#[derive(Debug, Clone, Copy)]
pub struct QueryCostJson {
    /// Entries whose summarization was examined.
    pub entries_examined: u64,
    /// Entries refined with a true distance computation.
    pub entries_refined: u64,
    /// Raw series fetched from the data file.
    pub raw_fetches: u64,
    /// Blocks/partitions read.
    pub blocks_read: u64,
    /// Blocks/partitions skipped by pruning.
    pub blocks_skipped: u64,
}

impl From<coconut_ctree::query::QueryCost> for QueryCostJson {
    fn from(c: coconut_ctree::query::QueryCost) -> Self {
        QueryCostJson {
            entries_examined: c.entries_examined,
            entries_refined: c.entries_refined,
            raw_fetches: c.raw_fetches,
            blocks_read: c.blocks_read,
            blocks_skipped: c.blocks_skipped,
        }
    }
}

impl ToJson for QueryCostJson {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("entries_examined", self.entries_examined.to_json()),
            ("entries_refined", self.entries_refined.to_json()),
            ("raw_fetches", self.raw_fetches.to_json()),
            ("blocks_read", self.blocks_read.to_json()),
            ("blocks_skipped", self.blocks_skipped.to_json()),
        ])
    }
}

impl FromJson for QueryCostJson {
    fn from_json(json: &Json) -> coconut_json::Result<QueryCostJson> {
        Ok(QueryCostJson {
            entries_examined: member(json, "entries_examined")?,
            entries_refined: member(json, "entries_refined")?,
            raw_fetches: member(json, "raw_fetches")?,
            blocks_read: member(json, "blocks_read")?,
            blocks_skipped: member(json, "blocks_skipped")?,
        })
    }
}

impl ToJson for PalmRequest {
    fn to_json(&self) -> Json {
        match self {
            PalmRequest::BuildIndex {
                name,
                dataset_path,
                variant,
                materialized,
                memory_budget_bytes,
                parallelism,
                query_parallelism,
                shard_count,
                io_overlap,
                io_backend,
            } => Json::obj(vec![
                ("type", Json::Str("build_index".into())),
                ("name", name.to_json()),
                ("dataset_path", dataset_path.to_json()),
                ("variant", variant.to_json()),
                ("materialized", materialized.to_json()),
                ("memory_budget_bytes", memory_budget_bytes.to_json()),
                ("parallelism", parallelism.to_json()),
                ("query_parallelism", query_parallelism.to_json()),
                ("shard_count", shard_count.to_json()),
                ("io_overlap", io_overlap.to_json()),
                ("io_backend", io_backend.to_json()),
            ]),
            PalmRequest::Query {
                name,
                query,
                k,
                exact,
            } => Json::obj(vec![
                ("type", Json::Str("query".into())),
                ("name", name.to_json()),
                ("query", query.to_json()),
                ("k", k.to_json()),
                ("exact", exact.to_json()),
            ]),
            PalmRequest::Batch { requests } => Json::obj(vec![
                ("type", Json::Str("batch".into())),
                ("requests", requests.to_json()),
            ]),
            PalmRequest::Insert {
                name,
                series,
                timestamp,
            } => Json::obj(vec![
                ("type", Json::Str("insert".into())),
                ("name", name.to_json()),
                ("series", series.to_json()),
                ("timestamp", timestamp.to_json()),
            ]),
            PalmRequest::Metrics { name } => Json::obj(vec![
                ("type", Json::Str("metrics".into())),
                ("name", name.to_json()),
            ]),
            PalmRequest::Recommend { scenario } => Json::obj(vec![
                ("type", Json::Str("recommend".into())),
                ("scenario", scenario.to_json()),
            ]),
            PalmRequest::ListIndexes => Json::obj(vec![("type", Json::Str("list_indexes".into()))]),
        }
    }
}

impl FromJson for PalmRequest {
    fn from_json(json: &Json) -> coconut_json::Result<PalmRequest> {
        let kind: String = member(json, "type")?;
        match kind.as_str() {
            "build_index" => Ok(PalmRequest::BuildIndex {
                name: member(json, "name")?,
                dataset_path: member(json, "dataset_path")?,
                variant: member(json, "variant")?,
                materialized: member(json, "materialized")?,
                memory_budget_bytes: member(json, "memory_budget_bytes")?,
                parallelism: member_or(json, "parallelism", 1)?,
                query_parallelism: member_or(json, "query_parallelism", 1)?,
                shard_count: member_or(json, "shard_count", 1)?,
                io_overlap: member_or(json, "io_overlap", true)?,
                io_backend: member_or(json, "io_backend", IoBackend::Pread)?,
            }),
            "query" => Ok(PalmRequest::Query {
                name: member(json, "name")?,
                query: member(json, "query")?,
                k: member(json, "k")?,
                exact: member(json, "exact")?,
            }),
            "batch" => Ok(PalmRequest::Batch {
                requests: member(json, "requests")?,
            }),
            "insert" => Ok(PalmRequest::Insert {
                name: member(json, "name")?,
                series: member(json, "series")?,
                timestamp: member_or(json, "timestamp", 0u64)?,
            }),
            "metrics" => Ok(PalmRequest::Metrics {
                name: member(json, "name")?,
            }),
            "recommend" => Ok(PalmRequest::Recommend {
                scenario: member(json, "scenario")?,
            }),
            "list_indexes" => Ok(PalmRequest::ListIndexes),
            other => Err(JsonError::new(format!("unknown request type '{other}'"))),
        }
    }
}

impl ToJson for PalmResponse {
    fn to_json(&self) -> Json {
        match self {
            PalmResponse::Built {
                name,
                variant,
                report,
            } => Json::obj(vec![
                ("type", Json::Str("built".into())),
                ("name", name.to_json()),
                ("variant", variant.to_json()),
                ("report", report.to_json()),
            ]),
            PalmResponse::QueryResult {
                name,
                ids,
                distances,
                elapsed_ms,
                cost,
            } => Json::obj(vec![
                ("type", Json::Str("query_result".into())),
                ("name", name.to_json()),
                ("ids", ids.to_json()),
                ("distances", distances.to_json()),
                ("elapsed_ms", elapsed_ms.to_json()),
                ("cost", cost.to_json()),
            ]),
            PalmResponse::Batch { responses } => Json::obj(vec![
                ("type", Json::Str("batch_result".into())),
                ("responses", responses.to_json()),
            ]),
            PalmResponse::Inserted {
                name,
                inserted,
                total,
            } => Json::obj(vec![
                ("type", Json::Str("inserted".into())),
                ("name", name.to_json()),
                ("inserted", inserted.to_json()),
                ("total", total.to_json()),
            ]),
            PalmResponse::Metrics {
                name,
                report,
                footprint_bytes,
            } => Json::obj(vec![
                ("type", Json::Str("metrics".into())),
                ("name", name.to_json()),
                ("report", report.to_json()),
                ("footprint_bytes", footprint_bytes.to_json()),
            ]),
            PalmResponse::Recommendation { recommendation } => Json::obj(vec![
                ("type", Json::Str("recommendation".into())),
                ("recommendation", recommendation.to_json()),
            ]),
            PalmResponse::Indexes { names } => Json::obj(vec![
                ("type", Json::Str("indexes".into())),
                ("names", names.to_json()),
            ]),
            PalmResponse::Error { kind, message } => Json::obj(vec![
                ("type", Json::Str("error".into())),
                ("kind", kind.to_json()),
                ("message", message.to_json()),
            ]),
        }
    }
}

struct Registered {
    index: StaticIndex,
    report: BuildReport,
    stats: SharedIoStats,
}

/// One registered index behind its own reader-writer lock: queries share
/// the read side, streaming inserts take the write side.
type Slot = Arc<RwLock<Registered>>;

/// The in-process algorithms server.
///
/// `handle` takes `&self`, so one server is shared across request threads;
/// see the module docs for the lock hierarchy.
pub struct PalmServer {
    work_dir: PathBuf,
    indexes: RwLock<HashMap<String, Slot>>,
    pool: WorkerPool,
}

impl PalmServer {
    /// Creates a server that stores index files under `work_dir`.  Batch
    /// sub-requests fan out over one worker per available core; see
    /// [`PalmServer::with_batch_parallelism`].
    pub fn new<P: Into<PathBuf>>(work_dir: P) -> Self {
        PalmServer {
            work_dir: work_dir.into(),
            indexes: RwLock::new(HashMap::new()),
            pool: WorkerPool::new(0),
        }
    }

    /// Sets the worker count batch sub-requests are dispatched over
    /// (`1` = sequential, `0` = one per available core).  A pure
    /// performance knob: batch responses are identical at every setting.
    pub fn with_batch_parallelism(mut self, workers: usize) -> Self {
        self.pool = WorkerPool::new(workers);
        self
    }

    /// Handles one request, never panicking: failures become
    /// [`PalmResponse::Error`] carrying a machine-readable `kind`.
    pub fn handle(&self, request: PalmRequest) -> PalmResponse {
        match self.try_handle(request) {
            Ok(response) => response,
            Err(e) => e.into_response(),
        }
    }

    /// Handles a request given as a JSON string, returning a JSON response
    /// (the exact shape the GUI client would exchange over REST).
    pub fn handle_json(&self, request_json: &str) -> String {
        let parsed = Json::parse(request_json).and_then(|json| PalmRequest::from_json(&json));
        let response = match parsed {
            Ok(req) => self.handle(req),
            Err(e) => PalmResponse::Error {
                kind: ERROR_KIND_MALFORMED.to_string(),
                message: format!("malformed request: {e}"),
            },
        };
        response.to_json().to_string()
    }

    fn slot(&self, name: &str) -> Result<Slot, ServiceError> {
        self.indexes
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| ServiceError::unknown_index(name))
    }

    fn try_handle(&self, request: PalmRequest) -> Result<PalmResponse, ServiceError> {
        match request {
            PalmRequest::BuildIndex {
                name,
                dataset_path,
                variant,
                materialized,
                memory_budget_bytes,
                parallelism,
                query_parallelism,
                shard_count,
                io_overlap,
                io_backend,
            } => {
                // The build runs entirely outside the registry lock, so
                // queries against other indexes proceed while it sorts.
                let dataset = Dataset::open(&dataset_path)?;
                let config = IndexConfig::new(variant, dataset.series_len())
                    .materialized(materialized)
                    .with_memory_budget(memory_budget_bytes.max(1 << 20))
                    .with_parallelism(parallelism)
                    .with_query_parallelism(query_parallelism)
                    .with_shard_count(shard_count)
                    .with_io_overlap(io_overlap)
                    .with_io_backend(io_backend);
                let stats = IoStats::shared();
                let dir = self.work_dir.join(&name);
                let (index, report) =
                    StaticIndex::build(&dataset, config, &dir, Arc::clone(&stats))?;
                let variant_name = config.display_name();
                self.indexes.write().insert(
                    name.clone(),
                    Arc::new(RwLock::new(Registered {
                        index,
                        report,
                        stats,
                    })),
                );
                Ok(PalmResponse::Built {
                    name,
                    variant: variant_name,
                    report,
                })
            }
            PalmRequest::Query {
                name,
                query,
                k,
                exact,
            } => {
                let slot = self.slot(&name)?;
                let registered = slot.read();
                let start = Instant::now();
                let (neighbors, cost) = if exact {
                    registered.index.exact_knn(&query, k)?
                } else {
                    registered.index.approximate_knn(&query, k)?
                };
                Ok(PalmResponse::QueryResult {
                    name,
                    ids: neighbors.iter().map(|n| n.id).collect(),
                    distances: neighbors.iter().map(|n| n.distance()).collect(),
                    elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
                    cost: cost.into(),
                })
            }
            PalmRequest::Batch { requests } => Ok(self.execute_batch(requests)),
            PalmRequest::Insert {
                name,
                series,
                timestamp,
            } => {
                let slot = self.slot(&name)?;
                // The write side: queries drain first, then the append runs
                // exclusively, so every query sees a consistent snapshot.
                let mut registered = slot.write();
                // A non-materialized index refines from the original dataset
                // file, which does not contain appended series: accepting
                // the insert would poison every later query with fetch
                // errors, so reject it up front.
                if !registered.index.is_materialized() {
                    return Err(ServiceError {
                        kind: ERROR_KIND_CONFIG,
                        message: format!(
                            "index '{name}' is non-materialized: streaming inserts require a                              materialized index (appended series do not exist in the raw                              dataset file used for refinement)"
                        ),
                    });
                }
                let base = registered.index.len();
                let batch: Vec<Series> = series
                    .into_iter()
                    .enumerate()
                    .map(|(i, values)| Series::new(base + i as u64, values))
                    .collect();
                registered.index.insert_batch(&batch, timestamp)?;
                Ok(PalmResponse::Inserted {
                    name,
                    inserted: batch.len() as u64,
                    total: registered.index.len(),
                })
            }
            PalmRequest::Metrics { name } => {
                let slot = self.slot(&name)?;
                let registered = slot.read();
                Ok(PalmResponse::Metrics {
                    name,
                    report: registered.report,
                    footprint_bytes: registered.index.footprint_bytes(),
                })
            }
            PalmRequest::Recommend { scenario } => Ok(PalmResponse::Recommendation {
                recommendation: recommend(&scenario),
            }),
            PalmRequest::ListIndexes => {
                let mut names: Vec<String> = self.indexes.read().keys().cloned().collect();
                names.sort();
                Ok(PalmResponse::Indexes { names })
            }
        }
    }

    /// Executes a batch: kNN queries sharing `(index, k, exact)` become one
    /// grouped job answered through [`StaticIndex::batch_knn`]; every other
    /// sub-request is a singleton job.  Jobs fan out over the worker pool
    /// and responses are scattered back into request order.  Sub-requests
    /// are consumed, never cloned; nested batches are rejected (the service
    /// boundary must not recurse on attacker-chosen depth).
    fn execute_batch(&self, requests: Vec<PalmRequest>) -> PalmResponse {
        enum Job {
            /// A singleton sub-request, taken (exactly once) by the worker
            /// that claims the job; the `Mutex` only exists because the
            /// pool hands out shared references.
            Single(usize, parking_lot::Mutex<Option<PalmRequest>>),
            Queries {
                name: String,
                k: usize,
                exact: bool,
                idxs: Vec<usize>,
                queries: Vec<Vec<f32>>,
            },
        }
        let total = requests.len();
        let mut jobs: Vec<Job> = Vec::new();
        let mut ready: Vec<(usize, PalmResponse)> = Vec::new();
        let mut groups: HashMap<(String, usize, bool), usize> = HashMap::new();
        for (i, request) in requests.into_iter().enumerate() {
            match request {
                PalmRequest::Query {
                    name,
                    query,
                    k,
                    exact,
                } => {
                    let job = *groups.entry((name.clone(), k, exact)).or_insert_with(|| {
                        jobs.push(Job::Queries {
                            name,
                            k,
                            exact,
                            idxs: Vec::new(),
                            queries: Vec::new(),
                        });
                        jobs.len() - 1
                    });
                    let Job::Queries { idxs, queries, .. } = &mut jobs[job] else {
                        unreachable!("query group indexes only point at query jobs");
                    };
                    idxs.push(i);
                    queries.push(query);
                }
                PalmRequest::Batch { .. } => ready.push((
                    i,
                    PalmResponse::Error {
                        kind: ERROR_KIND_MALFORMED.to_string(),
                        message: "batch requests cannot be nested".to_string(),
                    },
                )),
                other => jobs.push(Job::Single(i, parking_lot::Mutex::new(Some(other)))),
            }
        }
        let outcomes = self.pool.run(&jobs, |_, job| match job {
            Job::Single(i, request) => {
                let request = request
                    .lock()
                    .take()
                    .expect("each singleton job is claimed exactly once");
                vec![(*i, self.handle(request))]
            }
            Job::Queries {
                name,
                k,
                exact,
                idxs,
                queries,
            } => match self.batch_query(name, queries, *k, *exact) {
                Ok(responses) => idxs.iter().copied().zip(responses).collect(),
                Err(e) => {
                    let response = e.into_response();
                    idxs.iter().map(|&i| (i, response.clone())).collect()
                }
            },
        });
        let mut responses: Vec<Option<PalmResponse>> = vec![None; total];
        for (i, response) in outcomes.into_iter().flatten().chain(ready) {
            responses[i] = Some(response);
        }
        PalmResponse::Batch {
            responses: responses
                .into_iter()
                .map(|r| r.expect("every sub-request produced a response"))
                .collect(),
        }
    }

    /// Answers a group of same-shape kNN queries against one index through
    /// the engine's batched round pipeline.
    fn batch_query(
        &self,
        name: &str,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
    ) -> Result<Vec<PalmResponse>, ServiceError> {
        let slot = self.slot(name)?;
        let registered = slot.read();
        let start = Instant::now();
        let results = registered.index.batch_knn(queries, k, exact)?;
        let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
        Ok(results
            .into_iter()
            .map(|(neighbors, cost)| PalmResponse::QueryResult {
                name: name.to_string(),
                ids: neighbors.iter().map(|n| n.id).collect(),
                distances: neighbors.iter().map(|n| n.distance()).collect(),
                elapsed_ms,
                cost: cost.into(),
            })
            .collect())
    }

    /// Shared I/O statistics of a registered index (for heat-map style
    /// reporting in examples).
    pub fn io_stats(&self, name: &str) -> Option<SharedIoStats> {
        self.indexes
            .read()
            .get(name)
            .map(|slot| Arc::clone(&slot.read().stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::ScratchDir;

    fn setup() -> (ScratchDir, String, Vec<coconut_series::Series>) {
        let dir = ScratchDir::new("palm").unwrap();
        let mut gen = RandomWalkGenerator::new(64, 12);
        let series = gen.generate(200);
        let path = dir.file("raw.bin");
        Dataset::create_from_series(&path, &series).unwrap();
        (dir, path.to_string_lossy().into_owned(), series)
    }

    fn build_request(name: &str, dataset_path: String, variant: VariantKind) -> PalmRequest {
        PalmRequest::BuildIndex {
            name: name.into(),
            dataset_path,
            variant,
            materialized: true,
            memory_budget_bytes: 8 << 20,
            parallelism: 1,
            query_parallelism: 1,
            shard_count: 1,
            io_overlap: true,
            io_backend: IoBackend::Pread,
        }
    }

    #[test]
    fn build_query_metrics_roundtrip() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        let built = server.handle(build_request("ctree", dataset_path, VariantKind::CTree));
        match &built {
            PalmResponse::Built {
                variant, report, ..
            } => {
                assert_eq!(variant, "CTreeFull");
                assert_eq!(report.entries, 200);
            }
            other => panic!("unexpected response {other:?}"),
        }
        let target = &series[17];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.001).collect();
        let result = server.handle(PalmRequest::Query {
            name: "ctree".into(),
            query,
            k: 1,
            exact: true,
        });
        match result {
            PalmResponse::QueryResult { ids, distances, .. } => {
                assert_eq!(ids, vec![17]);
                assert!(distances[0] < 1.0);
            }
            other => panic!("unexpected response {other:?}"),
        }
        match server.handle(PalmRequest::Metrics {
            name: "ctree".into(),
        }) {
            PalmResponse::Metrics {
                footprint_bytes, ..
            } => assert!(footprint_bytes > 0),
            other => panic!("unexpected response {other:?}"),
        }
        match server.handle(PalmRequest::ListIndexes) {
            PalmResponse::Indexes { names } => assert_eq!(names, vec!["ctree".to_string()]),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn json_protocol_roundtrip() {
        let (dir, dataset_path, _series) = setup();
        let server = PalmServer::new(dir.file("work"));
        let request = format!(
            r#"{{"type":"build_index","name":"a","dataset_path":{},"variant":"CTree","materialized":false,"memory_budget_bytes":1048576}}"#,
            Json::Str(dataset_path.clone()).to_string()
        );
        let response = server.handle_json(&request);
        assert!(response.contains("\"built\""), "response was {response}");
        let response = server.handle_json(r#"{"type":"list_indexes"}"#);
        assert!(response.contains("\"a\""));
        let response = server.handle_json("not json at all");
        assert!(response.contains("malformed request"));
    }

    /// Satellite: errors are structured JSON (machine-readable kind +
    /// message), with the schema pinned field by field.
    #[test]
    fn errors_are_structured_json() {
        let dir = ScratchDir::new("palm-err-json").unwrap();
        let server = PalmServer::new(dir.file("work"));

        // Unparseable request.
        let parsed = Json::parse(&server.handle_json("{{{")).unwrap();
        assert_eq!(parsed.get("type").and_then(|j| j.as_str()), Some("error"));
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_MALFORMED)
        );
        assert!(parsed.get("message").and_then(|j| j.as_str()).is_some());

        // Well-formed JSON, unknown verb.
        let parsed = Json::parse(&server.handle_json(r#"{"type":"frobnicate"}"#)).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_MALFORMED)
        );

        // Unknown index name.
        let parsed =
            Json::parse(&server.handle_json(
                r#"{"type":"query","name":"missing","query":[0.0],"k":1,"exact":true}"#,
            ))
            .unwrap();
        assert_eq!(parsed.get("type").and_then(|j| j.as_str()), Some("error"));
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_UNKNOWN_INDEX)
        );
        let message = parsed.get("message").and_then(|j| j.as_str()).unwrap();
        assert!(message.contains("missing"), "message was {message}");

        // Config errors carry their own kind (dataset missing -> series).
        let parsed = Json::parse(&server.handle_json(
            r#"{"type":"build_index","name":"x","dataset_path":"/nonexistent","variant":"CTree","materialized":false,"memory_budget_bytes":1048576}"#,
        ))
        .unwrap();
        assert_eq!(parsed.get("type").and_then(|j| j.as_str()), Some("error"));
        assert_eq!(
            parsed.get("kind").and_then(|j| j.as_str()),
            Some(ERROR_KIND_SERIES)
        );
    }

    #[test]
    fn unknown_index_is_an_error_response() {
        let dir = ScratchDir::new("palm-err").unwrap();
        let server = PalmServer::new(dir.file("work"));
        let response = server.handle(PalmRequest::Query {
            name: "missing".into(),
            query: vec![0.0; 8],
            k: 1,
            exact: false,
        });
        match response {
            PalmResponse::Error { kind, .. } => assert_eq!(kind, ERROR_KIND_UNKNOWN_INDEX),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn recommend_request_returns_rationale() {
        let dir = ScratchDir::new("palm-rec").unwrap();
        let server = PalmServer::new(dir.file("work"));
        let response = server.handle(PalmRequest::Recommend {
            scenario: Scenario::streaming(1_000_000, 256),
        });
        match response {
            PalmResponse::Recommendation { recommendation } => {
                assert!(!recommendation.rationale.is_empty());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn insert_appends_and_is_queryable() {
        let (dir, dataset_path, _series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(build_request("lsm", dataset_path, VariantKind::Clsm));
        let mut gen = RandomWalkGenerator::new(64, 77);
        let fresh = gen.next_series();
        let response = server.handle(PalmRequest::Insert {
            name: "lsm".into(),
            series: vec![fresh.values.clone()],
            timestamp: 9,
        });
        match response {
            PalmResponse::Inserted {
                inserted, total, ..
            } => {
                assert_eq!(inserted, 1);
                assert_eq!(total, 201);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The appended series got id 200 and must be findable.
        let query: Vec<f32> = fresh.values.iter().map(|v| v + 0.001).collect();
        match server.handle(PalmRequest::Query {
            name: "lsm".into(),
            query,
            k: 1,
            exact: true,
        }) {
            PalmResponse::QueryResult { ids, .. } => assert_eq!(ids, vec![200]),
            other => panic!("unexpected response {other:?}"),
        }
        // Length mismatch surfaces as a config error.
        match server.handle(PalmRequest::Insert {
            name: "lsm".into(),
            series: vec![vec![0.0; 3]],
            timestamp: 10,
        }) {
            PalmResponse::Error { kind, .. } => assert_eq!(kind, ERROR_KIND_CONFIG),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn insert_into_non_materialized_index_is_rejected() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(PalmRequest::BuildIndex {
            name: "thin".into(),
            dataset_path,
            variant: VariantKind::Clsm,
            materialized: false,
            memory_budget_bytes: 8 << 20,
            parallelism: 1,
            query_parallelism: 1,
            shard_count: 1,
            io_overlap: true,
            io_backend: IoBackend::Pread,
        });
        // Appended series would not exist in the raw file the index refines
        // from; the insert must be refused, not accepted and left to poison
        // later queries.
        match server.handle(PalmRequest::Insert {
            name: "thin".into(),
            series: vec![vec![0.5; 64]],
            timestamp: 1,
        }) {
            PalmResponse::Error { kind, message } => {
                assert_eq!(kind, ERROR_KIND_CONFIG);
                assert!(message.contains("non-materialized"), "{message}");
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The index still answers queries after the rejected insert.
        let query: Vec<f32> = series[5].values.iter().map(|v| v + 0.001).collect();
        match server.handle(PalmRequest::Query {
            name: "thin".into(),
            query,
            k: 1,
            exact: true,
        }) {
            PalmResponse::QueryResult { ids, .. } => assert_eq!(ids, vec![5]),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn nested_batches_are_rejected_per_entry() {
        let dir = ScratchDir::new("palm-nested").unwrap();
        let server = PalmServer::new(dir.file("work"));
        let response = server.handle(PalmRequest::Batch {
            requests: vec![
                PalmRequest::ListIndexes,
                PalmRequest::Batch {
                    requests: vec![PalmRequest::ListIndexes],
                },
            ],
        });
        let PalmResponse::Batch { responses } = response else {
            panic!("expected a batch response");
        };
        assert!(matches!(responses[0], PalmResponse::Indexes { .. }));
        match &responses[1] {
            PalmResponse::Error { kind, message } => {
                assert_eq!(kind, ERROR_KIND_MALFORMED);
                assert!(message.contains("nested"), "{message}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    /// Tentpole: a `batch` of queries returns, per query, exactly what the
    /// one-at-a-time path returns — same ids, distances and cost — with
    /// responses in request order, heterogeneous sub-requests included.
    #[test]
    fn batch_matches_one_at_a_time_responses() {
        let (dir, dataset_path, _series) = setup();
        let server = PalmServer::new(dir.file("work")).with_batch_parallelism(4);
        server.handle(build_request("a", dataset_path.clone(), VariantKind::CTree));
        server.handle(build_request("b", dataset_path, VariantKind::Clsm));

        let mut gen = RandomWalkGenerator::new(64, 5);
        let mut requests = vec![PalmRequest::ListIndexes];
        for i in 0..6 {
            let q = gen.next_series();
            requests.push(PalmRequest::Query {
                name: if i % 2 == 0 { "a".into() } else { "b".into() },
                query: q.values.clone(),
                k: 3,
                exact: true,
            });
        }
        requests.push(PalmRequest::Query {
            name: "missing".into(),
            query: vec![0.0; 64],
            k: 1,
            exact: true,
        });

        let singles: Vec<PalmResponse> =
            requests.iter().map(|r| server.handle(r.clone())).collect();
        let batched = server.handle(PalmRequest::Batch {
            requests: requests.clone(),
        });
        let PalmResponse::Batch { responses } = batched else {
            panic!("expected a batch response");
        };
        assert_eq!(responses.len(), requests.len());
        for (single, batched) in singles.iter().zip(responses.iter()) {
            match (single, batched) {
                (
                    PalmResponse::QueryResult {
                        name: n1,
                        ids: i1,
                        distances: d1,
                        ..
                    },
                    PalmResponse::QueryResult {
                        name: n2,
                        ids: i2,
                        distances: d2,
                        ..
                    },
                ) => {
                    assert_eq!(n1, n2);
                    assert_eq!(i1, i2);
                    assert_eq!(d1, d2);
                }
                (PalmResponse::Indexes { names: a }, PalmResponse::Indexes { names: b }) => {
                    assert_eq!(a, b)
                }
                (PalmResponse::Error { kind: a, .. }, PalmResponse::Error { kind: b, .. }) => {
                    assert_eq!(a, b)
                }
                other => panic!("mismatched response shapes {other:?}"),
            }
        }
    }

    #[test]
    fn batch_json_verb_roundtrips() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(build_request("idx", dataset_path, VariantKind::CTree));
        let q: Vec<f32> = series[3].values.iter().map(|v| v + 0.001).collect();
        let request = PalmRequest::Batch {
            requests: vec![
                PalmRequest::Query {
                    name: "idx".into(),
                    query: q.clone(),
                    k: 1,
                    exact: true,
                },
                PalmRequest::Query {
                    name: "idx".into(),
                    query: q,
                    k: 1,
                    exact: false,
                },
            ],
        };
        let response = server.handle_json(&request.to_json().to_string());
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(
            parsed.get("type").and_then(|j| j.as_str()),
            Some("batch_result")
        );
        let responses = parsed.get("responses").unwrap().as_arr().unwrap();
        let first = &responses[0];
        assert_eq!(
            first.get("type").and_then(|j| j.as_str()),
            Some("query_result")
        );
    }

    /// Concurrent service smoke test: `handle` takes `&self`, so threads
    /// share one server; queries run while another thread streams inserts,
    /// and every response is a valid snapshot (never an error, always the
    /// still-present base neighbour).
    #[test]
    fn concurrent_queries_and_inserts_share_the_server() {
        let (dir, dataset_path, series) = setup();
        let server = PalmServer::new(dir.file("work"));
        server.handle(build_request("shared", dataset_path, VariantKind::Clsm));
        let target = &series[42];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.0005).collect();
        std::thread::scope(|scope| {
            let server = &server;
            let writer = scope.spawn(move || {
                let mut gen = RandomWalkGenerator::new(64, 901);
                for round in 0..10 {
                    let batch: Vec<Vec<f32>> = (0..20).map(|_| gen.next_series().values).collect();
                    let response = server.handle(PalmRequest::Insert {
                        name: "shared".into(),
                        series: batch,
                        timestamp: round,
                    });
                    assert!(
                        matches!(response, PalmResponse::Inserted { .. }),
                        "insert failed: {response:?}"
                    );
                }
            });
            for _ in 0..3 {
                let query = query.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        match server.handle(PalmRequest::Query {
                            name: "shared".into(),
                            query: query.clone(),
                            k: 1,
                            exact: true,
                        }) {
                            PalmResponse::QueryResult { ids, .. } => assert_eq!(ids, vec![42]),
                            other => panic!("query failed mid-stream: {other:?}"),
                        }
                    }
                });
            }
            writer.join().unwrap();
        });
        match server.handle(PalmRequest::Metrics {
            name: "shared".into(),
        }) {
            PalmResponse::Metrics { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
}
