//! The "algorithms server" request/response layer.
//!
//! The demo's GUI client talks to a back-end algorithms server over REST with
//! JSON payloads (Section 4, "Implementation").  This module reproduces that
//! protocol as a library: [`PalmServer`] holds built indexes keyed by name
//! and processes [`PalmRequest`] values, returning [`PalmResponse`] values
//! that serialize to the same kind of JSON the GUI would consume (build
//! metrics, query results, heat-map style access summaries, recommender
//! advice).  Examples and benchmarks drive it directly; an actual HTTP
//! front-end would be a thin wrapper around [`PalmServer::handle`].

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use coconut_json::{member, member_or, FromJson, Json, JsonError, ToJson};

use crate::{
    recommend, BuildReport, Dataset, IndexConfig, IoBackend, IoStats, Scenario, StaticIndex,
    VariantKind,
};
use coconut_storage::SharedIoStats;

/// A request to the algorithms server.
#[derive(Debug, Clone)]
pub enum PalmRequest {
    /// Build an index over a dataset file.
    BuildIndex {
        /// Name under which the index is registered.
        name: String,
        /// Path of the raw dataset file.
        dataset_path: String,
        /// Structure family.
        variant: VariantKind,
        /// Whether to materialize the series inside the index.
        materialized: bool,
        /// Memory budget in bytes.
        memory_budget_bytes: usize,
        /// Worker threads for the build (`1` = sequential, `0` = all cores).
        /// Optional in the JSON protocol; defaults to `1`.
        parallelism: usize,
        /// Worker threads for the query fan-out (`1` = sequential, `0` =
        /// all cores).  Optional in the JSON protocol; defaults to `1`.
        /// A pure performance knob: query results are identical at every
        /// setting.
        query_parallelism: usize,
        /// Key-range shards per CLSM compaction.  Optional in the JSON
        /// protocol; defaults to `1` (ignored by non-CLSM variants).
        shard_count: usize,
        /// Overlap computation with I/O during the build.  Optional in the
        /// JSON protocol; defaults to `true`.  A pure performance knob:
        /// index files, answers and I/O totals are identical either way.
        io_overlap: bool,
        /// Read backend for the index files ("pread" | "mmap").  Optional
        /// in the JSON protocol; defaults to "pread".  A pure performance
        /// knob: index files, answers and I/O totals are identical either
        /// way.
        io_backend: IoBackend,
    },
    /// Run a query against a registered index.
    Query {
        /// Name of the index to query.
        name: String,
        /// The query series values.
        query: Vec<f32>,
        /// Number of neighbours.
        k: usize,
        /// Exact or approximate search.
        exact: bool,
    },
    /// Fetch the build report of a registered index.
    Metrics {
        /// Name of the index.
        name: String,
    },
    /// Ask the recommender for advice.
    Recommend {
        /// The application scenario.
        scenario: Scenario,
    },
    /// List registered indexes.
    ListIndexes,
}

/// A response from the algorithms server.
#[derive(Debug, Clone)]
pub enum PalmResponse {
    /// Result of a build request.
    Built {
        /// Index name.
        name: String,
        /// Variant display name ("CTreeFull", ...).
        variant: String,
        /// Build metrics.
        report: BuildReport,
    },
    /// Result of a query request.
    QueryResult {
        /// Index name.
        name: String,
        /// Neighbour ids, ascending distance.
        ids: Vec<u64>,
        /// Neighbour distances (Euclidean, not squared).
        distances: Vec<f64>,
        /// Query latency in milliseconds.
        elapsed_ms: f64,
        /// Entries examined / refined / raw fetches / blocks read+skipped.
        cost: QueryCostJson,
    },
    /// Metrics of a registered index.
    Metrics {
        /// Index name.
        name: String,
        /// Build metrics.
        report: BuildReport,
        /// Current footprint in bytes.
        footprint_bytes: u64,
    },
    /// Recommender advice.
    Recommendation {
        /// The recommendation, including the rationale path.
        recommendation: coconut_recommender::Recommendation,
    },
    /// Names of registered indexes.
    Indexes {
        /// Registered names.
        names: Vec<String>,
    },
    /// The request failed.
    Error {
        /// Human-readable error message.
        message: String,
    },
}

/// JSON-friendly projection of [`coconut_ctree::query::QueryCost`].
#[derive(Debug, Clone, Copy)]
pub struct QueryCostJson {
    /// Entries whose summarization was examined.
    pub entries_examined: u64,
    /// Entries refined with a true distance computation.
    pub entries_refined: u64,
    /// Raw series fetched from the data file.
    pub raw_fetches: u64,
    /// Blocks/partitions read.
    pub blocks_read: u64,
    /// Blocks/partitions skipped by pruning.
    pub blocks_skipped: u64,
}

impl From<coconut_ctree::query::QueryCost> for QueryCostJson {
    fn from(c: coconut_ctree::query::QueryCost) -> Self {
        QueryCostJson {
            entries_examined: c.entries_examined,
            entries_refined: c.entries_refined,
            raw_fetches: c.raw_fetches,
            blocks_read: c.blocks_read,
            blocks_skipped: c.blocks_skipped,
        }
    }
}

impl ToJson for QueryCostJson {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("entries_examined", self.entries_examined.to_json()),
            ("entries_refined", self.entries_refined.to_json()),
            ("raw_fetches", self.raw_fetches.to_json()),
            ("blocks_read", self.blocks_read.to_json()),
            ("blocks_skipped", self.blocks_skipped.to_json()),
        ])
    }
}

impl FromJson for QueryCostJson {
    fn from_json(json: &Json) -> coconut_json::Result<QueryCostJson> {
        Ok(QueryCostJson {
            entries_examined: member(json, "entries_examined")?,
            entries_refined: member(json, "entries_refined")?,
            raw_fetches: member(json, "raw_fetches")?,
            blocks_read: member(json, "blocks_read")?,
            blocks_skipped: member(json, "blocks_skipped")?,
        })
    }
}

impl ToJson for PalmRequest {
    fn to_json(&self) -> Json {
        match self {
            PalmRequest::BuildIndex {
                name,
                dataset_path,
                variant,
                materialized,
                memory_budget_bytes,
                parallelism,
                query_parallelism,
                shard_count,
                io_overlap,
                io_backend,
            } => Json::obj(vec![
                ("type", Json::Str("build_index".into())),
                ("name", name.to_json()),
                ("dataset_path", dataset_path.to_json()),
                ("variant", variant.to_json()),
                ("materialized", materialized.to_json()),
                ("memory_budget_bytes", memory_budget_bytes.to_json()),
                ("parallelism", parallelism.to_json()),
                ("query_parallelism", query_parallelism.to_json()),
                ("shard_count", shard_count.to_json()),
                ("io_overlap", io_overlap.to_json()),
                ("io_backend", io_backend.to_json()),
            ]),
            PalmRequest::Query {
                name,
                query,
                k,
                exact,
            } => Json::obj(vec![
                ("type", Json::Str("query".into())),
                ("name", name.to_json()),
                ("query", query.to_json()),
                ("k", k.to_json()),
                ("exact", exact.to_json()),
            ]),
            PalmRequest::Metrics { name } => Json::obj(vec![
                ("type", Json::Str("metrics".into())),
                ("name", name.to_json()),
            ]),
            PalmRequest::Recommend { scenario } => Json::obj(vec![
                ("type", Json::Str("recommend".into())),
                ("scenario", scenario.to_json()),
            ]),
            PalmRequest::ListIndexes => Json::obj(vec![("type", Json::Str("list_indexes".into()))]),
        }
    }
}

impl FromJson for PalmRequest {
    fn from_json(json: &Json) -> coconut_json::Result<PalmRequest> {
        let kind: String = member(json, "type")?;
        match kind.as_str() {
            "build_index" => Ok(PalmRequest::BuildIndex {
                name: member(json, "name")?,
                dataset_path: member(json, "dataset_path")?,
                variant: member(json, "variant")?,
                materialized: member(json, "materialized")?,
                memory_budget_bytes: member(json, "memory_budget_bytes")?,
                parallelism: member_or(json, "parallelism", 1)?,
                query_parallelism: member_or(json, "query_parallelism", 1)?,
                shard_count: member_or(json, "shard_count", 1)?,
                io_overlap: member_or(json, "io_overlap", true)?,
                io_backend: member_or(json, "io_backend", IoBackend::Pread)?,
            }),
            "query" => Ok(PalmRequest::Query {
                name: member(json, "name")?,
                query: member(json, "query")?,
                k: member(json, "k")?,
                exact: member(json, "exact")?,
            }),
            "metrics" => Ok(PalmRequest::Metrics {
                name: member(json, "name")?,
            }),
            "recommend" => Ok(PalmRequest::Recommend {
                scenario: member(json, "scenario")?,
            }),
            "list_indexes" => Ok(PalmRequest::ListIndexes),
            other => Err(JsonError::new(format!("unknown request type '{other}'"))),
        }
    }
}

impl ToJson for PalmResponse {
    fn to_json(&self) -> Json {
        match self {
            PalmResponse::Built {
                name,
                variant,
                report,
            } => Json::obj(vec![
                ("type", Json::Str("built".into())),
                ("name", name.to_json()),
                ("variant", variant.to_json()),
                ("report", report.to_json()),
            ]),
            PalmResponse::QueryResult {
                name,
                ids,
                distances,
                elapsed_ms,
                cost,
            } => Json::obj(vec![
                ("type", Json::Str("query_result".into())),
                ("name", name.to_json()),
                ("ids", ids.to_json()),
                ("distances", distances.to_json()),
                ("elapsed_ms", elapsed_ms.to_json()),
                ("cost", cost.to_json()),
            ]),
            PalmResponse::Metrics {
                name,
                report,
                footprint_bytes,
            } => Json::obj(vec![
                ("type", Json::Str("metrics".into())),
                ("name", name.to_json()),
                ("report", report.to_json()),
                ("footprint_bytes", footprint_bytes.to_json()),
            ]),
            PalmResponse::Recommendation { recommendation } => Json::obj(vec![
                ("type", Json::Str("recommendation".into())),
                ("recommendation", recommendation.to_json()),
            ]),
            PalmResponse::Indexes { names } => Json::obj(vec![
                ("type", Json::Str("indexes".into())),
                ("names", names.to_json()),
            ]),
            PalmResponse::Error { message } => Json::obj(vec![
                ("type", Json::Str("error".into())),
                ("message", message.to_json()),
            ]),
        }
    }
}

struct Registered {
    index: StaticIndex,
    report: BuildReport,
    stats: SharedIoStats,
}

/// The in-process algorithms server.
pub struct PalmServer {
    work_dir: PathBuf,
    indexes: HashMap<String, Registered>,
}

impl PalmServer {
    /// Creates a server that stores index files under `work_dir`.
    pub fn new<P: Into<PathBuf>>(work_dir: P) -> Self {
        PalmServer {
            work_dir: work_dir.into(),
            indexes: HashMap::new(),
        }
    }

    /// Handles one request, never panicking: failures become
    /// [`PalmResponse::Error`].
    pub fn handle(&mut self, request: PalmRequest) -> PalmResponse {
        match self.try_handle(request) {
            Ok(response) => response,
            Err(e) => PalmResponse::Error {
                message: e.to_string(),
            },
        }
    }

    /// Handles a request given as a JSON string, returning a JSON response
    /// (the exact shape the GUI client would exchange over REST).
    pub fn handle_json(&mut self, request_json: &str) -> String {
        let parsed = Json::parse(request_json).and_then(|json| PalmRequest::from_json(&json));
        let response = match parsed {
            Ok(req) => self.handle(req),
            Err(e) => PalmResponse::Error {
                message: format!("malformed request: {e}"),
            },
        };
        response.to_json().to_string()
    }

    fn try_handle(&mut self, request: PalmRequest) -> crate::Result<PalmResponse> {
        match request {
            PalmRequest::BuildIndex {
                name,
                dataset_path,
                variant,
                materialized,
                memory_budget_bytes,
                parallelism,
                query_parallelism,
                shard_count,
                io_overlap,
                io_backend,
            } => {
                let dataset = Dataset::open(&dataset_path)?;
                let config = IndexConfig::new(variant, dataset.series_len())
                    .materialized(materialized)
                    .with_memory_budget(memory_budget_bytes.max(1 << 20))
                    .with_parallelism(parallelism)
                    .with_query_parallelism(query_parallelism)
                    .with_shard_count(shard_count)
                    .with_io_overlap(io_overlap)
                    .with_io_backend(io_backend);
                let stats = IoStats::shared();
                let dir = self.work_dir.join(&name);
                let (index, report) =
                    StaticIndex::build(&dataset, config, &dir, Arc::clone(&stats))?;
                let variant_name = config.display_name();
                self.indexes.insert(
                    name.clone(),
                    Registered {
                        index,
                        report,
                        stats,
                    },
                );
                Ok(PalmResponse::Built {
                    name,
                    variant: variant_name,
                    report,
                })
            }
            PalmRequest::Query {
                name,
                query,
                k,
                exact,
            } => {
                let registered = self.indexes.get(&name).ok_or_else(|| {
                    crate::IndexError::Config(format!("no index registered under '{name}'"))
                })?;
                let start = Instant::now();
                let (neighbors, cost) = if exact {
                    registered.index.exact_knn(&query, k)?
                } else {
                    registered.index.approximate_knn(&query, k)?
                };
                Ok(PalmResponse::QueryResult {
                    name,
                    ids: neighbors.iter().map(|n| n.id).collect(),
                    distances: neighbors.iter().map(|n| n.distance()).collect(),
                    elapsed_ms: start.elapsed().as_secs_f64() * 1000.0,
                    cost: cost.into(),
                })
            }
            PalmRequest::Metrics { name } => {
                let registered = self.indexes.get(&name).ok_or_else(|| {
                    crate::IndexError::Config(format!("no index registered under '{name}'"))
                })?;
                Ok(PalmResponse::Metrics {
                    name,
                    report: registered.report,
                    footprint_bytes: registered.index.footprint_bytes(),
                })
            }
            PalmRequest::Recommend { scenario } => Ok(PalmResponse::Recommendation {
                recommendation: recommend(&scenario),
            }),
            PalmRequest::ListIndexes => {
                let mut names: Vec<String> = self.indexes.keys().cloned().collect();
                names.sort();
                Ok(PalmResponse::Indexes { names })
            }
        }
    }

    /// Shared I/O statistics of a registered index (for heat-map style
    /// reporting in examples).
    pub fn io_stats(&self, name: &str) -> Option<SharedIoStats> {
        self.indexes.get(name).map(|r| Arc::clone(&r.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::ScratchDir;

    fn setup() -> (ScratchDir, String, Vec<coconut_series::Series>) {
        let dir = ScratchDir::new("palm").unwrap();
        let mut gen = RandomWalkGenerator::new(64, 12);
        let series = gen.generate(200);
        let path = dir.file("raw.bin");
        Dataset::create_from_series(&path, &series).unwrap();
        (dir, path.to_string_lossy().into_owned(), series)
    }

    #[test]
    fn build_query_metrics_roundtrip() {
        let (dir, dataset_path, series) = setup();
        let mut server = PalmServer::new(dir.file("work"));
        let built = server.handle(PalmRequest::BuildIndex {
            name: "ctree".into(),
            dataset_path,
            variant: VariantKind::CTree,
            materialized: true,
            memory_budget_bytes: 8 << 20,
            parallelism: 1,
            query_parallelism: 1,
            shard_count: 1,
            io_overlap: true,
            io_backend: IoBackend::Pread,
        });
        match &built {
            PalmResponse::Built {
                variant, report, ..
            } => {
                assert_eq!(variant, "CTreeFull");
                assert_eq!(report.entries, 200);
            }
            other => panic!("unexpected response {other:?}"),
        }
        let target = &series[17];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.001).collect();
        let result = server.handle(PalmRequest::Query {
            name: "ctree".into(),
            query,
            k: 1,
            exact: true,
        });
        match result {
            PalmResponse::QueryResult { ids, distances, .. } => {
                assert_eq!(ids, vec![17]);
                assert!(distances[0] < 1.0);
            }
            other => panic!("unexpected response {other:?}"),
        }
        match server.handle(PalmRequest::Metrics {
            name: "ctree".into(),
        }) {
            PalmResponse::Metrics {
                footprint_bytes, ..
            } => assert!(footprint_bytes > 0),
            other => panic!("unexpected response {other:?}"),
        }
        match server.handle(PalmRequest::ListIndexes) {
            PalmResponse::Indexes { names } => assert_eq!(names, vec!["ctree".to_string()]),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn json_protocol_roundtrip() {
        let (dir, dataset_path, _series) = setup();
        let mut server = PalmServer::new(dir.file("work"));
        let request = format!(
            r#"{{"type":"build_index","name":"a","dataset_path":{},"variant":"CTree","materialized":false,"memory_budget_bytes":1048576}}"#,
            Json::Str(dataset_path.clone()).to_string()
        );
        let response = server.handle_json(&request);
        assert!(response.contains("\"built\""), "response was {response}");
        let response = server.handle_json(r#"{"type":"list_indexes"}"#);
        assert!(response.contains("\"a\""));
        let response = server.handle_json("not json at all");
        assert!(response.contains("malformed request"));
    }

    #[test]
    fn unknown_index_is_an_error_response() {
        let dir = ScratchDir::new("palm-err").unwrap();
        let mut server = PalmServer::new(dir.file("work"));
        let response = server.handle(PalmRequest::Query {
            name: "missing".into(),
            query: vec![0.0; 8],
            k: 1,
            exact: false,
        });
        assert!(matches!(response, PalmResponse::Error { .. }));
    }

    #[test]
    fn recommend_request_returns_rationale() {
        let dir = ScratchDir::new("palm-rec").unwrap();
        let mut server = PalmServer::new(dir.file("work"));
        let response = server.handle(PalmRequest::Recommend {
            scenario: Scenario::streaming(1_000_000, 256),
        });
        match response {
            PalmResponse::Recommendation { recommendation } => {
                assert!(!recommendation.rationale.is_empty());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
