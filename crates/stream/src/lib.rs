//! # coconut-stream
//!
//! Streaming window schemes for data series exploration (Section 3 of the
//! paper).  Queries over streams carry a temporal window of interest; the
//! three schemes differ in how they restrict the search to that window:
//!
//! * **Post-Processing (PP)** — a single index over everything; every entry's
//!   timestamp is examined during the search and out-of-window entries are
//!   discarded.  Cheap to maintain, but queries over small windows still
//!   touch the whole index.
//! * **Temporal Partitioning (TP)** — every buffer flush creates a new,
//!   never-merged partition tagged with its creation time range.  Queries
//!   read only partitions intersecting the window, but the number of
//!   partitions grows without bound, which hurts large-window and
//!   approximate queries.
//! * **Bounded Temporal Partitioning (BTP)** — enabled by sortable
//!   summarizations: partitions are sort-merged size-tieredly (newest data in
//!   small partitions, older data in progressively larger contiguous ones),
//!   so the partition count stays logarithmic while small-window queries
//!   still skip the bulk of the data.
//!
//! All three schemes implement the common [`StreamingIndex`] trait so the
//! benchmarks and the core facade can swap them freely.  PP can wrap either
//! the ADS+ baseline or CoconutLSM; TP supports sorted (Coconut) and ADS
//! partitions; BTP requires sorted partitions (that is the point).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use coconut_ads::{AdsConfig, AdsTree};
use coconut_clsm::ClsmTree;
use coconut_ctree::entry::{EntryLayout, SeriesEntry};
use coconut_ctree::planner::{self, PlanReport, PlannerInputs, PlannerMode};
use coconut_ctree::query::{KnnHeap, QueryContext, QueryCost};
use coconut_ctree::sorted_file::SortedSeriesFile;
use coconut_ctree::{IndexError, Result};
use coconut_sax::{SaxConfig, SortableSummarizer};
use coconut_series::distance::Neighbor;
use coconut_series::{Timestamp, TimestampedSeries};
use coconut_storage::{IoBackend, SharedIoStats};

/// Which windowing scheme a streaming index uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowScheme {
    /// Post-processing: one index, timestamps filtered during the scan.
    PostProcessing,
    /// Temporal partitioning: one partition per buffer flush, never merged.
    TemporalPartitioning,
    /// Bounded temporal partitioning: size-tiered sort-merged partitions.
    BoundedTemporalPartitioning,
}

impl WindowScheme {
    /// Short name used in reports ("PP", "TP", "BTP").
    pub fn short_name(&self) -> &'static str {
        match self {
            WindowScheme::PostProcessing => "PP",
            WindowScheme::TemporalPartitioning => "TP",
            WindowScheme::BoundedTemporalPartitioning => "BTP",
        }
    }
}

/// Result of a windowed streaming query.
#[derive(Debug, Clone)]
pub struct StreamQueryResult {
    /// Nearest neighbours found, ascending distance.
    pub neighbors: Vec<Neighbor>,
    /// Cost counters accumulated during the query.
    pub cost: QueryCost,
    /// Partitions whose data was actually read.
    pub partitions_accessed: usize,
    /// Total partitions existing at query time.
    pub partitions_total: usize,
}

/// Common interface of all streaming index variants.
pub trait StreamingIndex {
    /// Ingests a batch of timestamped arrivals.
    fn ingest_batch(&mut self, batch: &[TimestampedSeries]) -> Result<()>;

    /// Answers a kNN query constrained to `window` (`None` = everything).
    fn query_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<StreamQueryResult>;

    /// Answers a batch of kNN queries constrained to one `window`.
    ///
    /// Every query's result must be identical to issuing it alone via
    /// [`StreamingIndex::query_window`].  The default implementation is the
    /// one-at-a-time loop; schemes built on the concurrent engine override
    /// it with the batched round pipeline (`coconut_ctree::engine`), which
    /// preserves that identity by construction.
    fn query_window_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<Vec<StreamQueryResult>> {
        queries
            .iter()
            .map(|q| self.query_window(q, k, window, exact))
            .collect()
    }

    /// Number of partitions (1 for PP schemes).
    fn num_partitions(&self) -> usize;

    /// Total entries ingested so far.
    fn len(&self) -> u64;

    /// Returns `true` when nothing has been ingested yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk footprint in bytes.
    fn footprint_bytes(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Post-Processing (PP)
// ---------------------------------------------------------------------------

/// The mutable index a PP scheme wraps.
pub enum PpBackend {
    /// ADS+ baseline.
    Ads(AdsTree),
    /// CoconutLSM.
    Clsm(ClsmTree),
}

/// Post-processing scheme: a single index plus timestamp filtering.
pub struct PpStream {
    backend: PpBackend,
    entries: u64,
}

impl PpStream {
    /// Wraps an ADS+ index.
    pub fn over_ads(tree: AdsTree) -> Self {
        PpStream {
            backend: PpBackend::Ads(tree),
            entries: 0,
        }
    }

    /// Wraps a CoconutLSM index.
    pub fn over_clsm(tree: ClsmTree) -> Self {
        PpStream {
            backend: PpBackend::Clsm(tree),
            entries: 0,
        }
    }

    /// Access to the wrapped backend (for inspection in benchmarks).
    pub fn backend(&self) -> &PpBackend {
        &self.backend
    }
}

impl StreamingIndex for PpStream {
    fn ingest_batch(&mut self, batch: &[TimestampedSeries]) -> Result<()> {
        for arrival in batch {
            match &mut self.backend {
                PpBackend::Ads(t) => t.insert(&arrival.series, arrival.timestamp)?,
                PpBackend::Clsm(t) => t.insert(&arrival.series, arrival.timestamp)?,
            }
            self.entries += 1;
        }
        Ok(())
    }

    fn query_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<StreamQueryResult> {
        let (neighbors, cost) = match (&self.backend, exact) {
            (PpBackend::Ads(t), true) => t.exact_knn_window(query, k, window)?,
            (PpBackend::Ads(t), false) => t.approximate_knn_window(query, k, window)?,
            (PpBackend::Clsm(t), true) => t.exact_knn_window(query, k, window)?,
            (PpBackend::Clsm(t), false) => t.approximate_knn_window(query, k, window)?,
        };
        Ok(StreamQueryResult {
            neighbors,
            cost,
            partitions_accessed: 1,
            partitions_total: 1,
        })
    }

    fn query_window_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<Vec<StreamQueryResult>> {
        match &self.backend {
            // The CLSM backend runs the whole batch through the engine's
            // round pipeline (per-query results identical to one-at-a-time).
            PpBackend::Clsm(t) => Ok(t
                .batch_knn_window(queries, k, window, exact)?
                .into_iter()
                .map(|(neighbors, cost)| StreamQueryResult {
                    neighbors,
                    cost,
                    partitions_accessed: 1,
                    partitions_total: 1,
                })
                .collect()),
            // The ADS+ baseline has its own traversal: one-at-a-time loop.
            PpBackend::Ads(_) => queries
                .iter()
                .map(|q| self.query_window(q, k, window, exact))
                .collect(),
        }
    }

    fn num_partitions(&self) -> usize {
        1
    }

    fn len(&self) -> u64 {
        self.entries
    }

    fn footprint_bytes(&self) -> u64 {
        match &self.backend {
            PpBackend::Ads(t) => t.footprint_bytes(),
            PpBackend::Clsm(t) => t.footprint_bytes(),
        }
    }
}

// ---------------------------------------------------------------------------
// Temporal partitions (shared by TP and BTP)
// ---------------------------------------------------------------------------

/// What kind of structure each temporal partition uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// A sorted (Coconut-style) partition built by sorting the buffer.
    Sorted,
    /// An ADS+-style partition built by insertions.
    Ads,
}

enum Partition {
    Sorted {
        file: SortedSeriesFile,
        min_ts: Timestamp,
        max_ts: Timestamp,
    },
    Ads {
        tree: Box<AdsTree>,
        min_ts: Timestamp,
        max_ts: Timestamp,
    },
}

impl Partition {
    fn time_range(&self) -> (Timestamp, Timestamp) {
        match self {
            Partition::Sorted { min_ts, max_ts, .. } => (*min_ts, *max_ts),
            Partition::Ads { min_ts, max_ts, .. } => (*min_ts, *max_ts),
        }
    }

    fn intersects(&self, window: Option<(Timestamp, Timestamp)>) -> bool {
        match window {
            None => true,
            Some((start, end)) => {
                let (min_ts, max_ts) = self.time_range();
                min_ts <= end && max_ts >= start
            }
        }
    }

    fn len(&self) -> u64 {
        match self {
            Partition::Sorted { file, .. } => file.len(),
            Partition::Ads { tree, .. } => tree.len(),
        }
    }

    fn footprint(&self) -> u64 {
        match self {
            // Physical size: with compression on, planner residency
            // decisions see the real (smaller) working set.
            Partition::Sorted { file, .. } => file.physical_byte_size(),
            Partition::Ads { tree, .. } => tree.footprint_bytes(),
        }
    }
}

/// Configuration shared by the TP and BTP schemes.
#[derive(Debug, Clone, Copy)]
pub struct PartitionedConfig {
    /// Summarization configuration.
    pub sax: SaxConfig,
    /// Number of arrivals buffered in memory before a partition is created
    /// (the paper's "in-memory buffer fills up").
    pub buffer_capacity: usize,
    /// Entries per block inside sorted partitions.
    pub entries_per_block: usize,
    /// Growth factor for BTP size-tiered merging.
    pub growth_factor: usize,
    /// Kind of structure used for each partition.
    pub partition_kind: PartitionKind,
    /// Page size used for I/O accounting.
    pub page_size: usize,
    /// Worker threads for batch summarization and partition sorting (`1` =
    /// sequential, `0` = one per available core).
    pub parallelism: usize,
    /// Worker threads for query fan-out over partitions (`1` = sequential,
    /// `0` = one per available core).  Answers and cost counters are
    /// identical at every setting; see `coconut_ctree::engine`.
    pub query_parallelism: usize,
    /// Overlap computation with I/O during BTP partition merges (default
    /// `true`): each merge input reads ahead on a background worker while
    /// the k-way merge drains the current buffer.  A pure performance knob —
    /// partitions, answers and `IoStats` totals are identical either way.
    pub io_overlap: bool,
    /// Read backend for sorted partitions (default `pread`; `mmap` serves
    /// partition block scans and BTP merge reads from read-only file
    /// mappings, dropped before a merge deletes its inputs).  A pure
    /// performance knob — partitions, answers and `IoStats` totals are
    /// identical at either setting.
    pub io_backend: IoBackend,
    /// Query planning mode (default [`PlannerMode::Fixed`]).  `Fixed` uses
    /// the knobs above verbatim; `Adaptive` lets the per-query cost-model
    /// planner pick fan-out, read-ahead gate and batch shape from observed
    /// state.  Answers, `QueryCost` and `IoStats` are identical in both
    /// modes; see `coconut_ctree::planner`.
    pub planner: PlannerMode,
    /// Minimum contiguous byte range for which BTP merge read-ahead engages
    /// (default `coconut_storage::PREFETCH_MIN_BYTES`; `usize::MAX`
    /// disables read-ahead).  A pure performance knob.
    pub prefetch_min_bytes: usize,
    /// On-disk compression of sorted partitions (default `off`).  Answers,
    /// `QueryCost` and the logical `IoStats` view are identical at either
    /// setting; partitions and merges just move fewer physical bytes.
    pub compression: coconut_storage::Compression,
}

impl PartitionedConfig {
    /// A reasonable default configuration.
    pub fn new(sax: SaxConfig) -> Self {
        PartitionedConfig {
            sax,
            buffer_capacity: 1024,
            entries_per_block: 64,
            growth_factor: 3,
            partition_kind: PartitionKind::Sorted,
            page_size: coconut_storage::DEFAULT_PAGE_SIZE,
            parallelism: 1,
            query_parallelism: 1,
            io_overlap: true,
            io_backend: IoBackend::Pread,
            planner: PlannerMode::Fixed,
            prefetch_min_bytes: coconut_storage::PREFETCH_MIN_BYTES,
            compression: coconut_storage::Compression::Off,
        }
    }

    /// Sets the buffer capacity (arrivals per partition).
    pub fn with_buffer_capacity(mut self, entries: usize) -> Self {
        self.buffer_capacity = entries.max(1);
        self
    }

    /// Sets the BTP growth factor.
    pub fn with_growth_factor(mut self, t: usize) -> Self {
        assert!(t >= 2);
        self.growth_factor = t;
        self
    }

    /// Sets the partition kind.
    pub fn with_partition_kind(mut self, kind: PartitionKind) -> Self {
        self.partition_kind = kind;
        self
    }

    /// Sets the ingest parallelism (`1` = sequential, `0` = all cores).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Sets the query fan-out parallelism (`1` = sequential, `0` = all
    /// cores).  A pure performance knob.
    pub fn with_query_parallelism(mut self, workers: usize) -> Self {
        self.query_parallelism = workers;
        self
    }

    /// Enables or disables overlapped merge I/O (default on).  A pure
    /// performance knob; see [`PartitionedConfig::io_overlap`].
    pub fn with_io_overlap(mut self, overlap: bool) -> Self {
        self.io_overlap = overlap;
        self
    }

    /// Selects the read backend for sorted partitions (default `pread`).
    /// A pure performance knob; see [`PartitionedConfig::io_backend`].
    pub fn with_io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = backend;
        self
    }

    /// Selects the query planning mode (default `Fixed`).  A pure
    /// performance knob; see [`PartitionedConfig::planner`].
    pub fn with_planner(mut self, mode: PlannerMode) -> Self {
        self.planner = mode;
        self
    }

    /// Sets the read-ahead engagement gate for BTP merges in bytes
    /// (`usize::MAX` disables read-ahead).  A pure performance knob; see
    /// [`PartitionedConfig::prefetch_min_bytes`].
    pub fn with_prefetch_min_bytes(mut self, bytes: usize) -> Self {
        self.prefetch_min_bytes = bytes;
        self
    }

    /// Selects the on-disk compression of sorted partitions (default
    /// `off`).  A pure performance knob; see
    /// [`PartitionedConfig::compression`].
    pub fn with_compression(mut self, compression: coconut_storage::Compression) -> Self {
        self.compression = compression;
        self
    }

    fn layout(&self) -> EntryLayout {
        // Streaming partitions always materialize their entries: the raw
        // series only exist in the stream, there is no pre-existing raw data
        // file to point into (documented substitution in DESIGN.md).
        EntryLayout::materialized(self.sax.key_bits(), self.sax.series_len)
    }
}

/// A partitioned streaming index implementing TP or (with merging) BTP.
pub struct PartitionedStream {
    config: PartitionedConfig,
    scheme: WindowScheme,
    summarizer: SortableSummarizer,
    buffer: Vec<SeriesEntry>,
    buffer_min_ts: Timestamp,
    buffer_max_ts: Timestamp,
    partitions: Vec<Partition>,
    dir: PathBuf,
    stats: SharedIoStats,
    next_id: u64,
    entries: u64,
    /// Number of partition merges performed (BTP only).
    pub merges: u64,
}

impl PartitionedStream {
    /// Creates a TP index (never merges partitions).
    pub fn temporal_partitioning(
        config: PartitionedConfig,
        dir: &Path,
        stats: SharedIoStats,
    ) -> Result<Self> {
        Self::new(config, WindowScheme::TemporalPartitioning, dir, stats)
    }

    /// Creates a BTP index (size-tiered partition merging).  Requires sorted
    /// partitions.
    pub fn bounded_temporal_partitioning(
        config: PartitionedConfig,
        dir: &Path,
        stats: SharedIoStats,
    ) -> Result<Self> {
        if config.partition_kind != PartitionKind::Sorted {
            return Err(IndexError::Config(
                "BTP requires sortable (Coconut) partitions; ADS partitions cannot be sort-merged"
                    .into(),
            ));
        }
        Self::new(
            config,
            WindowScheme::BoundedTemporalPartitioning,
            dir,
            stats,
        )
    }

    fn new(
        config: PartitionedConfig,
        scheme: WindowScheme,
        dir: &Path,
        stats: SharedIoStats,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(coconut_storage::StorageError::from)?;
        Ok(PartitionedStream {
            config,
            scheme,
            summarizer: SortableSummarizer::new(config.sax),
            buffer: Vec::new(),
            buffer_min_ts: Timestamp::MAX,
            buffer_max_ts: 0,
            partitions: Vec::new(),
            dir: dir.to_path_buf(),
            stats,
            next_id: 0,
            entries: 0,
            merges: 0,
        })
    }

    /// The windowing scheme of this index.
    pub fn scheme(&self) -> WindowScheme {
        self.scheme
    }

    /// Flushes the in-memory buffer into a new partition.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let entries = std::mem::take(&mut self.buffer);
        let (min_ts, max_ts) = (self.buffer_min_ts, self.buffer_max_ts);
        self.buffer_min_ts = Timestamp::MAX;
        self.buffer_max_ts = 0;
        let partition = match self.config.partition_kind {
            PartitionKind::Sorted => {
                let path = self.dir.join(format!("tp-part-{:06}.run", self.next_id));
                self.next_id += 1;
                let file = SortedSeriesFile::build_from_entries_compressed(
                    path,
                    self.config.layout(),
                    self.config.sax,
                    entries,
                    self.config.entries_per_block,
                    Arc::clone(&self.stats),
                    self.config.page_size,
                    self.config.parallelism,
                    self.config.io_backend,
                    self.config.compression,
                )?;
                Partition::Sorted {
                    file,
                    min_ts,
                    max_ts,
                }
            }
            PartitionKind::Ads => {
                let subdir = self.dir.join(format!("tp-ads-{:06}", self.next_id));
                self.next_id += 1;
                std::fs::create_dir_all(&subdir).map_err(coconut_storage::StorageError::from)?;
                let ads_config = AdsConfig::new(self.config.sax)
                    .materialized(true)
                    .with_leaf_capacity(self.config.entries_per_block);
                let mut tree = AdsTree::new(ads_config, &subdir, Arc::clone(&self.stats))?;
                for e in entries {
                    let series = coconut_series::Series::new(e.id, e.values.clone());
                    tree.insert(&series, e.timestamp)?;
                }
                tree.flush_buffers()?;
                Partition::Ads {
                    tree: Box::new(tree),
                    min_ts,
                    max_ts,
                }
            }
        };
        self.partitions.push(partition);
        if self.scheme == WindowScheme::BoundedTemporalPartitioning {
            self.merge_tiers()?;
        }
        Ok(())
    }

    /// Size-tiered merging: whenever `growth_factor` partitions share the
    /// same size tier, they are sort-merged into one partition of the next
    /// tier.  Newer data therefore stays in small partitions while older data
    /// accumulates into few large contiguous ones.
    fn merge_tiers(&mut self) -> Result<()> {
        let t = self.config.growth_factor as u64;
        loop {
            // Group partition indexes by their size tier.
            let mut by_tier: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
            for (i, p) in self.partitions.iter().enumerate() {
                let tier = size_tier(p.len(), self.config.buffer_capacity as u64, t);
                by_tier.entry(tier).or_default().push(i);
            }
            let Some((_, group)) = by_tier.into_iter().find(|(_, v)| v.len() >= t as usize) else {
                return Ok(());
            };
            // Merge the oldest `t` partitions of that tier.
            let mut to_merge: Vec<usize> = group.into_iter().take(t as usize).collect();
            to_merge.sort_unstable();
            let mut files = Vec::new();
            let mut min_ts = Timestamp::MAX;
            let mut max_ts = 0;
            // Remove from the back so indexes stay valid.
            for &idx in to_merge.iter().rev() {
                match self.partitions.remove(idx) {
                    Partition::Sorted {
                        file,
                        min_ts: a,
                        max_ts: b,
                    } => {
                        min_ts = min_ts.min(a);
                        max_ts = max_ts.max(b);
                        files.push(file);
                    }
                    Partition::Ads { .. } => {
                        return Err(IndexError::Config(
                            "BTP merging encountered an ADS partition".into(),
                        ))
                    }
                }
            }
            let layout = self.config.layout();
            let runs: Vec<_> = files.iter().map(|f| f.run().clone()).collect();
            let merge = coconut_storage::DynKWayMerge::new_with_prefetch_gate(
                layout,
                &runs,
                256,
                self.config.io_overlap,
                self.merge_prefetch_gate(),
            )?;
            let path = self.dir.join(format!("btp-merged-{:06}.run", self.next_id));
            self.next_id += 1;
            let merged = SortedSeriesFile::build_from_sorted_compressed(
                path,
                layout,
                self.config.sax,
                merge.map(|r| r.map_err(IndexError::from)),
                self.config.entries_per_block,
                Arc::clone(&self.stats),
                self.config.page_size,
                self.config.io_backend,
                self.config.compression,
            )?;
            for f in files {
                let _ = f.delete();
            }
            self.partitions.push(Partition::Sorted {
                file: merged,
                min_ts,
                max_ts,
            });
            self.merges += 1;
        }
    }

    fn search_buffer(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
        window: Option<(Timestamp, Timestamp)>,
    ) {
        for entry in &self.buffer {
            if let Some((start, end)) = window {
                if entry.timestamp < start || entry.timestamp > end {
                    continue;
                }
            }
            ctx.cost.entries_examined += 1;
            if let Some(d) =
                coconut_ctree::kernels::euclidean_early_abandon(query, &entry.values, heap.bound())
            {
                heap.offer_at(entry.id, entry.timestamp, d);
            }
        }
    }

    /// Search units in newest-first order: the buffer, then every partition
    /// whose time range intersects the window (the second value is how many
    /// partitions will be accessed).  The engine probes them concurrently
    /// around a shared best-so-far bound.
    fn query_units(
        &self,
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
    ) -> (Vec<StreamUnit<'_>>, usize) {
        let mut units = Vec::with_capacity(self.partitions.len() + 1);
        if !self.buffer.is_empty() {
            units.push(StreamUnit {
                stream: self,
                k,
                window,
                part: StreamPart::Buffer,
            });
        }
        let mut accessed = 0;
        for partition in self.partitions.iter().rev() {
            if !partition.intersects(window) {
                continue;
            }
            accessed += 1;
            let part = match partition {
                Partition::Sorted { file, .. } => StreamPart::Sorted(file),
                Partition::Ads { tree, .. } => StreamPart::Ads(tree),
            };
            units.push(StreamUnit {
                stream: self,
                k,
                window,
                part,
            });
        }
        (units, accessed)
    }

    /// Captures a deterministic [`PlannerInputs`] snapshot for this stream:
    /// every field is an integer read at capture time; the decision itself
    /// is the pure function `coconut_ctree::planner::plan`.
    fn planner_inputs(
        &self,
        k: usize,
        batch_width: usize,
        exact: bool,
        unit_count: usize,
    ) -> PlannerInputs {
        let probe = planner::host_probe();
        let snap = self.stats.snapshot();
        PlannerInputs {
            footprint_bytes: self.partitions.iter().map(|p| p.footprint()).sum(),
            cache_budget_bytes: probe.cache_budget_bytes,
            unit_count,
            run_count: self.partitions.len().max(1),
            cores: probe.cores,
            k,
            batch_width,
            exact,
            random_read_permille: planner::read_permille(&snap),
        }
    }

    /// The read-ahead gate a BTP merge should use: the configured value in
    /// `Fixed` mode, or the planner's choice from a fresh state snapshot in
    /// `Adaptive` mode.
    fn merge_prefetch_gate(&self) -> usize {
        match self.config.planner {
            PlannerMode::Fixed => self.config.prefetch_min_bytes,
            PlannerMode::Adaptive => {
                let unit_count = self.partitions.len() + usize::from(!self.buffer.is_empty());
                planner::plan(&self.planner_inputs(0, 1, true, unit_count))
                    .effective_prefetch_gate()
            }
        }
    }

    /// Like [`StreamingIndex::query_window`], but routed through the query
    /// planner when the config selects [`PlannerMode::Adaptive`]: the
    /// fan-out knob comes from a [`PlanReport`] captured for this query
    /// (over the units the window actually selects), returned alongside the
    /// result.  In `Fixed` mode this is exactly `query_window`
    /// (byte-identical path) and the report is `None`.  Results are
    /// identical in both modes.
    pub fn query_window_planned(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<(StreamQueryResult, Option<PlanReport>)> {
        match self.config.planner {
            PlannerMode::Fixed => self
                .query_window(query, k, window, exact)
                .map(|r| (r, None)),
            PlannerMode::Adaptive => {
                let (units, accessed) = self.query_units(k, window);
                let report = planner::plan_report(self.planner_inputs(k, 1, exact, units.len()));
                let (neighbors, cost) = coconut_ctree::engine::parallel_knn(
                    &units,
                    query,
                    k,
                    report.decision.query_parallelism,
                    exact,
                )?;
                Ok((
                    StreamQueryResult {
                        neighbors,
                        cost,
                        partitions_accessed: accessed,
                        partitions_total: self.partitions.len(),
                    },
                    Some(report),
                ))
            }
        }
    }

    /// Like [`StreamingIndex::query_window_batch`], but routed through the
    /// query planner when the config selects [`PlannerMode::Adaptive`]:
    /// fan-out and batch round shape come from a [`PlanReport`] captured
    /// for this batch.  In `Fixed` mode this is exactly
    /// `query_window_batch` and the report is `None`.  Results are
    /// identical in both modes.
    pub fn query_window_batch_planned(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<(Vec<StreamQueryResult>, Option<PlanReport>)> {
        match self.config.planner {
            PlannerMode::Fixed => self
                .query_window_batch(queries, k, window, exact)
                .map(|r| (r, None)),
            PlannerMode::Adaptive => {
                let (units, accessed) = self.query_units(k, window);
                let report =
                    planner::plan_report(self.planner_inputs(k, queries.len(), exact, units.len()));
                let results = coconut_ctree::engine::batch_knn_chunked(
                    &units,
                    queries,
                    k,
                    report.decision.query_parallelism,
                    exact,
                    report.decision.batch_chunk,
                    &coconut_parallel::CancelToken::never(),
                )?;
                Ok((
                    results
                        .into_iter()
                        .map(|(neighbors, cost)| StreamQueryResult {
                            neighbors,
                            cost,
                            partitions_accessed: accessed,
                            partitions_total: self.partitions.len(),
                        })
                        .collect(),
                    Some(report),
                ))
            }
        }
    }
}

#[derive(Clone, Copy)]
enum StreamPart<'a> {
    /// The in-memory arrival buffer.
    Buffer,
    /// A sorted (Coconut-style) temporal partition.
    Sorted(&'a SortedSeriesFile),
    /// An ADS+-style temporal partition.
    Ads(&'a AdsTree),
}

/// One independently searchable piece of a partitioned stream for the
/// concurrent query engine.  The query is supplied per search call so one
/// unit list serves a whole batch.
struct StreamUnit<'a> {
    stream: &'a PartitionedStream,
    k: usize,
    window: Option<(Timestamp, Timestamp)>,
    part: StreamPart<'a>,
}

impl StreamUnit<'_> {
    fn search_ads(
        &self,
        tree: &AdsTree,
        query: &[f32],
        exact: bool,
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()> {
        // ADS partitions run their own traversal; fold their neighbours and
        // cost into this worker's heap and counters.
        let (neighbors, cost) = if exact {
            tree.exact_knn_window(query, self.k, self.window)?
        } else {
            tree.approximate_knn_window(query, self.k, self.window)?
        };
        ctx.cost = ctx.cost.plus(&cost);
        for n in neighbors {
            heap.offer_at(n.id, n.timestamp, n.squared_distance);
        }
        Ok(())
    }
}

impl coconut_ctree::engine::SearchUnit for StreamUnit<'_> {
    fn context(&self) -> QueryContext<'_> {
        // Streaming partitions always materialize their entries.
        QueryContext::materialized()
    }

    fn search_approximate(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()> {
        match self.part {
            // The buffer is in memory: its "approximate" probe is the full
            // scan, which both seeds the shared bound and is exact.
            StreamPart::Buffer => {
                self.stream.search_buffer(query, heap, ctx, self.window);
                Ok(())
            }
            StreamPart::Sorted(file) => file.search_approximate(query, heap, ctx, self.window),
            StreamPart::Ads(tree) => self.search_ads(tree, query, false, heap, ctx),
        }
    }

    fn search_exact(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()> {
        match self.part {
            StreamPart::Buffer => {
                self.stream.search_buffer(query, heap, ctx, self.window);
                Ok(())
            }
            StreamPart::Sorted(file) => file.search_exact(query, heap, ctx, self.window),
            StreamPart::Ads(tree) => self.search_ads(tree, query, true, heap, ctx),
        }
    }
}

fn size_tier(len: u64, base: u64, growth: u64) -> u32 {
    let base = base.max(1);
    let mut tier = 0u32;
    let mut cap = base;
    while len > cap {
        cap = cap.saturating_mul(growth);
        tier += 1;
    }
    tier
}

impl StreamingIndex for PartitionedStream {
    fn ingest_batch(&mut self, batch: &[TimestampedSeries]) -> Result<()> {
        for arrival in batch {
            if arrival.series.len() != self.config.sax.series_len {
                return Err(IndexError::Config(format!(
                    "arrival series length {} does not match index ({})",
                    arrival.series.len(),
                    self.config.sax.series_len
                )));
            }
        }
        // Summarize the whole batch on the worker pool, then apply arrivals
        // in order (each carries its own timestamp).
        let values: Vec<&[f32]> = batch.iter().map(|a| a.series.values.as_slice()).collect();
        let keys = self
            .summarizer
            .keys_batch_values(&values, self.config.parallelism);
        for (arrival, key) in batch.iter().zip(keys) {
            self.buffer.push(SeriesEntry::from_keyed(
                key,
                &arrival.series,
                arrival.timestamp,
                true,
            ));
            self.buffer_min_ts = self.buffer_min_ts.min(arrival.timestamp);
            self.buffer_max_ts = self.buffer_max_ts.max(arrival.timestamp);
            self.entries += 1;
            if self.buffer.len() >= self.config.buffer_capacity {
                self.flush()?;
            }
        }
        Ok(())
    }

    fn query_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<StreamQueryResult> {
        let (units, accessed) = self.query_units(k, window);
        let (neighbors, cost) = coconut_ctree::engine::parallel_knn(
            &units,
            query,
            k,
            self.config.query_parallelism,
            exact,
        )?;
        Ok(StreamQueryResult {
            neighbors,
            cost,
            partitions_accessed: accessed,
            partitions_total: self.partitions.len(),
        })
    }

    fn query_window_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<Vec<StreamQueryResult>> {
        let (units, accessed) = self.query_units(k, window);
        let results = coconut_ctree::engine::batch_knn(
            &units,
            queries,
            k,
            self.config.query_parallelism,
            exact,
        )?;
        Ok(results
            .into_iter()
            .map(|(neighbors, cost)| StreamQueryResult {
                neighbors,
                cost,
                partitions_accessed: accessed,
                partitions_total: self.partitions.len(),
            })
            .collect())
    }

    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn len(&self) -> u64 {
        self.entries
    }

    fn footprint_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.footprint()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::distance::brute_force_knn;
    use coconut_series::generator::SeismicStreamGenerator;
    use coconut_storage::iostats::IoStats;
    use coconut_storage::ScratchDir;

    fn stream_batches(n_batches: usize, batch: usize, seed: u64) -> Vec<Vec<TimestampedSeries>> {
        let mut gen = SeismicStreamGenerator::new(64, seed, 0.1);
        (0..n_batches).map(|_| gen.next_batch(batch)).collect()
    }

    fn all_series(batches: &[Vec<TimestampedSeries>]) -> Vec<(u64, Vec<f32>, Timestamp)> {
        batches
            .iter()
            .flatten()
            .map(|a| (a.series.id, a.series.values.clone(), a.timestamp))
            .collect()
    }

    fn sax() -> SaxConfig {
        SaxConfig::new(64, 8, 8)
    }

    #[test]
    fn tp_creates_unmerged_partitions() {
        let dir = ScratchDir::new("tp").unwrap();
        let config = PartitionedConfig::new(sax()).with_buffer_capacity(50);
        let mut tp =
            PartitionedStream::temporal_partitioning(config, dir.path(), IoStats::shared())
                .unwrap();
        for batch in stream_batches(10, 50, 1) {
            tp.ingest_batch(&batch).unwrap();
        }
        assert_eq!(tp.num_partitions(), 10);
        assert_eq!(tp.merges, 0);
        assert_eq!(tp.len(), 500);
    }

    #[test]
    fn btp_bounds_partition_count() {
        let dir = ScratchDir::new("btp").unwrap();
        let config = PartitionedConfig::new(sax())
            .with_buffer_capacity(50)
            .with_growth_factor(3);
        let mut btp =
            PartitionedStream::bounded_temporal_partitioning(config, dir.path(), IoStats::shared())
                .unwrap();
        for batch in stream_batches(27, 50, 2) {
            btp.ingest_batch(&batch).unwrap();
        }
        assert!(btp.merges > 0, "BTP must have merged partitions");
        assert!(
            btp.num_partitions() < 27 / 2,
            "BTP partition count {} should be far below the TP count 27",
            btp.num_partitions()
        );
        assert_eq!(btp.len(), 27 * 50);
    }

    #[test]
    fn btp_rejects_ads_partitions() {
        let dir = ScratchDir::new("btp-ads").unwrap();
        let config = PartitionedConfig::new(sax()).with_partition_kind(PartitionKind::Ads);
        assert!(matches!(
            PartitionedStream::bounded_temporal_partitioning(config, dir.path(), IoStats::shared()),
            Err(IndexError::Config(_))
        ));
    }

    #[test]
    fn windowed_queries_are_exact_within_window() {
        let dir = ScratchDir::new("tp-exact").unwrap();
        let batches = stream_batches(8, 40, 3);
        let reference = all_series(&batches);
        let config = PartitionedConfig::new(sax()).with_buffer_capacity(40);
        let mut tp =
            PartitionedStream::temporal_partitioning(config, dir.path(), IoStats::shared())
                .unwrap();
        for batch in &batches {
            tp.ingest_batch(batch).unwrap();
        }
        let gen = SeismicStreamGenerator::new(64, 99, 0.5);
        let query = gen.quake_template();
        let window = (100u64, 250u64);
        let expected = brute_force_knn(
            &query,
            reference
                .iter()
                .filter(|(_, _, ts)| *ts >= window.0 && *ts <= window.1)
                .map(|(id, v, _)| (*id, v.as_slice())),
            3,
        );
        let result = tp.query_window(&query, 3, Some(window), true).unwrap();
        assert_eq!(result.neighbors.len(), 3);
        for (g, e) in result.neighbors.iter().zip(expected.iter()) {
            assert!((g.squared_distance - e.squared_distance).abs() < 1e-6);
        }
        // Partitions outside the window must have been skipped.
        assert!(result.partitions_accessed < result.partitions_total);
    }

    #[test]
    fn btp_queries_match_tp_queries() {
        let dir = ScratchDir::new("tp-vs-btp").unwrap();
        let batches = stream_batches(12, 40, 4);
        let tp_config = PartitionedConfig::new(sax()).with_buffer_capacity(40);
        let btp_config = PartitionedConfig::new(sax())
            .with_buffer_capacity(40)
            .with_growth_factor(3);
        let mut tp =
            PartitionedStream::temporal_partitioning(tp_config, &dir.file("tp"), IoStats::shared())
                .unwrap();
        let mut btp = PartitionedStream::bounded_temporal_partitioning(
            btp_config,
            &dir.file("btp"),
            IoStats::shared(),
        )
        .unwrap();
        for batch in &batches {
            tp.ingest_batch(batch).unwrap();
            btp.ingest_batch(batch).unwrap();
        }
        let mut gen = SeismicStreamGenerator::new(64, 5, 0.5);
        for _ in 0..5 {
            let q = gen.next_arrival().series.values;
            for window in [None, Some((50u64, 300u64))] {
                let a = tp.query_window(&q, 2, window, true).unwrap();
                let b = btp.query_window(&q, 2, window, true).unwrap();
                let da: Vec<_> = a.neighbors.iter().map(|n| n.squared_distance).collect();
                let db: Vec<_> = b.neighbors.iter().map(|n| n.squared_distance).collect();
                for (x, y) in da.iter().zip(db.iter()) {
                    assert!((x - y).abs() < 1e-6, "TP and BTP must agree");
                }
            }
        }
        assert!(btp.num_partitions() < tp.num_partitions());
    }

    #[test]
    fn pp_over_clsm_matches_brute_force() {
        let dir = ScratchDir::new("pp-clsm").unwrap();
        let batches = stream_batches(6, 50, 6);
        let reference = all_series(&batches);
        let clsm_config = coconut_clsm::ClsmConfig::new(sax())
            .materialized(true)
            .with_buffer_capacity(100);
        let clsm = ClsmTree::new(clsm_config, &dir.file("clsm"), IoStats::shared()).unwrap();
        let mut pp = PpStream::over_clsm(clsm);
        for batch in &batches {
            pp.ingest_batch(batch).unwrap();
        }
        assert_eq!(pp.len(), 300);
        let mut gen = SeismicStreamGenerator::new(64, 7, 0.5);
        let query = gen.next_arrival().series.values;
        let window = (60u64, 240u64);
        let expected = brute_force_knn(
            &query,
            reference
                .iter()
                .filter(|(_, _, ts)| *ts >= window.0 && *ts <= window.1)
                .map(|(id, v, _)| (*id, v.as_slice())),
            2,
        );
        let result = pp.query_window(&query, 2, Some(window), true).unwrap();
        for (g, e) in result.neighbors.iter().zip(expected.iter()) {
            assert!((g.squared_distance - e.squared_distance).abs() < 1e-6);
        }
    }

    #[test]
    fn pp_over_ads_ingests_and_queries() {
        let dir = ScratchDir::new("pp-ads").unwrap();
        let ads_config = AdsConfig::new(sax())
            .materialized(true)
            .with_leaf_capacity(32);
        let ads = AdsTree::new(ads_config, dir.path(), IoStats::shared()).unwrap();
        let mut pp = PpStream::over_ads(ads);
        let batches = stream_batches(4, 30, 8);
        for batch in &batches {
            pp.ingest_batch(batch).unwrap();
        }
        assert_eq!(pp.len(), 120);
        let q = batches[1][5].series.values.clone();
        let result = pp.query_window(&q, 1, None, true).unwrap();
        assert_eq!(result.neighbors[0].id, batches[1][5].series.id);
    }

    #[test]
    fn small_window_skips_more_partitions_than_large_window() {
        let dir = ScratchDir::new("tp-window-skip").unwrap();
        let config = PartitionedConfig::new(sax()).with_buffer_capacity(40);
        let mut tp =
            PartitionedStream::temporal_partitioning(config, dir.path(), IoStats::shared())
                .unwrap();
        for batch in stream_batches(15, 40, 9) {
            tp.ingest_batch(&batch).unwrap();
        }
        let mut gen = SeismicStreamGenerator::new(64, 11, 0.5);
        let q = gen.next_arrival().series.values;
        let small = tp.query_window(&q, 1, Some((560, 599)), true).unwrap();
        let large = tp.query_window(&q, 1, Some((0, 599)), true).unwrap();
        assert!(small.partitions_accessed < large.partitions_accessed);
        assert_eq!(large.partitions_accessed, large.partitions_total);
    }
}
