use coconut_ads::{AdsConfig, AdsTree};
use coconut_sax::SaxConfig;
use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
use coconut_series::Dataset;
use coconut_storage::iostats::IoStats;
use coconut_storage::ScratchDir;
use std::sync::Arc;

#[test]
fn dbg_io_pattern() {
    let dir = ScratchDir::new("ads-dbg").unwrap();
    let sax = SaxConfig::new(64, 8, 8);
    let mut gen = RandomWalkGenerator::new(64, 5);
    let series = gen.generate(1500);
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let stats = IoStats::shared();
    let config = AdsConfig::new(sax)
        .materialized(true)
        .with_leaf_capacity(32)
        .with_buffer_capacity(256);
    let tree = AdsTree::build(&dataset, config, dir.path(), Arc::clone(&stats)).unwrap();
    let io = tree.build_stats().io;
    eprintln!(
        "io = {:?} random_frac={} leaves={} splits={} flushes={}",
        io,
        io.random_fraction(),
        tree.num_leaves(),
        tree.splits(),
        tree.build_stats().flushes
    );
}
