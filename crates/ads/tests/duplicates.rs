//! Degenerate-input regression: an all-duplicates dataset (every series
//! identical) must build and query in bounded time and memory even though
//! no leaf split can ever separate the entries.

use coconut_ads::{AdsConfig, AdsTree};
use coconut_sax::SaxConfig;
use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
use coconut_series::{Dataset, Series};
use coconut_storage::{IoStats, ScratchDir};

#[test]
fn all_duplicates_build_and_query_terminate() {
    let dir = ScratchDir::new("ads-dups").unwrap();
    let mut gen = RandomWalkGenerator::new(64, 3);
    let template = gen.next_series();
    let series: Vec<Series> = (0..300u64)
        .map(|id| Series::new(id, template.values.clone()))
        .collect();
    let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
    let config = AdsConfig::new(SaxConfig::paper_default(64)).materialized(true);
    let tree = AdsTree::build(&dataset, config, dir.path(), IoStats::shared()).unwrap();
    assert_eq!(tree.len(), 300);

    let query: Vec<f32> = template.values.iter().map(|v| v + 0.25).collect();
    let (nn, _) = tree.exact_knn(&query, 5).unwrap();
    let ids: Vec<u64> = nn.iter().map(|n| n.id).collect();
    assert_eq!(ids, vec![0, 1, 2, 3, 4], "ties must order by ascending id");
}
