//! # coconut-ads
//!
//! ADS+-style baseline: an adaptive, top-down-built iSAX index.
//!
//! This crate re-implements the state-of-the-art baseline the paper compares
//! Coconut against.  The index is a tree of iSAX nodes built by *insertions*:
//! each incoming series descends from the root to the leaf whose
//! variable-cardinality iSAX word covers its summarization and is appended to
//! that leaf; when a leaf overflows it is *split* by promoting the cardinality
//! of one segment, redistributing its entries between two children.
//!
//! Leaves live on disk in a leaf file in which every leaf owns a
//! fixed-capacity region allocated when the leaf is created.  Because leaves
//! are created and filled in arrival order rather than key order, both
//! construction and querying touch the file at scattered offsets — the many
//! random I/Os the paper attributes to existing data series indexes.  An
//! in-memory insertion buffer (configurable budget) batches appends per leaf,
//! mirroring how ADS+ relies on buffering to remain practical.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_ctree::entry::{EntryLayout, SeriesEntry};
use coconut_ctree::kernels::euclidean_early_abandon;
use coconut_ctree::query::{KnnHeap, QueryContext, QueryCost};
use coconut_ctree::{IndexError, Result};
use coconut_sax::breakpoints::BreakpointTable;
use coconut_sax::mindist::{mindist_paa_isax_sq, mindist_paa_sax_sq};
use coconut_sax::{InvSaxKey, IsaxWord, SaxConfig, SortableSummarizer};
use coconut_series::dataset::Dataset;
use coconut_series::distance::Neighbor;
use coconut_series::paa::paa;
use coconut_series::{Series, Timestamp};
use coconut_storage::iostats::IoStatsSnapshot;
use coconut_storage::{PagedFile, RecordLayout, SharedIoStats};

/// Configuration of the ADS+-style index.
#[derive(Debug, Clone, Copy)]
pub struct AdsConfig {
    /// Summarization configuration.
    pub sax: SaxConfig,
    /// Whether leaf entries embed the full series values.
    pub materialized: bool,
    /// Maximum number of entries per leaf before it splits.
    pub leaf_capacity: usize,
    /// Total number of entries that may be buffered in memory across all
    /// leaves before the buffers are flushed to disk.
    pub buffer_capacity: usize,
    /// Page size used for I/O accounting.
    pub page_size: usize,
}

impl AdsConfig {
    /// A reasonable default configuration for the given summarization.
    pub fn new(sax: SaxConfig) -> Self {
        AdsConfig {
            sax,
            materialized: false,
            leaf_capacity: 128,
            buffer_capacity: 16 * 1024,
            page_size: coconut_storage::DEFAULT_PAGE_SIZE,
        }
    }

    /// Enables or disables materialization.
    pub fn materialized(mut self, yes: bool) -> Self {
        self.materialized = yes;
        self
    }

    /// Sets the in-memory insertion buffer capacity (entries).
    pub fn with_buffer_capacity(mut self, entries: usize) -> Self {
        self.buffer_capacity = entries.max(1);
        self
    }

    /// Sets the leaf capacity (entries).
    pub fn with_leaf_capacity(mut self, entries: usize) -> Self {
        self.leaf_capacity = entries.max(2);
        self
    }

    fn layout(&self) -> EntryLayout {
        if self.materialized {
            EntryLayout::materialized(self.sax.key_bits(), self.sax.series_len)
        } else {
            EntryLayout::non_materialized(self.sax.key_bits())
        }
    }
}

#[derive(Debug)]
enum Node {
    Internal {
        word: IsaxWord,
        /// Segment whose cardinality was promoted when this node split
        /// (retained for introspection / debugging output).
        #[allow(dead_code)]
        split_segment: usize,
        low: Box<Node>,
        high: Box<Node>,
    },
    Leaf {
        word: IsaxWord,
        leaf_id: usize,
    },
}

#[derive(Debug)]
struct LeafState {
    /// Entries currently on disk for this leaf.
    on_disk: u32,
    /// Entries buffered in memory, not yet written.
    buffered: Vec<SeriesEntry>,
    /// First entry slot of this leaf's disk region.
    region_start: u64,
    /// Entry slots allocated to this leaf's region.  Normally one region
    /// (`leaf_capacity`); overflowed leaves that reached maximum iSAX
    /// cardinality get relocated to geometrically larger spans.
    region_slots: u64,
}

/// Statistics collected while building an ADS+ index.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdsBuildStats {
    /// Wall-clock build time.
    pub elapsed: Duration,
    /// I/O performed during the build.
    pub io: IoStatsSnapshot,
    /// Number of leaf splits performed.
    pub splits: u64,
    /// Number of buffer flush rounds.
    pub flushes: u64,
    /// Index footprint on disk in bytes (allocated leaf regions).
    pub footprint_bytes: u64,
    /// Number of entries indexed.
    pub entries: u64,
}

/// The ADS+-style adaptive iSAX index.
pub struct AdsTree {
    config: AdsConfig,
    summarizer: SortableSummarizer,
    table: BreakpointTable,
    root: Node,
    leaves: Vec<LeafState>,
    leaf_file: Arc<PagedFile>,
    raw: Option<coconut_ctree::raw::RawSeriesSource>,
    stats: SharedIoStats,
    buffered_total: usize,
    entries: u64,
    splits: u64,
    flushes: u64,
    next_region: u64,
    build_stats: AdsBuildStats,
}

impl std::fmt::Debug for AdsTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdsTree")
            .field("entries", &self.entries)
            .field("leaves", &self.leaves.len())
            .field("materialized", &self.config.materialized)
            .finish()
    }
}

impl AdsTree {
    /// Creates an empty index whose leaf file lives in `dir`.
    pub fn new(config: AdsConfig, dir: &Path, stats: SharedIoStats) -> Result<Self> {
        let layout = config.layout();
        let leaf_path = dir.join("ads-leaves.bin");
        let _ = layout;
        let file = Arc::new(PagedFile::create_with_page_size(
            &leaf_path,
            Arc::clone(&stats),
            config.page_size,
        )?);
        let summarizer = SortableSummarizer::new(config.sax);
        let mut leaves = Vec::new();
        let root = Node::Leaf {
            word: IsaxWord::root(config.sax.segments),
            leaf_id: 0,
        };
        leaves.push(LeafState {
            on_disk: 0,
            buffered: Vec::new(),
            region_start: 0,
            region_slots: config.leaf_capacity as u64,
        });
        Ok(AdsTree {
            config,
            summarizer,
            table: BreakpointTable::new(),
            root,
            leaves,
            leaf_file: file,
            raw: None,
            stats,
            buffered_total: 0,
            entries: 0,
            splits: 0,
            flushes: 0,
            next_region: 1,
            build_stats: AdsBuildStats::default(),
        })
    }

    /// Builds an index over every series of `dataset` by top-down insertion
    /// (the construction method the paper contrasts with Coconut's sorting).
    pub fn build(
        dataset: &Dataset,
        config: AdsConfig,
        dir: &Path,
        stats: SharedIoStats,
    ) -> Result<Self> {
        if dataset.series_len() != config.sax.series_len {
            return Err(IndexError::Config(format!(
                "dataset series length {} does not match SAX config {}",
                dataset.series_len(),
                config.sax.series_len
            )));
        }
        let start = Instant::now();
        let before = stats.snapshot();
        let mut tree = AdsTree::new(config, dir, Arc::clone(&stats))?;
        for series in dataset.iter()? {
            let series = series?;
            tree.insert(&series, 0)?;
        }
        tree.flush_buffers()?;
        if !config.materialized {
            tree.attach_dataset(dataset.reopen()?)?;
        }
        tree.build_stats = AdsBuildStats {
            elapsed: start.elapsed(),
            io: stats.snapshot().since(&before),
            splits: tree.splits,
            flushes: tree.flushes,
            footprint_bytes: tree.footprint_bytes(),
            entries: tree.entries,
        };
        Ok(tree)
    }

    /// Attaches the raw dataset handle used for non-materialized
    /// refinement (ADS+ is the baseline: fetches stay on positioned reads).
    pub fn attach_dataset(&mut self, dataset: Dataset) -> Result<()> {
        self.raw = Some(coconut_ctree::raw::RawSeriesSource::new(
            dataset,
            coconut_storage::IoBackend::Pread,
        )?);
        Ok(())
    }

    /// Configuration of this index.
    pub fn config(&self) -> &AdsConfig {
        &self.config
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Returns `true` when no entry has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of leaves in the tree.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Number of leaf splits performed so far.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Build statistics (populated by [`AdsTree::build`]).
    pub fn build_stats(&self) -> AdsBuildStats {
        self.build_stats
    }

    /// On-disk footprint: every allocated leaf region, full or not — the
    /// sparse allocation the paper calls out as a storage bottleneck.
    pub fn footprint_bytes(&self) -> u64 {
        self.next_region * self.config.leaf_capacity as u64 * self.entry_size() as u64
    }

    fn entry_size(&self) -> usize {
        self.config.layout().record_size()
    }

    /// Inserts one series with the given arrival timestamp.
    pub fn insert(&mut self, series: &Series, timestamp: Timestamp) -> Result<()> {
        if series.len() != self.config.sax.series_len {
            return Err(IndexError::Config(format!(
                "inserted series length {} does not match index ({})",
                series.len(),
                self.config.sax.series_len
            )));
        }
        let entry = SeriesEntry::from_series(
            series,
            timestamp,
            &self.summarizer,
            self.config.materialized,
        );
        let sax = self
            .summarizer
            .decode(InvSaxKey::from_raw(entry.key, self.config.sax.key_bits()));
        let leaf_id = Self::descend(&self.root, &sax);
        self.leaves[leaf_id].buffered.push(entry);
        self.buffered_total += 1;
        self.entries += 1;
        if self.leaves[leaf_id].buffered.len() + self.leaves[leaf_id].on_disk as usize
            > self.config.leaf_capacity
        {
            self.split_leaf(leaf_id)?;
        }
        // Per-leaf buffering: each leaf gets an equal share of the global
        // buffer budget and is flushed to its own (scattered) disk region
        // when that share fills up.  This is what makes ADS+ construction
        // random-I/O bound once the buffer is small relative to the data.
        let per_leaf_quota = (self.config.buffer_capacity / self.leaves.len().max(1)).max(1);
        if self.leaves[leaf_id].buffered.len() >= per_leaf_quota {
            self.flush_leaf(leaf_id)?;
        }
        if self.buffered_total >= self.config.buffer_capacity {
            self.flush_buffers()?;
        }
        Ok(())
    }

    /// Inserts a batch of timestamped series.
    pub fn insert_batch(&mut self, series: &[Series], timestamp: Timestamp) -> Result<()> {
        for s in series {
            self.insert(s, timestamp)?;
        }
        Ok(())
    }

    fn descend(node: &Node, sax: &coconut_sax::SaxWord) -> usize {
        match node {
            Node::Leaf { leaf_id, .. } => *leaf_id,
            Node::Internal { low, high, .. } => {
                if Self::node_word(low).covers(sax) {
                    Self::descend(low, sax)
                } else {
                    Self::descend(high, sax)
                }
            }
        }
    }

    fn node_word(node: &Node) -> &IsaxWord {
        match node {
            Node::Leaf { word, .. } => word,
            Node::Internal { word, .. } => word,
        }
    }

    fn split_leaf(&mut self, leaf_id: usize) -> Result<()> {
        // Load every entry of the leaf (disk + buffer).
        let mut entries = self.read_leaf_disk(leaf_id)?;
        entries.append(&mut self.leaves[leaf_id].buffered);
        // The leaf's buffered entries moved into `entries` above; recompute
        // the global buffered counter from the remaining leaf buffers.
        self.buffered_total = self.leaves.iter().map(|l| l.buffered.len()).sum();

        // Find the leaf node in the tree and split its word.
        let word = self.find_leaf_word(leaf_id).clone();
        let Some(split_segment) = word.next_split_segment() else {
            // Cannot refine further; allow the leaf to overflow its capacity.
            // Every entry (disk + buffer) now lives in `entries`, so the
            // disk region is logically empty — without resetting `on_disk`
            // the stale disk copies would be re-read on the next split and
            // re-written on the next flush, doubling the leaf every round.
            self.leaves[leaf_id].on_disk = 0;
            self.leaves[leaf_id].buffered = entries;
            self.buffered_total = self.leaves.iter().map(|l| l.buffered.len()).sum();
            return Ok(());
        };
        let (low_word, high_word) = word.split(split_segment);
        let low_id = leaf_id;
        let high_id = self.leaves.len();
        // The low child reuses the old leaf's disk region (now logically
        // empty); the high child gets a freshly allocated region.
        self.leaves[low_id].on_disk = 0;
        self.leaves[low_id].buffered = Vec::new();
        self.leaves.push(LeafState {
            on_disk: 0,
            buffered: Vec::new(),
            region_start: self.next_region * self.config.leaf_capacity as u64,
            region_slots: self.config.leaf_capacity as u64,
        });
        self.next_region += 1;
        self.splits += 1;

        // Redistribute entries between the two children (in memory; they will
        // be written on the next flush, as ADS+ does with its buffers).
        for entry in entries {
            let sax = self
                .summarizer
                .decode(InvSaxKey::from_raw(entry.key, self.config.sax.key_bits()));
            let target = if low_word.covers(&sax) {
                low_id
            } else {
                high_id
            };
            self.leaves[target].buffered.push(entry);
        }
        self.buffered_total = self.leaves.iter().map(|l| l.buffered.len()).sum();

        // Replace the leaf node with an internal node.
        Self::replace_leaf(
            &mut self.root,
            leaf_id,
            Node::Internal {
                word,
                split_segment,
                low: Box::new(Node::Leaf {
                    word: low_word,
                    leaf_id: low_id,
                }),
                high: Box::new(Node::Leaf {
                    word: high_word,
                    leaf_id: high_id,
                }),
            },
        );
        // A split that leaves one child over capacity triggers further splits.
        if self.leaves[low_id].buffered.len() > self.config.leaf_capacity {
            self.split_leaf(low_id)?;
        }
        if self.leaves[high_id].buffered.len() > self.config.leaf_capacity {
            self.split_leaf(high_id)?;
        }
        Ok(())
    }

    fn find_leaf_word(&self, leaf_id: usize) -> &IsaxWord {
        fn walk(node: &Node, leaf_id: usize) -> Option<&IsaxWord> {
            match node {
                Node::Leaf { word, leaf_id: id } => (*id == leaf_id).then_some(word),
                Node::Internal { low, high, .. } => {
                    walk(low, leaf_id).or_else(|| walk(high, leaf_id))
                }
            }
        }
        walk(&self.root, leaf_id).expect("leaf id must exist in the tree")
    }

    fn replace_leaf(node: &mut Node, leaf_id: usize, replacement: Node) {
        let is_target = matches!(node, Node::Leaf { leaf_id: id, .. } if *id == leaf_id);
        if is_target {
            *node = replacement;
            return;
        }
        if let Node::Internal { low, high, .. } = node {
            let in_low = contains_leaf(low, leaf_id);
            if in_low {
                Self::replace_leaf(low, leaf_id, replacement);
            } else {
                Self::replace_leaf(high, leaf_id, replacement);
            }
        }

        fn contains_leaf(node: &Node, leaf_id: usize) -> bool {
            match node {
                Node::Leaf { leaf_id: id, .. } => *id == leaf_id,
                Node::Internal { low, high, .. } => {
                    contains_leaf(low, leaf_id) || contains_leaf(high, leaf_id)
                }
            }
        }
    }

    /// Flushes the in-memory buffer of a single leaf to its disk region.
    fn flush_leaf(&mut self, leaf_id: usize) -> Result<()> {
        let entry_size = self.entry_size();
        let layout = self.config.layout();
        if self.leaves[leaf_id].buffered.is_empty() {
            return Ok(());
        }
        let total =
            self.leaves[leaf_id].on_disk as u64 + self.leaves[leaf_id].buffered.len() as u64;
        if total > self.leaves[leaf_id].region_slots {
            // The leaf overflowed its allocated span (it reached maximum
            // iSAX cardinality and can no longer split).  Relocate it to a
            // fresh span with geometric slack — writing past the span end
            // would corrupt the neighbouring leaf's region, and relocating
            // on every flush would make N flushes cost O(N^2) writes.
            let mut all = self.read_leaf_disk(leaf_id)?;
            let regions = (total * 2).div_ceil(self.config.leaf_capacity as u64);
            let leaf = &mut self.leaves[leaf_id];
            all.append(&mut leaf.buffered);
            leaf.region_start = self.next_region * self.config.leaf_capacity as u64;
            leaf.region_slots = regions * self.config.leaf_capacity as u64;
            leaf.on_disk = 0;
            leaf.buffered = all;
            self.next_region += regions;
        }
        let leaf = &mut self.leaves[leaf_id];
        let offset = (leaf.region_start + leaf.on_disk as u64) * entry_size as u64;
        let drained = leaf.buffered.len();
        let mut buf = vec![0u8; entry_size * drained];
        for (i, entry) in leaf.buffered.drain(..).enumerate() {
            layout.encode(&entry, &mut buf[i * entry_size..(i + 1) * entry_size]);
            leaf.on_disk += 1;
        }
        self.leaf_file.write_at(offset, &buf)?;
        self.buffered_total = self.buffered_total.saturating_sub(drained);
        self.flushes += 1;
        Ok(())
    }

    /// Flushes every in-memory leaf buffer to its disk region (random I/O:
    /// regions are scattered across the leaf file in creation order).
    pub fn flush_buffers(&mut self) -> Result<()> {
        for leaf_id in 0..self.leaves.len() {
            self.flush_leaf(leaf_id)?;
        }
        self.leaf_file.sync()?;
        self.buffered_total = 0;
        Ok(())
    }

    fn read_leaf_disk(&self, leaf_id: usize) -> Result<Vec<SeriesEntry>> {
        let leaf = &self.leaves[leaf_id];
        if leaf.on_disk == 0 {
            return Ok(Vec::new());
        }
        let entry_size = self.entry_size();
        let layout = self.config.layout();
        let start = leaf.region_start * entry_size as u64;
        let buf = self
            .leaf_file
            .read_at(start, entry_size * leaf.on_disk as usize)?;
        Ok(buf
            .chunks_exact(entry_size)
            .map(|c| layout.decode(c))
            .collect())
    }

    fn leaf_entries(&self, leaf_id: usize) -> Result<Vec<SeriesEntry>> {
        let mut entries = self.read_leaf_disk(leaf_id)?;
        entries.extend(self.leaves[leaf_id].buffered.iter().cloned());
        Ok(entries)
    }

    fn query_context(&self) -> QueryContext<'_> {
        match &self.raw {
            Some(raw) => QueryContext::non_materialized(raw, Arc::clone(&self.stats)),
            None => QueryContext::materialized(),
        }
    }

    fn refine_leaf(
        &self,
        leaf_id: usize,
        query: &[f32],
        query_paa: &[f64],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<()> {
        ctx.cost.blocks_read += 1;
        let breakpoints = self.table.for_bits(self.config.sax.bits_per_segment);
        for entry in self.leaf_entries(leaf_id)? {
            if let Some((start, end)) = window {
                if entry.timestamp < start || entry.timestamp > end {
                    continue;
                }
            }
            ctx.cost.entries_examined += 1;
            let sax = self
                .summarizer
                .decode(InvSaxKey::from_raw(entry.key, self.config.sax.key_bits()));
            let lb = mindist_paa_sax_sq(query_paa, &sax, &self.config.sax, breakpoints);
            if lb > heap.bound() {
                continue;
            }
            ctx.cost.entries_refined += 1;
            if entry.is_materialized() {
                if let Some(d) = euclidean_early_abandon(query, &entry.values, heap.bound()) {
                    heap.offer_at(entry.id, entry.timestamp, d);
                }
            } else {
                let values = ctx.fetch(entry.id)?;
                if let Some(d) = euclidean_early_abandon(query, &values, heap.bound()) {
                    heap.offer_at(entry.id, entry.timestamp, d);
                }
            }
        }
        Ok(())
    }

    /// Approximate kNN: descends to the single leaf covering the query and
    /// refines only its entries.
    pub fn approximate_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        self.approximate_knn_window(query, k, None)
    }

    /// Approximate kNN restricted to a timestamp window.
    pub fn approximate_knn_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let query_paa = paa(query, self.config.sax.segments);
        let sax = self.summarizer.sax(query);
        let leaf_id = Self::descend(&self.root, &sax);
        let mut heap = KnnHeap::new(k);
        let mut ctx = self.query_context();
        self.refine_leaf(leaf_id, query, &query_paa, &mut heap, &mut ctx, window)?;
        let cost = ctx.cost;
        Ok((heap.into_sorted(), cost))
    }

    /// Exact kNN: best-first traversal of the node tree ordered by iSAX
    /// lower bound, refining leaves until the bound exceeds the best answer.
    pub fn exact_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        self.exact_knn_window(query, k, None)
    }

    /// Exact kNN restricted to a timestamp window.
    pub fn exact_knn_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let query_paa = paa(query, self.config.sax.segments);
        let mut heap = KnnHeap::new(k);
        let mut ctx = self.query_context();
        // Collect (lower bound, leaf) pairs over the whole tree.
        let mut leaves: Vec<(f64, usize)> = Vec::with_capacity(self.leaves.len());
        self.collect_leaf_bounds(&self.root, &query_paa, &mut leaves);
        leaves.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for (lb, leaf_id) in leaves {
            if lb > heap.bound() {
                ctx.cost.blocks_skipped += 1;
                continue;
            }
            self.refine_leaf(leaf_id, query, &query_paa, &mut heap, &mut ctx, window)?;
        }
        let cost = ctx.cost;
        Ok((heap.into_sorted(), cost))
    }

    fn collect_leaf_bounds(&self, node: &Node, query_paa: &[f64], out: &mut Vec<(f64, usize)>) {
        match node {
            Node::Leaf { word, leaf_id } => {
                let lb = mindist_paa_isax_sq(query_paa, word, &self.config.sax, &self.table);
                out.push((lb, *leaf_id));
            }
            Node::Internal { low, high, .. } => {
                self.collect_leaf_bounds(low, query_paa, out);
                self.collect_leaf_bounds(high, query_paa, out);
            }
        }
    }

    /// Per-leaf occupancy (entries on disk + buffered), for the demo's
    /// visualization of how sparsely the index is populated.
    pub fn leaf_occupancy(&self) -> HashMap<usize, usize> {
        self.leaves
            .iter()
            .enumerate()
            .map(|(i, l)| (i, l.on_disk as usize + l.buffered.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::distance::brute_force_knn;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::iostats::IoStats;
    use coconut_storage::ScratchDir;

    fn build_ads(
        n: usize,
        materialized: bool,
        buffer: usize,
        seed: u64,
    ) -> (ScratchDir, Vec<Series>, AdsTree, SharedIoStats) {
        let dir = ScratchDir::new("ads").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let stats = IoStats::shared();
        let config = AdsConfig::new(sax)
            .materialized(materialized)
            .with_leaf_capacity(32)
            .with_buffer_capacity(buffer);
        let tree = AdsTree::build(&dataset, config, dir.path(), Arc::clone(&stats)).unwrap();
        (dir, series, tree, stats)
    }

    #[test]
    fn build_inserts_every_series_and_splits() {
        let (_dir, series, tree, _) = build_ads(500, true, 1 << 14, 1);
        assert_eq!(tree.len(), series.len() as u64);
        assert!(tree.num_leaves() > 4, "expected splits to create leaves");
        assert!(tree.splits() > 0);
        assert!(tree.footprint_bytes() > 0);
    }

    #[test]
    fn exact_knn_matches_brute_force_materialized() {
        let (_dir, series, tree, _) = build_ads(400, true, 1 << 14, 2);
        let mut gen = RandomWalkGenerator::new(64, 91);
        for _ in 0..10 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                5,
            );
            let (got, _) = tree.exact_knn(&q.values, 5).unwrap();
            assert_eq!(got.len(), 5);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g.squared_distance - e.squared_distance).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn exact_knn_matches_brute_force_non_materialized() {
        let (_dir, series, tree, _) = build_ads(300, false, 1 << 14, 3);
        let mut gen = RandomWalkGenerator::new(64, 17);
        for _ in 0..5 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                1,
            );
            let (got, cost) = tree.exact_knn(&q.values, 1).unwrap();
            assert_eq!(got[0].id, expected[0].id);
            assert!(cost.raw_fetches < 300);
        }
    }

    #[test]
    fn approximate_probe_touches_single_leaf() {
        let (_dir, series, tree, _) = build_ads(600, true, 1 << 14, 4);
        let target = &series[250];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.001).collect();
        let (got, cost) = tree.approximate_knn(&query, 1).unwrap();
        assert_eq!(cost.blocks_read, 1);
        // The approximate answer is usually the target itself; it must at
        // least be a close match.
        assert!(!got.is_empty());
        assert!(got[0].squared_distance < 5.0);
    }

    #[test]
    fn construction_issues_more_random_io_than_ctree_shape() {
        // The defining property of the baseline: a small insertion buffer
        // leads to a large fraction of random I/O during construction.
        let (_dir, _series, tree, _) = build_ads(1500, true, 256, 5);
        let io = tree.build_stats().io;
        assert!(io.total_writes() > 0);
        assert!(
            io.random_fraction() > 0.3,
            "ADS+ construction should be random-I/O heavy, got {}",
            io.random_fraction()
        );
    }

    #[test]
    fn larger_buffer_reduces_flushes() {
        let (_d1, _s1, small, _) = build_ads(800, true, 128, 6);
        let (_d2, _s2, large, _) = build_ads(800, true, 1 << 14, 6);
        assert!(small.build_stats().flushes > large.build_stats().flushes);
    }

    #[test]
    fn window_filtered_queries_respect_window() {
        let dir = ScratchDir::new("ads-window").unwrap();
        let sax = SaxConfig::new(32, 4, 8);
        let mut gen = RandomWalkGenerator::new(32, 7);
        let series = gen.generate(100);
        let stats = IoStats::shared();
        let config = AdsConfig::new(sax)
            .materialized(true)
            .with_leaf_capacity(16);
        let mut tree = AdsTree::new(config, dir.path(), stats).unwrap();
        for (i, s) in series.iter().enumerate() {
            tree.insert(s, (i as u64) * 10).unwrap();
        }
        tree.flush_buffers().unwrap();
        let q = gen.next_series();
        let (got, _) = tree
            .exact_knn_window(&q.values, 50, Some((200, 500)))
            .unwrap();
        assert!(!got.is_empty());
        for n in &got {
            assert!(n.id * 10 >= 200 && n.id * 10 <= 500);
        }
    }

    #[test]
    fn empty_tree_returns_no_neighbours() {
        let dir = ScratchDir::new("ads-empty").unwrap();
        let config = AdsConfig::new(SaxConfig::new(32, 4, 8)).materialized(true);
        let tree = AdsTree::new(config, dir.path(), IoStats::shared()).unwrap();
        let (got, _) = tree.exact_knn(&[0.0; 32], 3).unwrap();
        assert!(got.is_empty());
        let (got, _) = tree.approximate_knn(&[0.0; 32], 3).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn mismatched_series_length_rejected() {
        let dir = ScratchDir::new("ads-mismatch").unwrap();
        let config = AdsConfig::new(SaxConfig::new(32, 4, 8)).materialized(true);
        let mut tree = AdsTree::new(config, dir.path(), IoStats::shared()).unwrap();
        let bad = Series::new(0, vec![0.0; 16]);
        assert!(matches!(tree.insert(&bad, 0), Err(IndexError::Config(_))));
    }
}
