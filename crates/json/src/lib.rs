//! # coconut-json
//!
//! A small dependency-free JSON layer.  The algorithms-server protocol
//! ([Section 4 of the paper]: the GUI client exchanges JSON with the back
//! end), the recommender output and the benchmark reports all serialize
//! through this crate; the build environment has no crates.io access, so
//! serde is not available.
//!
//! The surface is deliberately tiny: a [`Json`] value enum, a recursive
//! descent [`Json::parse`], compact and pretty writers, and the
//! [`ToJson`] / [`FromJson`] conversion traits plus helpers for mapping
//! struct-like objects.
//!
//! Object members preserve insertion order so emitted documents are stable
//! across runs (important for byte-comparing benchmark reports).

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values are written without
    /// a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error produced when parsing or converting JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

/// Convenience alias for JSON results.
pub type Result<T> = std::result::Result<T, JsonError>;

impl Json {
    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at offset {}",
                p.pos
            )));
        }
        Ok(value)
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    write_escaped(out, &members[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    members[i].1.write(out, indent, d);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * step {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like serde_json's lossy mode.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(JsonError::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: require a \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(JsonError::new(
                                            "high surrogate not followed by a low surrogate",
                                        ));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| JsonError::new("invalid \\u escape"))?);
                        }
                        _ => return Err(JsonError::new("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| JsonError::new("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| JsonError::new("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| JsonError::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("invalid number at offset {start}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Conversion of a value into its JSON representation.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Reconstruction of a value from JSON.
pub trait FromJson: Sized {
    /// Parses the value from JSON.
    fn from_json(json: &Json) -> Result<Self>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<bool> {
        json.as_bool()
            .ok_or_else(|| JsonError::new("expected a boolean"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<String> {
        json.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected a string"))
    }
}

/// Largest integer exactly representable in an `f64` (2^53); integers are
/// carried through JSON as `f64`, so anything beyond this cannot round-trip
/// and is rejected rather than silently rounded.
pub const MAX_SAFE_INTEGER: f64 = 9_007_199_254_740_992.0;

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let n = *self as f64;
                debug_assert!(
                    n.abs() <= MAX_SAFE_INTEGER,
                    "integer exceeds exact f64 range"
                );
                Json::Num(n)
            }
        }
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<$t> {
                let n = json
                    .as_f64()
                    .ok_or_else(|| JsonError::new("expected a number"))?;
                if !n.is_finite() || n.fract() != 0.0 {
                    return Err(JsonError::new(format!("expected an integer, got {n}")));
                }
                if n.abs() > MAX_SAFE_INTEGER {
                    return Err(JsonError::new(format!(
                        "integer {n} exceeds the exactly representable range"
                    )));
                }
                let min = <$t>::MIN as f64;
                let max = <$t>::MAX as f64;
                if n < min || n > max {
                    return Err(JsonError::new(format!(
                        "{n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_json_float {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<$t> {
                json.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| JsonError::new("expected a number"))
            }
        }
    )*};
}

impl_json_float!(f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Vec<T>> {
        json.as_arr()
            .ok_or_else(|| JsonError::new("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

/// Fetches a required member from a JSON object and converts it.
pub fn member<T: FromJson>(json: &Json, key: &str) -> Result<T> {
    let value = json
        .get(key)
        .ok_or_else(|| JsonError::new(format!("missing field '{key}'")))?;
    T::from_json(value).map_err(|e| JsonError::new(format!("field '{key}': {e}")))
}

/// Fetches an optional member from a JSON object, returning `default` when
/// the member is absent or null.
pub fn member_or<T: FromJson>(json: &Json, key: &str, default: T) -> Result<T> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(value) => {
            T::from_json(value).map_err(|e| JsonError::new(format!("field '{key}': {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for doc in ["null", "true", "false", "42", "-3.5", "\"hi\"", "1e3"] {
            let v = Json::parse(doc).unwrap();
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn integral_numbers_have_no_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-1.0).to_string(), "-1");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn object_roundtrip_preserves_order() {
        let doc = r#"{"b":1,"a":[true,null,{"x":"y"}],"c":{"nested":-2.25}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.to_string(), doc);
        assert_eq!(v.get("b"), Some(&Json::Num(1.0)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t unicode \u{1F600} café";
        let encoded = Json::Str(original.to_string()).to_string();
        let back = Json::parse(&encoded).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_escape_parses() {
        // Plain BMP escape plus a surrogate pair.
        assert_eq!(
            Json::parse("\"\\u00e9 \\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{e9} \u{1F600}")
        );
    }

    #[test]
    fn malformed_documents_error() {
        for doc in [
            "",
            "{",
            "[1,",
            "\"open",
            "tru",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
        ] {
            assert!(Json::parse(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Json::obj(vec![
            ("name", Json::Str("coconut".into())),
            ("sizes", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"name\""));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn member_helpers() {
        let v = Json::parse(r#"{"k":5,"s":"x"}"#).unwrap();
        assert_eq!(member::<u64>(&v, "k").unwrap(), 5);
        assert_eq!(member_or::<u64>(&v, "absent", 9).unwrap(), 9);
        assert!(member::<u64>(&v, "s").is_err());
        assert!(member::<u64>(&v, "absent").is_err());
    }

    #[test]
    fn integer_conversion_rejects_lossy_values() {
        // Negative, fractional and beyond-2^53 inputs must error rather than
        // silently saturate or round.
        assert!(u64::from_json(&Json::Num(-1.0)).is_err());
        assert!(usize::from_json(&Json::Num(1.5)).is_err());
        assert!(u64::from_json(&Json::Num(1e19)).is_err());
        assert!(u8::from_json(&Json::Num(256.0)).is_err());
        assert!(i8::from_json(&Json::Num(-129.0)).is_err());
        assert_eq!(u64::from_json(&Json::Num(42.0)).unwrap(), 42);
        assert_eq!(i64::from_json(&Json::Num(-42.0)).unwrap(), -42);
        // Floats stay permissive.
        assert_eq!(f64::from_json(&Json::Num(1.5)).unwrap(), 1.5);
    }

    #[test]
    fn malformed_surrogate_pairs_are_rejected() {
        // High surrogate followed by a non-surrogate escape.
        assert!(Json::parse("\"\\ud801\\u0061\"").is_err());
        // Lone high surrogate (no second escape at all).
        assert!(Json::parse("\"\\ud801x\"").is_err());
        // Lone low surrogate.
        assert!(Json::parse("\"\\udc01\"").is_err());
    }

    #[test]
    fn vec_conversions() {
        let v = vec![1.5f64, 2.0, -3.0];
        let j = v.to_json();
        assert_eq!(Vec::<f64>::from_json(&j).unwrap(), v);
    }
}
