//! # coconut-clsm
//!
//! CoconutLSM (CLSM): the write-optimized, log-structured data series index
//! of the Coconut infrastructure.
//!
//! CLSM ingests series into an in-memory buffer; when the buffer fills it is
//! sorted by the interleaved SAX key and written out sequentially as a run
//! (a [`SortedSeriesFile`]).  Runs are organized into levels with a
//! configurable **growth factor** `T`: when a level accumulates `T` runs they
//! are sort-merged (sequential I/O) into a single run at the next level.
//! Smaller growth factors merge more aggressively (fewer runs to probe at
//! query time, more write amplification); larger factors favour ingestion —
//! exactly the read/write knob Section 2 of the paper describes.
//!
//! Queries probe the buffer plus every run, newest first, sharing one
//! best-so-far bound so that older, larger runs are pruned effectively.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use coconut_ctree::entry::{EntryLayout, SeriesEntry};
use coconut_ctree::query::{KnnHeap, QueryContext, QueryCost};
use coconut_ctree::sorted_file::SortedSeriesFile;
use coconut_ctree::{IndexError, Result};
use coconut_sax::{SaxConfig, SortableSummarizer};
use coconut_series::dataset::Dataset;
use coconut_series::distance::{euclidean_early_abandon, Neighbor};
use coconut_series::{Series, Timestamp};
use coconut_storage::iostats::IoStatsSnapshot;
use coconut_storage::SharedIoStats;

/// Configuration of a CoconutLSM index.
#[derive(Debug, Clone, Copy)]
pub struct ClsmConfig {
    /// Summarization configuration.
    pub sax: SaxConfig,
    /// Whether runs embed the full series values.
    pub materialized: bool,
    /// Number of entries buffered in memory before a flush.
    pub buffer_capacity: usize,
    /// Growth factor `T`: a level is merged into the next one once it holds
    /// `T` runs.
    pub growth_factor: usize,
    /// Entries per block inside each run (query granularity).
    pub entries_per_block: usize,
    /// Page size used for I/O accounting.
    pub page_size: usize,
    /// Worker threads for batch summarization and flush sorting (`1` =
    /// sequential, `0` = one per available core).  Runs are byte-identical
    /// at every setting.
    pub parallelism: usize,
}

impl ClsmConfig {
    /// A reasonable default configuration for the given summarization.
    pub fn new(sax: SaxConfig) -> Self {
        ClsmConfig {
            sax,
            materialized: false,
            buffer_capacity: 4096,
            growth_factor: 4,
            entries_per_block: 64,
            page_size: coconut_storage::DEFAULT_PAGE_SIZE,
            parallelism: 1,
        }
    }

    /// Enables or disables materialization.
    pub fn materialized(mut self, yes: bool) -> Self {
        self.materialized = yes;
        self
    }

    /// Sets the buffer capacity in entries.
    pub fn with_buffer_capacity(mut self, entries: usize) -> Self {
        self.buffer_capacity = entries.max(1);
        self
    }

    /// Sets the growth factor.
    pub fn with_growth_factor(mut self, t: usize) -> Self {
        assert!(t >= 2, "growth factor must be at least 2");
        self.growth_factor = t;
        self
    }

    /// Sets the ingest parallelism (`1` = sequential, `0` = all cores).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    fn layout(&self) -> EntryLayout {
        if self.materialized {
            EntryLayout::materialized(self.sax.key_bits(), self.sax.series_len)
        } else {
            EntryLayout::non_materialized(self.sax.key_bits())
        }
    }
}

/// Cumulative ingestion statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClsmStats {
    /// Number of buffer flushes (level-0 run creations).
    pub flushes: u64,
    /// Number of merge compactions.
    pub merges: u64,
    /// Total entries written to disk across flushes and merges
    /// (write amplification numerator).
    pub entries_written: u64,
    /// Total entries ingested.
    pub entries_ingested: u64,
}

impl ClsmStats {
    /// Write amplification: entries written to disk per ingested entry.
    pub fn write_amplification(&self) -> f64 {
        if self.entries_ingested == 0 {
            0.0
        } else {
            self.entries_written as f64 / self.entries_ingested as f64
        }
    }
}

/// The CoconutLSM index.
pub struct ClsmTree {
    config: ClsmConfig,
    summarizer: SortableSummarizer,
    buffer: Vec<SeriesEntry>,
    /// `levels[i]` holds the runs of level `i`, oldest first.
    levels: Vec<Vec<SortedSeriesFile>>,
    dir: PathBuf,
    stats: SharedIoStats,
    dataset: Option<Dataset>,
    next_run_id: u64,
    lsm_stats: ClsmStats,
}

impl std::fmt::Debug for ClsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClsmTree")
            .field("entries", &self.len())
            .field("levels", &self.levels.len())
            .field("runs", &self.num_runs())
            .finish()
    }
}

impl ClsmTree {
    /// Creates an empty CLSM whose runs are stored in `dir`.
    pub fn new(config: ClsmConfig, dir: &Path, stats: SharedIoStats) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(coconut_storage::StorageError::from)?;
        Ok(ClsmTree {
            config,
            summarizer: SortableSummarizer::new(config.sax),
            buffer: Vec::with_capacity(config.buffer_capacity.min(1 << 20)),
            levels: Vec::new(),
            dir: dir.to_path_buf(),
            stats,
            dataset: None,
            next_run_id: 0,
            lsm_stats: ClsmStats::default(),
        })
    }

    /// Attaches the raw dataset handle used for non-materialized refinement.
    pub fn attach_dataset(&mut self, dataset: Dataset) {
        self.dataset = Some(dataset);
    }

    /// Builds a CLSM by ingesting every series of `dataset` in order.
    pub fn build(
        dataset: &Dataset,
        config: ClsmConfig,
        dir: &Path,
        stats: SharedIoStats,
    ) -> Result<Self> {
        if dataset.series_len() != config.sax.series_len {
            return Err(IndexError::Config(format!(
                "dataset series length {} does not match SAX config {}",
                dataset.series_len(),
                config.sax.series_len
            )));
        }
        let mut tree = ClsmTree::new(config, dir, stats)?;
        // Ingest in buffer-capacity batches so summarization runs on the
        // worker pool while the scan stays streaming.  The staging batch is
        // bounded by the same buffer_capacity that sizes the in-memory
        // buffer, so it transiently at most doubles the configured buffer.
        let batch_size = config.buffer_capacity.clamp(256, 1 << 16);
        let mut batch: Vec<Series> = Vec::with_capacity(batch_size);
        for series in dataset.iter()? {
            batch.push(series?);
            if batch.len() >= batch_size {
                tree.insert_batch(&batch, 0)?;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            tree.insert_batch(&batch, 0)?;
        }
        tree.flush()?;
        if !config.materialized {
            tree.dataset = Some(dataset.reopen()?);
        }
        Ok(tree)
    }

    /// Configuration of this index.
    pub fn config(&self) -> &ClsmConfig {
        &self.config
    }

    /// Number of indexed entries (including the in-memory buffer).
    pub fn len(&self) -> u64 {
        self.buffer.len() as u64
            + self
                .levels
                .iter()
                .flat_map(|l| l.iter())
                .map(|r| r.len())
                .sum::<u64>()
    }

    /// Returns `true` when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of on-disk runs across all levels.
    pub fn num_runs(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Number of levels currently in use.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// On-disk footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.levels
            .iter()
            .flat_map(|l| l.iter())
            .map(|r| r.byte_size())
            .sum()
    }

    /// Cumulative ingestion statistics.
    pub fn stats(&self) -> ClsmStats {
        self.lsm_stats
    }

    /// I/O snapshot of the shared statistics handle.
    pub fn io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Inserts one series with an arrival timestamp.
    pub fn insert(&mut self, series: &Series, timestamp: Timestamp) -> Result<()> {
        if series.len() != self.config.sax.series_len {
            return Err(IndexError::Config(format!(
                "inserted series length {} does not match index ({})",
                series.len(),
                self.config.sax.series_len
            )));
        }
        self.buffer.push(SeriesEntry::from_series(
            series,
            timestamp,
            &self.summarizer,
            self.config.materialized,
        ));
        self.lsm_stats.entries_ingested += 1;
        if self.buffer.len() >= self.config.buffer_capacity {
            self.flush()?;
        }
        Ok(())
    }

    /// Inserts a batch of series sharing one timestamp.
    ///
    /// The whole batch is summarized with the configured worker pool before
    /// any entry enters the buffer, so bulk ingestion scales with cores
    /// while remaining equivalent to repeated [`ClsmTree::insert`] calls.
    pub fn insert_batch(&mut self, series: &[Series], timestamp: Timestamp) -> Result<()> {
        for s in series {
            if s.len() != self.config.sax.series_len {
                return Err(IndexError::Config(format!(
                    "inserted series length {} does not match index ({})",
                    s.len(),
                    self.config.sax.series_len
                )));
            }
        }
        let entries = SeriesEntry::from_series_batch(
            series,
            timestamp,
            &self.summarizer,
            self.config.materialized,
            self.config.parallelism,
        );
        for entry in entries {
            self.buffer.push(entry);
            self.lsm_stats.entries_ingested += 1;
            if self.buffer.len() >= self.config.buffer_capacity {
                self.flush()?;
            }
        }
        Ok(())
    }

    /// Flushes the in-memory buffer into a new level-0 run and compacts
    /// levels that reached the growth factor.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let entries = std::mem::take(&mut self.buffer);
        let count = entries.len() as u64;
        let run = self.write_sorted_run(entries, 0)?;
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(run);
        self.lsm_stats.flushes += 1;
        self.lsm_stats.entries_written += count;
        self.compact()?;
        Ok(())
    }

    fn write_sorted_run(
        &mut self,
        entries: Vec<SeriesEntry>,
        level: usize,
    ) -> Result<SortedSeriesFile> {
        let path = self
            .dir
            .join(format!("clsm-L{level}-{:06}.run", self.next_run_id));
        self.next_run_id += 1;
        SortedSeriesFile::build_from_entries_parallel(
            path,
            self.config.layout(),
            self.config.sax,
            entries,
            self.config.entries_per_block,
            Arc::clone(&self.stats),
            self.config.page_size,
            self.config.parallelism,
        )
    }

    fn compact(&mut self) -> Result<()> {
        let t = self.config.growth_factor;
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() >= t {
                let runs = std::mem::take(&mut self.levels[level]);
                let merged = self.merge_runs(&runs, level + 1)?;
                for run in runs {
                    let _ = run.delete();
                }
                if self.levels.len() <= level + 1 {
                    self.levels.push(Vec::new());
                }
                let count = merged.len();
                self.levels[level + 1].push(merged);
                self.lsm_stats.merges += 1;
                self.lsm_stats.entries_written += count;
            }
            level += 1;
        }
        Ok(())
    }

    fn merge_runs(
        &mut self,
        runs: &[SortedSeriesFile],
        target_level: usize,
    ) -> Result<SortedSeriesFile> {
        let layout = self.config.layout();
        let dyn_runs: Vec<_> = runs.iter().map(|r| r.run().clone()).collect();
        let merge = coconut_storage::DynKWayMerge::new(layout, &dyn_runs, 256)?;
        let path = self
            .dir
            .join(format!("clsm-L{target_level}-{:06}.run", self.next_run_id));
        self.next_run_id += 1;
        SortedSeriesFile::build_from_sorted(
            path,
            layout,
            self.config.sax,
            merge.map(|r| r.map_err(IndexError::from)),
            self.config.entries_per_block,
            Arc::clone(&self.stats),
            self.config.page_size,
        )
    }

    fn query_context(&self) -> QueryContext<'_> {
        match &self.dataset {
            Some(ds) => QueryContext::non_materialized(ds, Arc::clone(&self.stats)),
            None => QueryContext::materialized(),
        }
    }

    fn search_buffer(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<()> {
        for entry in &self.buffer {
            if let Some((start, end)) = window {
                if entry.timestamp < start || entry.timestamp > end {
                    continue;
                }
            }
            ctx.cost.entries_examined += 1;
            if entry.is_materialized() {
                if let Some(d) = euclidean_early_abandon(query, &entry.values, heap.bound()) {
                    heap.offer(entry.id, d);
                }
            } else {
                let values = ctx.fetch(entry.id)?;
                if let Some(d) = euclidean_early_abandon(query, &values, heap.bound()) {
                    heap.offer(entry.id, d);
                }
            }
        }
        Ok(())
    }

    fn runs_newest_first(&self) -> Vec<&SortedSeriesFile> {
        // Level 0 holds the newest data; within a level, later runs are newer.
        let mut out = Vec::with_capacity(self.num_runs());
        for level in &self.levels {
            for run in level.iter().rev() {
                out.push(run);
            }
        }
        out
    }

    /// Approximate kNN over the buffer plus every run.
    pub fn approximate_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        self.approximate_knn_window(query, k, None)
    }

    /// Approximate kNN restricted to a timestamp window.
    pub fn approximate_knn_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let mut heap = KnnHeap::new(k);
        let mut ctx = self.query_context();
        self.search_buffer(query, &mut heap, &mut ctx, window)?;
        for run in self.runs_newest_first() {
            run.search_approximate(query, &mut heap, &mut ctx, window)?;
        }
        let cost = ctx.cost;
        Ok((heap.into_sorted(), cost))
    }

    /// Exact kNN over the buffer plus every run.
    pub fn exact_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        self.exact_knn_window(query, k, None)
    }

    /// Exact kNN restricted to a timestamp window.
    pub fn exact_knn_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let mut heap = KnnHeap::new(k);
        let mut ctx = self.query_context();
        self.search_buffer(query, &mut heap, &mut ctx, window)?;
        for run in self.runs_newest_first() {
            run.search_exact(query, &mut heap, &mut ctx, window)?;
        }
        let cost = ctx.cost;
        Ok((heap.into_sorted(), cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::distance::brute_force_knn;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::iostats::IoStats;
    use coconut_storage::ScratchDir;

    fn build_clsm(
        n: usize,
        materialized: bool,
        buffer: usize,
        growth: usize,
        seed: u64,
    ) -> (ScratchDir, Vec<Series>, ClsmTree, SharedIoStats) {
        let dir = ScratchDir::new("clsm").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let stats = IoStats::shared();
        let config = ClsmConfig::new(sax)
            .materialized(materialized)
            .with_buffer_capacity(buffer)
            .with_growth_factor(growth);
        let tree = ClsmTree::build(&dataset, config, &dir.file("lsm"), Arc::clone(&stats)).unwrap();
        (dir, series, tree, stats)
    }

    #[test]
    fn ingestion_creates_runs_and_levels() {
        let (_dir, series, tree, _) = build_clsm(1000, true, 100, 3, 1);
        assert_eq!(tree.len(), series.len() as u64);
        assert!(tree.stats().flushes >= 10);
        assert!(tree.stats().merges > 0);
        assert!(tree.num_levels() > 1);
        assert!(tree.footprint_bytes() > 0);
    }

    #[test]
    fn exact_knn_matches_brute_force_materialized() {
        let (_dir, series, tree, _) = build_clsm(600, true, 128, 4, 2);
        let mut gen = RandomWalkGenerator::new(64, 93);
        for _ in 0..8 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                5,
            );
            let (got, _) = tree.exact_knn(&q.values, 5).unwrap();
            assert_eq!(got.len(), 5);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g.squared_distance - e.squared_distance).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn exact_knn_matches_brute_force_non_materialized() {
        let (_dir, series, tree, _) = build_clsm(400, false, 100, 3, 3);
        let mut gen = RandomWalkGenerator::new(64, 19);
        for _ in 0..4 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                1,
            );
            let (got, cost) = tree.exact_knn(&q.values, 1).unwrap();
            assert_eq!(got[0].id, expected[0].id);
            assert!(cost.raw_fetches < 400);
        }
    }

    #[test]
    fn buffered_entries_are_visible_before_flush() {
        let dir = ScratchDir::new("clsm-buf").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let config = ClsmConfig::new(sax)
            .materialized(true)
            .with_buffer_capacity(1000);
        let mut tree = ClsmTree::new(config, &dir.file("lsm"), IoStats::shared()).unwrap();
        let mut gen = RandomWalkGenerator::new(64, 4);
        let series = gen.generate(50);
        tree.insert_batch(&series, 7).unwrap();
        assert_eq!(tree.num_runs(), 0, "nothing should be flushed yet");
        let target = &series[20];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.001).collect();
        let (got, _) = tree.exact_knn(&query, 1).unwrap();
        assert_eq!(got[0].id, target.id);
    }

    #[test]
    fn ingestion_io_is_mostly_sequential() {
        let (_dir, _series, tree, stats) = build_clsm(2000, true, 100, 3, 5);
        let snap = stats.snapshot();
        assert!(snap.total_writes() > 0);
        assert!(
            snap.random_fraction() < 0.2,
            "CLSM ingestion should be log-structured/sequential, got {}",
            snap.random_fraction()
        );
        let _ = tree;
    }

    #[test]
    fn smaller_growth_factor_means_fewer_runs_more_writes() {
        let (_d1, _s1, aggressive, _) = build_clsm(1500, true, 100, 2, 6);
        let (_d2, _s2, lazy, _) = build_clsm(1500, true, 100, 8, 6);
        assert!(aggressive.num_runs() <= lazy.num_runs());
        assert!(
            aggressive.stats().write_amplification() > lazy.stats().write_amplification(),
            "aggressive merging must rewrite entries more often ({} vs {})",
            aggressive.stats().write_amplification(),
            lazy.stats().write_amplification()
        );
    }

    #[test]
    fn window_queries_respect_window() {
        let dir = ScratchDir::new("clsm-window").unwrap();
        let sax = SaxConfig::new(32, 4, 8);
        let config = ClsmConfig::new(sax)
            .materialized(true)
            .with_buffer_capacity(32);
        let mut tree = ClsmTree::new(config, &dir.file("lsm"), IoStats::shared()).unwrap();
        let mut gen = RandomWalkGenerator::new(32, 7);
        for batch in 0..10u64 {
            let series = gen.generate(20);
            tree.insert_batch(&series, batch * 100).unwrap();
        }
        tree.flush().unwrap();
        let q = gen.next_series();
        let (got, _) = tree
            .exact_knn_window(&q.values, 200, Some((300, 600)))
            .unwrap();
        assert!(!got.is_empty());
        // Every returned id must belong to batches 3..=6 (ids 60..140).
        for n in &got {
            assert!(
                n.id >= 60 && n.id < 140,
                "id {} outside window batches",
                n.id
            );
        }
    }

    #[test]
    fn empty_tree_query_returns_nothing() {
        let dir = ScratchDir::new("clsm-empty").unwrap();
        let config = ClsmConfig::new(SaxConfig::new(32, 4, 8)).materialized(true);
        let tree = ClsmTree::new(config, &dir.file("lsm"), IoStats::shared()).unwrap();
        let (got, _) = tree.exact_knn(&[0.0; 32], 3).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn mismatched_series_length_rejected() {
        let dir = ScratchDir::new("clsm-mismatch").unwrap();
        let config = ClsmConfig::new(SaxConfig::new(32, 4, 8)).materialized(true);
        let mut tree = ClsmTree::new(config, &dir.file("lsm"), IoStats::shared()).unwrap();
        let bad = Series::new(0, vec![0.0; 8]);
        assert!(matches!(tree.insert(&bad, 0), Err(IndexError::Config(_))));
    }
}
