//! # coconut-clsm
//!
//! CoconutLSM (CLSM): the write-optimized, log-structured data series index
//! of the Coconut infrastructure.
//!
//! CLSM ingests series into an in-memory buffer; when the buffer fills it is
//! sorted by the interleaved SAX key and written out sequentially as a run
//! (a [`SortedSeriesFile`]).  Runs are organized into levels with a
//! configurable **growth factor** `T`: when a level accumulates `T` runs they
//! are sort-merged (sequential I/O) into a single run at the next level.
//! Smaller growth factors merge more aggressively (fewer runs to probe at
//! query time, more write amplification); larger factors favour ingestion —
//! exactly the read/write knob Section 2 of the paper describes.
//!
//! Queries probe the buffer plus every run concurrently (the
//! `query_parallelism` knob), sharing one atomic best-so-far bound so that
//! older, larger runs are pruned effectively; see `coconut_ctree::engine`
//! for the deterministic fan-out protocol.
//!
//! With `shard_count > 1` every compaction is **sharded by key range**: the
//! level merge runs as independent per-shard k-way merges producing a
//! key-partitioned set of run files, so merges of different shards run on
//! different cores and queries fan out per shard as well.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use coconut_ctree::entry::{EntryLayout, SeriesEntry};
use coconut_ctree::kernels::euclidean_early_abandon;
use coconut_ctree::planner::{self, PlannedAnswer, PlannedBatch, PlannerInputs, PlannerMode};
use coconut_ctree::query::{KnnHeap, QueryContext, QueryCost};
use coconut_ctree::raw::RawSeriesSource;
use coconut_ctree::sorted_file::SortedSeriesFile;
use coconut_ctree::{IndexError, Result};
use coconut_sax::{SaxConfig, SortableSummarizer};
use coconut_series::dataset::Dataset;
use coconut_series::distance::Neighbor;
use coconut_series::{Series, Timestamp};
use coconut_storage::iostats::IoStatsSnapshot;
use coconut_storage::{IoBackend, SharedIoStats};

/// Configuration of a CoconutLSM index.
#[derive(Debug, Clone, Copy)]
pub struct ClsmConfig {
    /// Summarization configuration.
    pub sax: SaxConfig,
    /// Whether runs embed the full series values.
    pub materialized: bool,
    /// Number of entries buffered in memory before a flush.
    pub buffer_capacity: usize,
    /// Growth factor `T`: a level is merged into the next one once it holds
    /// `T` runs.
    pub growth_factor: usize,
    /// Entries per block inside each run (query granularity).
    pub entries_per_block: usize,
    /// Page size used for I/O accounting.
    pub page_size: usize,
    /// Worker threads for batch summarization, flush sorting and per-shard
    /// compaction merges (`1` = sequential, `0` = one per available core).
    /// Runs are byte-identical at every setting.
    pub parallelism: usize,
    /// Worker threads for query fan-out over runs and shards (`1` =
    /// sequential, `0` = one per available core).  Answers and cost
    /// counters are identical at every setting; see `coconut_ctree::engine`.
    pub query_parallelism: usize,
    /// Number of key-range shards each compaction produces.  `1` keeps the
    /// classic single-run merge; larger values split every level merge into
    /// independent per-shard merges (parallel compaction) and give queries
    /// a finer fan-out.  The shard layout is derived deterministically from
    /// the input runs' block fences, so the on-disk index is identical at
    /// every `parallelism` setting.
    pub shard_count: usize,
    /// Overlap computation with I/O during compactions (default `true`):
    /// every per-shard merge reads its inputs through read-ahead workers, so
    /// the next block of each input run loads while the k-way merge drains
    /// the current one.  A pure performance knob — run files, answers and
    /// `IoStats` totals are identical at either setting.
    pub io_overlap: bool,
    /// Read backend for the run files (default `pread`; `mmap` serves run
    /// block scans and compaction range readers from read-only file
    /// mappings, dropped before any compaction deletes its inputs).  A pure
    /// performance knob — run files, answers, `QueryCost` and `IoStats`
    /// totals are identical at either setting.
    pub io_backend: IoBackend,
    /// Query planning mode (default [`PlannerMode::Fixed`]).  `Fixed` uses
    /// the knobs above verbatim; `Adaptive` lets the per-query cost-model
    /// planner pick fan-out, read-ahead gate and batch shape from observed
    /// state.  Answers, `QueryCost` and `IoStats` are identical in both
    /// modes; see `coconut_ctree::planner`.
    pub planner: PlannerMode,
    /// Minimum contiguous byte range for which compaction read-ahead
    /// engages (default `coconut_storage::PREFETCH_MIN_BYTES`; `usize::MAX`
    /// disables read-ahead).  A pure performance knob.
    pub prefetch_min_bytes: usize,
    /// On-disk compression of every run (default `off`).  Answers,
    /// `QueryCost` and the logical `IoStats` view are identical at either
    /// setting; flushes, compactions and probes just move fewer physical
    /// bytes.  See `coconut_storage::Compression`.
    pub compression: coconut_storage::Compression,
}

impl ClsmConfig {
    /// A reasonable default configuration for the given summarization.
    pub fn new(sax: SaxConfig) -> Self {
        ClsmConfig {
            sax,
            materialized: false,
            buffer_capacity: 4096,
            growth_factor: 4,
            entries_per_block: 64,
            page_size: coconut_storage::DEFAULT_PAGE_SIZE,
            parallelism: 1,
            query_parallelism: 1,
            shard_count: 1,
            io_overlap: true,
            io_backend: IoBackend::Pread,
            planner: PlannerMode::Fixed,
            prefetch_min_bytes: coconut_storage::PREFETCH_MIN_BYTES,
            compression: coconut_storage::Compression::Off,
        }
    }

    /// Enables or disables materialization.
    pub fn materialized(mut self, yes: bool) -> Self {
        self.materialized = yes;
        self
    }

    /// Sets the buffer capacity in entries.
    pub fn with_buffer_capacity(mut self, entries: usize) -> Self {
        self.buffer_capacity = entries.max(1);
        self
    }

    /// Sets the growth factor.
    pub fn with_growth_factor(mut self, t: usize) -> Self {
        assert!(t >= 2, "growth factor must be at least 2");
        self.growth_factor = t;
        self
    }

    /// Sets the ingest parallelism (`1` = sequential, `0` = all cores).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Sets the query fan-out parallelism (`1` = sequential, `0` = all
    /// cores).  A pure performance knob.
    pub fn with_query_parallelism(mut self, workers: usize) -> Self {
        self.query_parallelism = workers;
        self
    }

    /// Sets the number of key-range shards per compaction (`>= 1`).
    pub fn with_shard_count(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        self.shard_count = shards;
        self
    }

    /// Enables or disables overlapped compaction I/O (default on).  A pure
    /// performance knob; see [`ClsmConfig::io_overlap`].
    pub fn with_io_overlap(mut self, overlap: bool) -> Self {
        self.io_overlap = overlap;
        self
    }

    /// Selects the read backend (default `pread`).  A pure performance
    /// knob; see [`ClsmConfig::io_backend`].
    pub fn with_io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = backend;
        self
    }

    /// Selects the query planning mode (default `Fixed`).  A pure
    /// performance knob; see [`ClsmConfig::planner`].
    pub fn with_planner(mut self, mode: PlannerMode) -> Self {
        self.planner = mode;
        self
    }

    /// Sets the read-ahead engagement gate for compactions in bytes
    /// (`usize::MAX` disables read-ahead).  A pure performance knob; see
    /// [`ClsmConfig::prefetch_min_bytes`].
    pub fn with_prefetch_min_bytes(mut self, bytes: usize) -> Self {
        self.prefetch_min_bytes = bytes;
        self
    }

    /// Selects the on-disk compression (default `off`).  A logical-view
    /// no-op; see [`ClsmConfig::compression`].
    pub fn with_compression(mut self, compression: coconut_storage::Compression) -> Self {
        self.compression = compression;
        self
    }

    fn layout(&self) -> EntryLayout {
        if self.materialized {
            EntryLayout::materialized(self.sax.key_bits(), self.sax.series_len)
        } else {
            EntryLayout::non_materialized(self.sax.key_bits())
        }
    }
}

/// Cumulative ingestion statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClsmStats {
    /// Number of buffer flushes (level-0 run creations).
    pub flushes: u64,
    /// Number of merge compactions.
    pub merges: u64,
    /// Total entries written to disk across flushes and merges
    /// (write amplification numerator).
    pub entries_written: u64,
    /// Total entries ingested.
    pub entries_ingested: u64,
}

impl ClsmStats {
    /// Write amplification: entries written to disk per ingested entry.
    pub fn write_amplification(&self) -> f64 {
        if self.entries_ingested == 0 {
            0.0
        } else {
            self.entries_written as f64 / self.entries_ingested as f64
        }
    }
}

/// One logical sorted run of a CLSM level: a key-partitioned set of
/// [`SortedSeriesFile`] shards.  Shards are disjoint and ordered by key
/// range, so their concatenation is one globally sorted sequence; buffer
/// flushes produce single-shard runs, sharded compactions produce
/// `shard_count`-way runs.
pub struct RunSet {
    shards: Vec<SortedSeriesFile>,
}

impl RunSet {
    fn single(file: SortedSeriesFile) -> Self {
        RunSet { shards: vec![file] }
    }

    /// The key-ordered shards of this run.
    pub fn shards(&self) -> &[SortedSeriesFile] {
        &self.shards
    }

    /// Total entries across all shards.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Returns `true` when the run holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total logical size (records x record size) across all shards; used
    /// for budget arithmetic so thresholds are knob-invariant.
    pub fn byte_size(&self) -> u64 {
        self.shards.iter().map(|s| s.byte_size()).sum()
    }

    /// Actual bytes on disk across all shards (smaller than
    /// [`RunSet::byte_size`] when compression is on).
    pub fn physical_byte_size(&self) -> u64 {
        self.shards.iter().map(|s| s.physical_byte_size()).sum()
    }

    fn delete(self) -> Result<()> {
        for shard in self.shards {
            shard.delete()?;
        }
        Ok(())
    }
}

/// The CoconutLSM index.
pub struct ClsmTree {
    config: ClsmConfig,
    summarizer: SortableSummarizer,
    buffer: Vec<SeriesEntry>,
    /// `levels[i]` holds the runs of level `i`, oldest first; each run is a
    /// key-partitioned [`RunSet`].
    levels: Vec<Vec<RunSet>>,
    dir: PathBuf,
    stats: SharedIoStats,
    raw: Option<RawSeriesSource>,
    next_run_id: u64,
    lsm_stats: ClsmStats,
}

impl std::fmt::Debug for ClsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClsmTree")
            .field("entries", &self.len())
            .field("levels", &self.levels.len())
            .field("runs", &self.num_runs())
            .finish()
    }
}

impl ClsmTree {
    /// Creates an empty CLSM whose runs are stored in `dir`.
    pub fn new(config: ClsmConfig, dir: &Path, stats: SharedIoStats) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(coconut_storage::StorageError::from)?;
        Ok(ClsmTree {
            config,
            summarizer: SortableSummarizer::new(config.sax),
            buffer: Vec::with_capacity(config.buffer_capacity.min(1 << 20)),
            levels: Vec::new(),
            dir: dir.to_path_buf(),
            stats,
            raw: None,
            next_run_id: 0,
            lsm_stats: ClsmStats::default(),
        })
    }

    /// Attaches the raw dataset handle used for non-materialized
    /// refinement.  Fetches are served through the index's `io_backend`
    /// knob (mmap-backed when configured), with accounting identical at
    /// either setting.
    pub fn attach_dataset(&mut self, dataset: Dataset) -> Result<()> {
        self.raw = Some(RawSeriesSource::new(dataset, self.config.io_backend)?);
        Ok(())
    }

    /// Builds a CLSM by ingesting every series of `dataset` in order.
    pub fn build(
        dataset: &Dataset,
        config: ClsmConfig,
        dir: &Path,
        stats: SharedIoStats,
    ) -> Result<Self> {
        if dataset.series_len() != config.sax.series_len {
            return Err(IndexError::Config(format!(
                "dataset series length {} does not match SAX config {}",
                dataset.series_len(),
                config.sax.series_len
            )));
        }
        let mut tree = ClsmTree::new(config, dir, stats)?;
        // Ingest in buffer-capacity batches so summarization runs on the
        // worker pool while the scan stays streaming.  The staging batch is
        // bounded by the same buffer_capacity that sizes the in-memory
        // buffer, so it transiently at most doubles the configured buffer.
        let batch_size = config.buffer_capacity.clamp(256, 1 << 16);
        let mut batch: Vec<Series> = Vec::with_capacity(batch_size);
        for series in dataset.iter()? {
            batch.push(series?);
            if batch.len() >= batch_size {
                tree.insert_batch(&batch, 0)?;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            tree.insert_batch(&batch, 0)?;
        }
        tree.flush()?;
        if !config.materialized {
            tree.attach_dataset(dataset.reopen()?)?;
        }
        Ok(tree)
    }

    /// Configuration of this index.
    pub fn config(&self) -> &ClsmConfig {
        &self.config
    }

    /// Number of indexed entries (including the in-memory buffer).
    pub fn len(&self) -> u64 {
        self.buffer.len() as u64
            + self
                .levels
                .iter()
                .flat_map(|l| l.iter())
                .map(|r| r.len())
                .sum::<u64>()
    }

    /// Returns `true` when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of logical runs ([`RunSet`]s) across all levels.
    pub fn num_runs(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Number of on-disk run files (shards) across all levels.
    pub fn num_shards(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.iter())
            .map(|r| r.shards.len())
            .sum()
    }

    /// Number of levels currently in use.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// On-disk footprint in bytes — the *physical* size, so with
    /// compression on, planner residency decisions see the real (smaller)
    /// working set.
    pub fn footprint_bytes(&self) -> u64 {
        self.levels
            .iter()
            .flat_map(|l| l.iter())
            .map(|r| r.physical_byte_size())
            .sum()
    }

    /// Cumulative ingestion statistics.
    pub fn stats(&self) -> ClsmStats {
        self.lsm_stats
    }

    /// I/O snapshot of the shared statistics handle.
    pub fn io_snapshot(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Inserts one series with an arrival timestamp.
    pub fn insert(&mut self, series: &Series, timestamp: Timestamp) -> Result<()> {
        if series.len() != self.config.sax.series_len {
            return Err(IndexError::Config(format!(
                "inserted series length {} does not match index ({})",
                series.len(),
                self.config.sax.series_len
            )));
        }
        self.buffer.push(SeriesEntry::from_series(
            series,
            timestamp,
            &self.summarizer,
            self.config.materialized,
        ));
        self.lsm_stats.entries_ingested += 1;
        if self.buffer.len() >= self.config.buffer_capacity {
            self.flush()?;
        }
        Ok(())
    }

    /// Inserts a batch of series sharing one timestamp.
    ///
    /// The whole batch is summarized with the configured worker pool before
    /// any entry enters the buffer, so bulk ingestion scales with cores
    /// while remaining equivalent to repeated [`ClsmTree::insert`] calls.
    pub fn insert_batch(&mut self, series: &[Series], timestamp: Timestamp) -> Result<()> {
        for s in series {
            if s.len() != self.config.sax.series_len {
                return Err(IndexError::Config(format!(
                    "inserted series length {} does not match index ({})",
                    s.len(),
                    self.config.sax.series_len
                )));
            }
        }
        let entries = SeriesEntry::from_series_batch(
            series,
            timestamp,
            &self.summarizer,
            self.config.materialized,
            self.config.parallelism,
        );
        for entry in entries {
            self.buffer.push(entry);
            self.lsm_stats.entries_ingested += 1;
            if self.buffer.len() >= self.config.buffer_capacity {
                self.flush()?;
            }
        }
        Ok(())
    }

    /// Flushes the in-memory buffer into a new level-0 run and compacts
    /// levels that reached the growth factor.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let entries = std::mem::take(&mut self.buffer);
        let count = entries.len() as u64;
        let run = self.write_sorted_run(entries, 0)?;
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(RunSet::single(run));
        self.lsm_stats.flushes += 1;
        self.lsm_stats.entries_written += count;
        self.compact()?;
        Ok(())
    }

    fn write_sorted_run(
        &mut self,
        entries: Vec<SeriesEntry>,
        level: usize,
    ) -> Result<SortedSeriesFile> {
        let path = self
            .dir
            .join(format!("clsm-L{level}-{:06}.run", self.next_run_id));
        self.next_run_id += 1;
        SortedSeriesFile::build_from_entries_compressed(
            path,
            self.config.layout(),
            self.config.sax,
            entries,
            self.config.entries_per_block,
            Arc::clone(&self.stats),
            self.config.page_size,
            self.config.parallelism,
            self.config.io_backend,
            self.config.compression,
        )
    }

    fn compact(&mut self) -> Result<()> {
        let t = self.config.growth_factor;
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() >= t {
                let runs = std::mem::take(&mut self.levels[level]);
                let merged = self.merge_runs(&runs, level + 1)?;
                for run in runs {
                    let _ = run.delete();
                }
                if self.levels.len() <= level + 1 {
                    self.levels.push(Vec::new());
                }
                let count = merged.len();
                self.levels[level + 1].push(merged);
                self.lsm_stats.merges += 1;
                self.lsm_stats.entries_written += count;
            }
            level += 1;
        }
        Ok(())
    }

    /// Picks `shard_count - 1` key boundaries that split the merged output
    /// of `inputs` into near-equal shards.  Boundaries are block fence keys
    /// of the inputs, chosen by walking the fences in key order and cutting
    /// at entry-count quantiles — a deterministic function of the input
    /// runs, independent of any worker count.
    fn shard_boundaries(inputs: &[&SortedSeriesFile], shard_count: usize) -> Vec<u128> {
        if shard_count <= 1 {
            return Vec::new();
        }
        let total: u64 = inputs.iter().map(|f| f.len()).sum();
        if total == 0 {
            return Vec::new();
        }
        let mut fences: Vec<(u128, u64)> = inputs
            .iter()
            .flat_map(|f| f.blocks().iter().map(|b| (b.min_key, b.count as u64)))
            .collect();
        fences.sort_unstable();
        let per_shard = total.div_ceil(shard_count as u64).max(1);
        let mut boundaries = Vec::with_capacity(shard_count - 1);
        let mut seen = 0u64;
        for (key, count) in fences {
            if boundaries.len() + 1 >= shard_count {
                break;
            }
            if seen >= (boundaries.len() as u64 + 1) * per_shard
                && boundaries.last().is_none_or(|&b| key > b)
                && key > 0
            {
                boundaries.push(key);
            }
            seen += count;
        }
        boundaries
    }

    fn merge_runs(&mut self, runs: &[RunSet], target_level: usize) -> Result<RunSet> {
        let layout = self.config.layout();
        // Flatten in (run, shard) order: shards of one run are key-disjoint,
        // so any equal (key, id) pair across *runs* keeps the same relative
        // order as the unsharded merge would produce.
        let inputs: Vec<&SortedSeriesFile> = runs.iter().flat_map(|r| r.shards.iter()).collect();
        let boundaries = Self::shard_boundaries(&inputs, self.config.shard_count);
        let run_id = self.next_run_id;
        self.next_run_id += 1;

        // Shard ranges: [0, b1), [b1, b2), ..., [b_last, +inf).
        let mut ranges: Vec<(u128, Option<u128>)> = Vec::with_capacity(boundaries.len() + 1);
        let mut lo = 0u128;
        for &b in &boundaries {
            ranges.push((lo, Some(b)));
            lo = b;
        }
        ranges.push((lo, None));

        // Every shard is an independent k-way merge over the inputs' key
        // slices, writing its own file: the fan-out below is a pure speedup.
        let prefetch_gate = self.compaction_prefetch_gate();
        let workers = coconut_parallel::effective_parallelism(self.config.parallelism);
        let shard_results = coconut_parallel::parallel_map_tasks(
            &ranges,
            workers.min(ranges.len()),
            |shard_idx, &(lo, hi)| -> Result<SortedSeriesFile> {
                let readers: Vec<_> = inputs
                    .iter()
                    .map(|f| {
                        f.range_reader_with_prefetch_gate(
                            lo,
                            hi,
                            self.config.io_overlap,
                            prefetch_gate,
                        )
                    })
                    .collect();
                let merge = coconut_storage::DynIterMerge::new(layout, readers)?;
                let path = self.dir.join(format!(
                    "clsm-L{target_level}-{run_id:06}-s{shard_idx:03}.run"
                ));
                SortedSeriesFile::build_from_sorted_compressed(
                    path,
                    layout,
                    self.config.sax,
                    merge,
                    self.config.entries_per_block,
                    Arc::clone(&self.stats),
                    self.config.page_size,
                    self.config.io_backend,
                    self.config.compression,
                )
            },
        );
        let mut shards = Vec::with_capacity(ranges.len());
        for result in shard_results {
            let shard = result?;
            // Quantile boundaries can leave a shard empty on tiny inputs;
            // drop its (empty) file rather than carrying a zero-entry shard.
            if shard.is_empty() {
                shard.delete()?;
            } else {
                shards.push(shard);
            }
        }
        Ok(RunSet { shards })
    }

    fn query_context(&self) -> QueryContext<'_> {
        match &self.raw {
            Some(raw) => QueryContext::non_materialized(raw, Arc::clone(&self.stats)),
            None => QueryContext::materialized(),
        }
    }

    /// Captures a deterministic [`PlannerInputs`] snapshot for this tree:
    /// every field is an integer read at capture time; the decision itself
    /// is the pure function `coconut_ctree::planner::plan`.
    fn planner_inputs(&self, k: usize, batch_width: usize, exact: bool) -> PlannerInputs {
        let probe = planner::host_probe();
        let snap = self.stats.snapshot();
        PlannerInputs {
            footprint_bytes: self.footprint_bytes(),
            cache_budget_bytes: probe.cache_budget_bytes,
            unit_count: self.num_shards() + usize::from(!self.buffer.is_empty()),
            run_count: self.num_runs().max(1),
            cores: probe.cores,
            k,
            batch_width,
            exact,
            random_read_permille: planner::read_permille(&snap),
        }
    }

    /// The read-ahead gate a compaction should use: the configured value in
    /// `Fixed` mode, or the planner's choice from a fresh state snapshot in
    /// `Adaptive` mode.
    fn compaction_prefetch_gate(&self) -> usize {
        match self.config.planner {
            PlannerMode::Fixed => self.config.prefetch_min_bytes,
            PlannerMode::Adaptive => {
                planner::plan(&self.planner_inputs(0, 1, true)).effective_prefetch_gate()
            }
        }
    }

    fn search_buffer(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<()> {
        for entry in &self.buffer {
            if let Some((start, end)) = window {
                if entry.timestamp < start || entry.timestamp > end {
                    continue;
                }
            }
            ctx.cost.entries_examined += 1;
            if entry.is_materialized() {
                if let Some(d) = euclidean_early_abandon(query, &entry.values, heap.bound()) {
                    heap.offer_at(entry.id, entry.timestamp, d);
                }
            } else {
                let values = ctx.fetch(entry.id)?;
                if let Some(d) = euclidean_early_abandon(query, &values, heap.bound()) {
                    heap.offer_at(entry.id, entry.timestamp, d);
                }
            }
        }
        Ok(())
    }

    /// Search units in newest-first order: the buffer, then level 0's runs
    /// (newest flush first), then deeper levels, with every shard of a
    /// sharded run as its own unit so queries fan out per shard.
    fn query_units(&self, window: Option<(Timestamp, Timestamp)>) -> Vec<ClsmUnit<'_>> {
        let mut units = Vec::with_capacity(self.num_shards() + 1);
        if !self.buffer.is_empty() {
            units.push(ClsmUnit {
                tree: self,
                window,
                part: ClsmPart::Buffer,
            });
        }
        for level in &self.levels {
            for run in level.iter().rev() {
                for shard in &run.shards {
                    units.push(ClsmUnit {
                        tree: self,
                        window,
                        part: ClsmPart::Shard(shard),
                    });
                }
            }
        }
        units
    }

    /// Approximate kNN over the buffer plus every run, fanned out over
    /// `query_parallelism` workers.
    pub fn approximate_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        self.approximate_knn_window(query, k, None)
    }

    /// Approximate kNN restricted to a timestamp window.
    pub fn approximate_knn_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let units = self.query_units(window);
        coconut_ctree::engine::parallel_knn(&units, query, k, self.config.query_parallelism, false)
    }

    /// Exact kNN over the buffer plus every run, fanned out over
    /// `query_parallelism` workers around a shared best-so-far bound.
    pub fn exact_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        self.exact_knn_window(query, k, None)
    }

    /// Exact kNN restricted to a timestamp window.
    pub fn exact_knn_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let units = self.query_units(window);
        coconut_ctree::engine::parallel_knn(&units, query, k, self.config.query_parallelism, true)
    }

    /// Runs a batch of kNN queries over the buffer plus every run through
    /// the engine's round pipeline.
    ///
    /// Every query's answers and `QueryCost` are bit-identical to issuing
    /// it alone via [`ClsmTree::exact_knn`] /
    /// [`ClsmTree::approximate_knn`], and so is the per-file `IoStats`
    /// accounting; see `coconut_ctree::engine`.
    pub fn batch_knn(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
    ) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
        self.batch_knn_window(queries, k, None, exact)
    }

    /// Like [`ClsmTree::batch_knn`], restricted to a timestamp window.
    pub fn batch_knn_window(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
        let units = self.query_units(window);
        coconut_ctree::engine::batch_knn(&units, queries, k, self.config.query_parallelism, exact)
    }

    /// Single kNN query with cooperative cancellation: a batch of one run
    /// through the engine, polling `cancel` at its round boundaries.
    /// Answers and cost are bit-identical to [`ClsmTree::exact_knn`] /
    /// [`ClsmTree::approximate_knn`] when the token never fires; on
    /// cancellation the query unwinds with
    /// [`IndexError::Cancelled`] carrying the partial cost.
    pub fn knn_with(
        &self,
        query: &[f32],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let units = self.query_units(None);
        coconut_ctree::engine::parallel_knn_with(
            &units,
            query,
            k,
            self.config.query_parallelism,
            exact,
            cancel,
        )
    }

    /// [`ClsmTree::batch_knn`] with cooperative cancellation (polled at the
    /// engine's round boundaries).
    pub fn batch_knn_with(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
        let units = self.query_units(None);
        coconut_ctree::engine::batch_knn_with(
            &units,
            queries,
            k,
            self.config.query_parallelism,
            exact,
            cancel,
        )
    }

    /// Like [`ClsmTree::knn_with`], but routed through the query planner
    /// when the config selects [`PlannerMode::Adaptive`]: the fan-out knob
    /// comes from a [`planner::PlanReport`] captured for this query, returned
    /// alongside the answer.  In `Fixed` mode this is exactly `knn_with`
    /// (byte-identical path) and the report is `None`.  Answers and cost
    /// are identical in both modes.
    pub fn knn_planned(
        &self,
        query: &[f32],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<PlannedAnswer> {
        match self.config.planner {
            PlannerMode::Fixed => self.knn_with(query, k, exact, cancel).map(|r| (r, None)),
            PlannerMode::Adaptive => {
                let report = planner::plan_report(self.planner_inputs(k, 1, exact));
                let units = self.query_units(None);
                let answer = coconut_ctree::engine::parallel_knn_with(
                    &units,
                    query,
                    k,
                    report.decision.query_parallelism,
                    exact,
                    cancel,
                )?;
                Ok((answer, Some(report)))
            }
        }
    }

    /// Like [`ClsmTree::batch_knn_with`], but routed through the query
    /// planner when the config selects [`PlannerMode::Adaptive`]: fan-out
    /// and batch round shape come from a [`planner::PlanReport`] captured for this
    /// batch.  In `Fixed` mode this is exactly `batch_knn_with` and the
    /// report is `None`.  Answers and cost are identical in both modes.
    pub fn batch_knn_planned(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<PlannedBatch> {
        match self.config.planner {
            PlannerMode::Fixed => self
                .batch_knn_with(queries, k, exact, cancel)
                .map(|r| (r, None)),
            PlannerMode::Adaptive => {
                let report = planner::plan_report(self.planner_inputs(k, queries.len(), exact));
                let units = self.query_units(None);
                let answers = coconut_ctree::engine::batch_knn_chunked(
                    &units,
                    queries,
                    k,
                    report.decision.query_parallelism,
                    exact,
                    report.decision.batch_chunk,
                    cancel,
                )?;
                Ok((answers, Some(report)))
            }
        }
    }
}

#[derive(Clone, Copy)]
enum ClsmPart<'a> {
    /// The in-memory write buffer.
    Buffer,
    /// One on-disk shard of a run.
    Shard(&'a SortedSeriesFile),
}

/// One independently searchable piece of a CLSM tree for the concurrent
/// query engine.  The query is supplied per search call so one unit list
/// serves a whole batch.
struct ClsmUnit<'a> {
    tree: &'a ClsmTree,
    window: Option<(Timestamp, Timestamp)>,
    part: ClsmPart<'a>,
}

impl coconut_ctree::engine::SearchUnit for ClsmUnit<'_> {
    fn context(&self) -> QueryContext<'_> {
        self.tree.query_context()
    }

    fn search_approximate(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()> {
        match self.part {
            // The buffer is in memory: its "approximate" probe is the full
            // scan, which both seeds the shared bound and is exact.
            ClsmPart::Buffer => self.tree.search_buffer(query, heap, ctx, self.window),
            ClsmPart::Shard(file) => file.search_approximate(query, heap, ctx, self.window),
        }
    }

    fn search_exact(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()> {
        match self.part {
            ClsmPart::Buffer => self.tree.search_buffer(query, heap, ctx, self.window),
            ClsmPart::Shard(file) => file.search_exact(query, heap, ctx, self.window),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::distance::brute_force_knn;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::iostats::IoStats;
    use coconut_storage::ScratchDir;

    fn build_clsm(
        n: usize,
        materialized: bool,
        buffer: usize,
        growth: usize,
        seed: u64,
    ) -> (ScratchDir, Vec<Series>, ClsmTree, SharedIoStats) {
        let dir = ScratchDir::new("clsm").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let stats = IoStats::shared();
        let config = ClsmConfig::new(sax)
            .materialized(materialized)
            .with_buffer_capacity(buffer)
            .with_growth_factor(growth);
        let tree = ClsmTree::build(&dataset, config, &dir.file("lsm"), Arc::clone(&stats)).unwrap();
        (dir, series, tree, stats)
    }

    #[test]
    fn ingestion_creates_runs_and_levels() {
        let (_dir, series, tree, _) = build_clsm(1000, true, 100, 3, 1);
        assert_eq!(tree.len(), series.len() as u64);
        assert!(tree.stats().flushes >= 10);
        assert!(tree.stats().merges > 0);
        assert!(tree.num_levels() > 1);
        assert!(tree.footprint_bytes() > 0);
    }

    #[test]
    fn exact_knn_matches_brute_force_materialized() {
        let (_dir, series, tree, _) = build_clsm(600, true, 128, 4, 2);
        let mut gen = RandomWalkGenerator::new(64, 93);
        for _ in 0..8 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                5,
            );
            let (got, _) = tree.exact_knn(&q.values, 5).unwrap();
            assert_eq!(got.len(), 5);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g.squared_distance - e.squared_distance).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn exact_knn_matches_brute_force_non_materialized() {
        let (_dir, series, tree, _) = build_clsm(400, false, 100, 3, 3);
        let mut gen = RandomWalkGenerator::new(64, 19);
        for _ in 0..4 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                1,
            );
            let (got, cost) = tree.exact_knn(&q.values, 1).unwrap();
            assert_eq!(got[0].id, expected[0].id);
            assert!(cost.raw_fetches < 400);
        }
    }

    #[test]
    fn buffered_entries_are_visible_before_flush() {
        let dir = ScratchDir::new("clsm-buf").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let config = ClsmConfig::new(sax)
            .materialized(true)
            .with_buffer_capacity(1000);
        let mut tree = ClsmTree::new(config, &dir.file("lsm"), IoStats::shared()).unwrap();
        let mut gen = RandomWalkGenerator::new(64, 4);
        let series = gen.generate(50);
        tree.insert_batch(&series, 7).unwrap();
        assert_eq!(tree.num_runs(), 0, "nothing should be flushed yet");
        let target = &series[20];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.001).collect();
        let (got, _) = tree.exact_knn(&query, 1).unwrap();
        assert_eq!(got[0].id, target.id);
    }

    #[test]
    fn ingestion_io_is_mostly_sequential() {
        let (_dir, _series, tree, stats) = build_clsm(2000, true, 100, 3, 5);
        let snap = stats.snapshot();
        assert!(snap.total_writes() > 0);
        assert!(
            snap.random_fraction() < 0.2,
            "CLSM ingestion should be log-structured/sequential, got {}",
            snap.random_fraction()
        );
        let _ = tree;
    }

    #[test]
    fn smaller_growth_factor_means_fewer_runs_more_writes() {
        let (_d1, _s1, aggressive, _) = build_clsm(1500, true, 100, 2, 6);
        let (_d2, _s2, lazy, _) = build_clsm(1500, true, 100, 8, 6);
        assert!(aggressive.num_runs() <= lazy.num_runs());
        assert!(
            aggressive.stats().write_amplification() > lazy.stats().write_amplification(),
            "aggressive merging must rewrite entries more often ({} vs {})",
            aggressive.stats().write_amplification(),
            lazy.stats().write_amplification()
        );
    }

    fn build_sharded_clsm(
        n: usize,
        shards: usize,
        parallelism: usize,
        seed: u64,
    ) -> (ScratchDir, Vec<Series>, ClsmTree) {
        let dir = ScratchDir::new("clsm-shard").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let config = ClsmConfig::new(sax)
            .materialized(true)
            .with_buffer_capacity(100)
            .with_growth_factor(3)
            .with_shard_count(shards)
            .with_parallelism(parallelism);
        let tree = ClsmTree::build(&dataset, config, &dir.file("lsm"), IoStats::shared()).unwrap();
        (dir, series, tree)
    }

    #[test]
    fn sharded_compaction_splits_runs_by_key_range() {
        let (_dir, series, tree) = build_sharded_clsm(1200, 4, 1, 21);
        assert!(tree.stats().merges > 0, "compactions must have happened");
        assert!(
            tree.num_shards() > tree.num_runs(),
            "merged levels must hold multi-shard runs ({} shards over {} runs)",
            tree.num_shards(),
            tree.num_runs()
        );
        assert_eq!(tree.len(), series.len() as u64);
        // Shards of every run must be key-disjoint and ordered.
        for level in &tree.levels {
            for run in level {
                for pair in run.shards().windows(2) {
                    let left_max = pair[0].blocks().last().unwrap().max_key;
                    let right_min = pair[1].blocks().first().unwrap().min_key;
                    assert!(left_max <= right_min, "shards must be key-ordered");
                }
            }
        }
        // A sharded tree must answer exactly like brute force.
        let mut gen = RandomWalkGenerator::new(64, 77);
        for _ in 0..5 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                4,
            );
            let (got, _) = tree.exact_knn(&q.values, 4).unwrap();
            assert_eq!(got.len(), 4);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert_eq!(g.id, e.id);
                assert!((g.squared_distance - e.squared_distance).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sharded_compaction_is_byte_identical_at_any_parallelism() {
        let (dir_a, _series, a) = build_sharded_clsm(900, 3, 1, 33);
        let (dir_b, _series, b) = build_sharded_clsm(900, 3, 8, 33);
        assert_eq!(a.stats(), b.stats(), "ClsmStats must not depend on workers");
        let read_dir = |d: &ScratchDir| -> Vec<(String, Vec<u8>)> {
            let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(d.file("lsm"))
                .unwrap()
                .map(|e| {
                    let p = e.unwrap().path();
                    (
                        p.file_name().unwrap().to_string_lossy().into_owned(),
                        std::fs::read(&p).unwrap(),
                    )
                })
                .collect();
            files.sort();
            files
        };
        let fa = read_dir(&dir_a);
        let fb = read_dir(&dir_b);
        assert_eq!(
            fa.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            fb.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            "same shard file set at every parallelism"
        );
        for ((name, bytes_a), (_, bytes_b)) in fa.iter().zip(fb.iter()) {
            assert_eq!(bytes_a, bytes_b, "file {name} differs");
        }
    }

    #[test]
    fn sharded_and_unsharded_trees_agree_with_identical_write_amplification() {
        let (_d1, series, sharded) = build_sharded_clsm(1000, 4, 1, 55);
        let dir = ScratchDir::new("clsm-unsharded").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let config = ClsmConfig::new(sax)
            .materialized(true)
            .with_buffer_capacity(100)
            .with_growth_factor(3);
        let plain = ClsmTree::build(&dataset, config, &dir.file("lsm"), IoStats::shared()).unwrap();
        // Sharding changes the file layout, not the merge schedule.
        assert_eq!(sharded.stats(), plain.stats());
        let mut gen = RandomWalkGenerator::new(64, 11);
        for _ in 0..5 {
            let q = gen.next_series();
            let (a, _) = sharded.exact_knn(&q.values, 3).unwrap();
            let (b, _) = plain.exact_knn(&q.values, 3).unwrap();
            assert_eq!(a, b, "sharded and unsharded answers must agree");
        }
    }

    #[test]
    fn window_queries_respect_window() {
        let dir = ScratchDir::new("clsm-window").unwrap();
        let sax = SaxConfig::new(32, 4, 8);
        let config = ClsmConfig::new(sax)
            .materialized(true)
            .with_buffer_capacity(32);
        let mut tree = ClsmTree::new(config, &dir.file("lsm"), IoStats::shared()).unwrap();
        let mut gen = RandomWalkGenerator::new(32, 7);
        for batch in 0..10u64 {
            let series = gen.generate(20);
            tree.insert_batch(&series, batch * 100).unwrap();
        }
        tree.flush().unwrap();
        let q = gen.next_series();
        let (got, _) = tree
            .exact_knn_window(&q.values, 200, Some((300, 600)))
            .unwrap();
        assert!(!got.is_empty());
        // Every returned id must belong to batches 3..=6 (ids 60..140).
        for n in &got {
            assert!(
                n.id >= 60 && n.id < 140,
                "id {} outside window batches",
                n.id
            );
        }
    }

    #[test]
    fn empty_tree_query_returns_nothing() {
        let dir = ScratchDir::new("clsm-empty").unwrap();
        let config = ClsmConfig::new(SaxConfig::new(32, 4, 8)).materialized(true);
        let tree = ClsmTree::new(config, &dir.file("lsm"), IoStats::shared()).unwrap();
        let (got, _) = tree.exact_knn(&[0.0; 32], 3).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn mismatched_series_length_rejected() {
        let dir = ScratchDir::new("clsm-mismatch").unwrap();
        let config = ClsmConfig::new(SaxConfig::new(32, 4, 8)).materialized(true);
        let mut tree = ClsmTree::new(config, &dir.file("lsm"), IoStats::shared()).unwrap();
        let bad = Series::new(0, vec![0.0; 8]);
        assert!(matches!(tree.insert(&bad, 0), Err(IndexError::Config(_))));
    }
}
