//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API used by this workspace's
//! benches: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.  Measurements are simple wall-clock statistics
//! (mean / min / max over timed samples) printed to stdout — enough to spot
//! order-of-magnitude regressions without the real crate's rigor.

use std::time::{Duration, Instant};

/// How much setup output to batch per timed routine call (accepted for API
/// compatibility; this harness always re-runs setup once per sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs of a caller-chosen size.
    PerIteration,
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Times a closure on behalf of [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-call duration.
        let warm_until = Instant::now() + self.warm_up_time;
        let mut calls = 0u64;
        while Instant::now() < warm_until || calls == 0 {
            std::hint::black_box(routine());
            calls += 1;
        }
        let per_call = self.warm_up_time.as_secs_f64() / calls as f64;
        // Size each sample so all samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{name:<40} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            mean,
            sorted[0],
            sorted[sorted.len() - 1],
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions (criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke_iter", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0);
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
