//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps [`std::sync::Mutex`] / [`std::sync::RwLock`] behind parking_lot's
//! non-poisoning API (`lock()` returns the guard directly).  Like the real
//! parking_lot, poisoning is ignored: if a thread panicked while holding the
//! lock, later callers still get the guard (and whatever state the panicking
//! thread left behind) instead of a panic cascade.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
