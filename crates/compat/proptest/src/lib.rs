//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of the proptest 1.x surface this workspace uses:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings and an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute,
//! * range strategies (`0u64..1000`, `0u8..=255`, `-10.0f64..10.0`, ...),
//! * [`collection::vec`] with either a fixed length or a length range,
//! * `prop_assert!`, `prop_assert_eq!` and `prop_assert_ne!`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics with
//! the generated inputs left to the test's own assertion message.  Cases are
//! generated deterministically from the test's name, so failures reproduce
//! across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as __Rng;

/// Number of cases each property runs by default (real proptest's default).
pub const DEFAULT_CASES: u32 = 256;

/// Configuration of a property run.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error type carried by `prop_assert!` failures.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner for the property named `name`, seeding the generator
    /// deterministically from that name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The runner's generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi < <$t>::MAX {
                    rand::Rng::gen_range(rng, lo..hi + 1)
                } else if lo > <$t>::MIN {
                    // Shift down one so the half-open range stays in bounds.
                    rand::Rng::gen_range(rng, lo - 1..hi) + 1
                } else {
                    // Full domain: draw raw bits.
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.start..self.end)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Lengths a generated vector may take: fixed or uniformly drawn from a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub enum SizeRange {
        /// Always exactly this many elements.
        Fixed(usize),
        /// Uniform in `[start, end)`.
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    /// Strategy producing vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a vector strategy (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Range(lo, hi) => {
                    if lo + 1 >= hi {
                        lo
                    } else {
                        rand::Rng::gen_range(rng, lo..hi)
                    }
                }
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                file!(),
                line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} (left: {:?}, right: {:?}) at {}:{}",
                format!($($fmt)*),
                lhs,
                rhs,
                file!(),
                line!()
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                file!(),
                line!()
            )));
        }
    }};
}

/// Declares property tests.  See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg, concat!(module_path!(), "::", stringify!($name)));
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(
            a in 0u64..100,
            b in -5i32..=5,
            f in -2.0f32..2.0,
        ) {
            prop_assert!(a < 100);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(
            fixed in collection::vec(0u8..=255, 7),
            ranged in collection::vec(0.0f64..1.0, 2..9),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..9).contains(&ranged.len()));
            prop_assert_ne!(ranged.len(), 0);
        }
    }

    #[test]
    fn prop_assert_fails_the_case() {
        let outcome: Result<(), TestCaseError> = (|| {
            prop_assert!(1 + 1 == 3, "arithmetic is broken");
            Ok(())
        })();
        let err = outcome.expect_err("assertion should fail the case");
        assert!(err.to_string().contains("arithmetic is broken"));
    }

    #[test]
    fn full_u8_domain_inclusive_range() {
        use crate::Strategy;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = (0u8..=255).generate(&mut rng);
            if v > 200 {
                seen_high = true;
            }
        }
        assert!(seen_high);
    }
}
