//! The concurrent query engine: parallel fan-out over search units with a
//! shared, CAS-tightened best-so-far bound.
//!
//! Every Coconut index is queried as a collection of **search units** — the
//! in-memory buffer, each sorted run (or shard) of a CLSM level, each
//! temporal partition of a stream.  The engine probes units concurrently
//! with per-worker local heaps and merges the results deterministically, so
//! `query_parallelism` is a pure performance knob: neighbours, distances,
//! tie-breaking order *and* cost counters are bit-identical at every worker
//! count.
//!
//! # Protocol
//!
//! Exact queries over more than one unit run in two phases around one
//! [`SharedBound`]:
//!
//! 1. **Seed** — every unit is probed *approximately* (its target block
//!    only) with an independent local heap.  Workers publish their local
//!    k-th-best distances into the shared bound via CAS; after the join the
//!    engine merges the seed candidates and publishes the k-th best of the
//!    union, which is at least as tight as any per-unit bound.
//! 2. **Refine** — the shared bound is frozen into `b0` and every unit runs
//!    its exact search with a local heap whose pruning bound is
//!    `min(b0, local k-th best)`.  Workers keep CAS-publishing their final
//!    local bounds (so the shared bound ends at the true k-th-best
//!    distance), but **decisions never read the bound mid-phase**: a
//!    mid-scan read would make block pruning depend on worker timing,
//!    breaking cost determinism.  `b0` already carries the cross-unit
//!    pruning power the Coconut line derives from one bound shared across
//!    all sorted runs.
//!
//! Approximate queries are a single phase of independent unit probes.
//!
//! # Why the merged result is exact
//!
//! The frozen bound `b0` is the k-th best distance of *actual* candidates,
//! so `b0 >= d_k`, the true k-th best.  Pruning and early abandoning are
//! strict (`> bound`), so every neighbour of the true top-k (ordered by
//! `(distance, id, timestamp)`) survives its unit's search and lands in that
//! unit's local top-k; the deterministic merge (concatenate in unit order,
//! stable sort, truncate to `k`) therefore returns exactly the global top-k.

use coconut_parallel::{effective_parallelism, parallel_map_tasks};
use coconut_series::distance::Neighbor;

use crate::query::{KnnHeap, QueryContext, QueryCost, SharedBound};
use crate::Result;

/// One independently searchable piece of an index.
///
/// Implementations are searched from worker threads (`Self: Sync`) with a
/// per-worker heap and cost context; both search methods must be
/// deterministic functions of the unit and the heap's starting ceiling.
pub trait SearchUnit: Sync {
    /// Fresh cost/fetch context for one phase over this unit.
    fn context(&self) -> QueryContext<'_>;

    /// Approximate probe: refine only the most promising region of the
    /// unit.  Used both as the seed phase of exact queries and as the whole
    /// of approximate queries.
    fn search_approximate(&self, heap: &mut KnnHeap, ctx: &mut QueryContext<'_>) -> Result<()>;

    /// Exact contribution: refine every candidate of the unit that the
    /// heap's pruning bound cannot exclude.
    fn search_exact(&self, heap: &mut KnnHeap, ctx: &mut QueryContext<'_>) -> Result<()>;
}

fn run_phase<U: SearchUnit>(
    units: &[U],
    k: usize,
    workers: usize,
    ceiling: f64,
    exact: bool,
    shared: &SharedBound,
) -> Result<(Vec<Neighbor>, QueryCost)> {
    let outcomes = parallel_map_tasks(units, workers, |_, unit| {
        let mut heap = KnnHeap::with_ceiling(k, ceiling);
        let mut ctx = unit.context();
        let searched = if exact {
            unit.search_exact(&mut heap, &mut ctx)
        } else {
            unit.search_approximate(&mut heap, &mut ctx)
        };
        searched.map(|()| {
            shared.tighten(heap.bound());
            (heap.into_sorted(), ctx.cost)
        })
    });
    let mut neighbors = Vec::new();
    let mut cost = QueryCost::default();
    for outcome in outcomes {
        let (unit_neighbors, unit_cost) = outcome?;
        neighbors.extend(unit_neighbors);
        cost = cost.plus(&unit_cost);
    }
    // Stable sort: equal `(distance, id, timestamp)` neighbours keep unit
    // order, so the merge is deterministic.
    neighbors.sort();
    Ok((neighbors, cost))
}

/// Runs a kNN query over `units` with up to `parallelism` workers
/// (`1` = sequential, `0` = one per available core) and returns the merged
/// top-`k` plus the exact summed cost.
///
/// Results and cost are identical at every `parallelism` setting; see the
/// module docs for the protocol and the determinism argument.
pub fn parallel_knn<U: SearchUnit>(
    units: &[U],
    k: usize,
    parallelism: usize,
    exact: bool,
) -> Result<(Vec<Neighbor>, QueryCost)> {
    if units.is_empty() {
        return Ok((Vec::new(), QueryCost::default()));
    }
    let workers = effective_parallelism(parallelism).min(units.len());
    let shared = SharedBound::new();
    let mut total_cost = QueryCost::default();
    if exact && units.len() > 1 {
        // Seed phase: cheap approximate probes establish the frozen
        // cross-unit bound before any unit is searched exactly.
        let (seeds, seed_cost) = run_phase(units, k, workers, f64::INFINITY, false, &shared)?;
        total_cost = total_cost.plus(&seed_cost);
        if seeds.len() >= k {
            shared.tighten(seeds[k - 1].squared_distance);
        }
    }
    let frozen = shared.get();
    let (mut neighbors, main_cost) = run_phase(units, k, workers, frozen, exact, &shared)?;
    total_cost = total_cost.plus(&main_cost);
    neighbors.truncate(k);
    Ok((neighbors, total_cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryContext;

    /// A purely in-memory unit over `(id, timestamp, distance)` candidates.
    struct VecUnit {
        candidates: Vec<(u64, u64, f64)>,
    }

    impl SearchUnit for VecUnit {
        fn context(&self) -> QueryContext<'_> {
            QueryContext::materialized()
        }

        fn search_approximate(&self, heap: &mut KnnHeap, ctx: &mut QueryContext<'_>) -> Result<()> {
            // Probe only the first candidate (the unit's "target block").
            if let Some(&(id, ts, d)) = self.candidates.first() {
                ctx.cost.entries_examined += 1;
                heap.offer_at(id, ts, d);
            }
            Ok(())
        }

        fn search_exact(&self, heap: &mut KnnHeap, ctx: &mut QueryContext<'_>) -> Result<()> {
            for &(id, ts, d) in &self.candidates {
                ctx.cost.entries_examined += 1;
                if d > heap.bound() {
                    continue;
                }
                ctx.cost.entries_refined += 1;
                heap.offer_at(id, ts, d);
            }
            Ok(())
        }
    }

    fn units(seed: u64) -> Vec<VecUnit> {
        // Deterministic pseudo-random candidates spread over 5 units.
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..5)
            .map(|u| VecUnit {
                candidates: (0..40)
                    .map(|i| {
                        let id = u * 1000 + i;
                        let ts = next() % 7;
                        let d = (next() % 10_000) as f64 / 10.0;
                        (id, ts, d)
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_results_and_cost() {
        let units = units(42);
        let (seq, seq_cost) = parallel_knn(&units, 7, 1, true).unwrap();
        for workers in [2, 4, 8] {
            let (par, par_cost) = parallel_knn(&units, 7, workers, true).unwrap();
            assert_eq!(seq, par, "workers={workers}");
            assert_eq!(seq_cost, par_cost, "workers={workers}");
        }
        assert_eq!(seq.len(), 7);
        for w in seq.windows(2) {
            assert!(w[0] <= w[1], "results must be sorted");
        }
    }

    #[test]
    fn approximate_mode_merges_unit_probes() {
        let units = units(7);
        let (seq, _) = parallel_knn(&units, 3, 1, false).unwrap();
        let (par, _) = parallel_knn(&units, 3, 8, false).unwrap();
        assert_eq!(seq, par);
        // Approximate mode probes one candidate per unit: 5 candidates total.
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn exact_answer_is_the_true_top_k() {
        let units = units(99);
        let mut all: Vec<Neighbor> = units
            .iter()
            .flat_map(|u| u.candidates.iter())
            .map(|&(id, ts, d)| Neighbor::new_at(id, ts, d))
            .collect();
        all.sort();
        all.truncate(9);
        let (got, _) = parallel_knn(&units, 9, 4, true).unwrap();
        assert_eq!(got, all);
    }

    #[test]
    fn empty_unit_list_is_empty_answer() {
        let none: Vec<VecUnit> = Vec::new();
        let (nn, cost) = parallel_knn(&none, 3, 4, true).unwrap();
        assert!(nn.is_empty());
        assert_eq!(cost, QueryCost::default());
    }
}
