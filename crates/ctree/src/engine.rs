//! The concurrent query engine: parallel fan-out over search units with a
//! shared, CAS-tightened best-so-far bound, for single queries and for
//! batches of queries.
//!
//! Every Coconut index is queried as a collection of **search units** — the
//! in-memory buffer, each sorted run (or shard) of a CLSM level, each
//! temporal partition of a stream.  The engine probes units concurrently
//! with per-worker local heaps and merges the results deterministically, so
//! `query_parallelism` is a pure performance knob: neighbours, distances,
//! tie-breaking order *and* cost counters are bit-identical at every worker
//! count.
//!
//! # Protocol
//!
//! Exact queries over more than one unit run in two phases around one
//! [`SharedBound`] per query:
//!
//! 1. **Seed** — every unit is probed *approximately* (its target block
//!    only) with an independent local heap.  Workers publish their local
//!    k-th-best distances into the shared bound via CAS; after the join the
//!    engine merges the seed candidates and publishes the k-th best of the
//!    union, which is at least as tight as any per-unit bound.
//! 2. **Refine** — the shared bound is frozen into `b0` and every unit runs
//!    its exact search with a local heap whose pruning bound is
//!    `min(b0, local k-th best)`.  Workers keep CAS-publishing their final
//!    local bounds (so the shared bound ends at the true k-th-best
//!    distance), but **decisions never read the bound mid-phase**: a
//!    mid-scan read would make block pruning depend on worker timing,
//!    breaking cost determinism.  `b0` already carries the cross-unit
//!    pruning power the Coconut line derives from one bound shared across
//!    all sorted runs.
//!
//! Approximate queries are a single phase of independent unit probes.
//!
//! # Batched execution ([`batch_knn`])
//!
//! A batch of `N` queries is executed as a **round pipeline**: in round `r`
//! every unit first runs the refine phase of query `r-1` and then the seed
//! phase of query `r` (units fan out over the worker pool inside each
//! round, and each query's bound is frozen at its round boundary exactly as
//! in the one-at-a-time path).  Two properties follow by construction:
//!
//! * **Bit-identical results and accounting.**  Per query, the phase
//!   structure, the frozen bound, the per-unit heap ceilings, the merge
//!   order and the cost summation are exactly those of [`parallel_knn`] —
//!   and per *file*, the access sequence is exactly the sequential one
//!   (each unit owns its file, and its round task runs `refine(r-1)` before
//!   `seed(r)`), so even the sequential/random `IoStats` classification
//!   matches issuing the queries one at a time.
//! * **Shared per-unit pruning state.**  Consecutive queries probe each hot
//!   run back to back within one scheduled task — block fences, mappings
//!   and the run's pages stay resident across the whole batch instead of
//!   being re-walked per request, and a batch of `N` queries pays `N + 1`
//!   fork/join barriers instead of `2N`.
//!
//! # Why the merged result is exact
//!
//! The frozen bound `b0` is the k-th best distance of *actual* candidates,
//! so `b0 >= d_k`, the true k-th best.  Pruning and early abandoning are
//! strict (`> bound`), so every neighbour of the true top-k (ordered by
//! `(distance, id, timestamp)`) survives its unit's search and lands in that
//! unit's local top-k; the deterministic merge (concatenate in unit order,
//! stable sort, truncate to `k`) therefore returns exactly the global top-k.

use coconut_parallel::{effective_parallelism, parallel_map_tasks, CancelToken};
use coconut_series::distance::Neighbor;

use crate::query::{KnnHeap, QueryContext, QueryCost, SharedBound};
use crate::{IndexError, Result};

/// One independently searchable piece of an index.
///
/// Implementations are searched from worker threads (`Self: Sync`) with a
/// per-worker heap and cost context; both search methods must be
/// deterministic functions of the unit, the query and the heap's starting
/// ceiling.  The query is a parameter (rather than baked into the unit) so
/// one unit list serves a whole batch of queries.
pub trait SearchUnit: Sync {
    /// Fresh cost/fetch context for one phase over this unit.
    fn context(&self) -> QueryContext<'_>;

    /// Approximate probe: refine only the most promising region of the
    /// unit.  Used both as the seed phase of exact queries and as the whole
    /// of approximate queries.
    fn search_approximate(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()>;

    /// Exact contribution: refine every candidate of the unit that the
    /// heap's pruning bound cannot exclude.
    fn search_exact(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()>;
}

/// Deterministically merges per-part top-`k` candidate lists into the
/// global top-`k`: concatenate in part order, stable sort by the total
/// `(distance, id, timestamp)` neighbour order, truncate to `k`; costs are
/// summed in part order.
///
/// This is **the** merge of the engine — every round of
/// [`batch_knn_with`] folds its per-unit results through it — exposed so
/// that higher layers composing partial answers (the service-level
/// scatter-gather coordinator merging per-shard top-k) provably apply the
/// identical rule: as long as each part is itself a true top-`k` of a
/// disjoint slice of the candidate space, the merged list is the true
/// global top-`k` in the engine's order (see the module docs, "Why the
/// merged result is exact").
pub fn merge_topk(parts: Vec<(Vec<Neighbor>, QueryCost)>, k: usize) -> (Vec<Neighbor>, QueryCost) {
    let mut neighbors = Vec::new();
    let mut cost = QueryCost::default();
    for (part_neighbors, part_cost) in parts {
        neighbors.extend(part_neighbors);
        cost = cost.plus(&part_cost);
    }
    neighbors.sort();
    neighbors.truncate(k);
    (neighbors, cost)
}

/// Per-unit outcome of one pipeline round: the main-phase contribution of
/// the previous query and the seed contribution of the current one.
type RoundOut = (
    Option<(Vec<Neighbor>, QueryCost)>,
    Option<(Vec<Neighbor>, QueryCost)>,
);

/// Runs a batch of kNN queries over `units` with up to `parallelism`
/// workers (`1` = sequential, `0` = one per available core), returning each
/// query's merged top-`k` plus its exact summed cost, in query order.
///
/// Every query's answers **and** `QueryCost` are bit-identical to running
/// it alone through [`parallel_knn`] — and therefore to any other batch
/// composition — and the per-file I/O (page touches *and* their
/// sequential/random classification) matches issuing the queries one at a
/// time; see the module docs for the pipeline and the determinism argument.
/// The first unit error aborts the batch.
pub fn batch_knn<U: SearchUnit, Q: AsRef<[f32]> + Sync>(
    units: &[U],
    queries: &[Q],
    k: usize,
    parallelism: usize,
    exact: bool,
) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
    batch_knn_with(units, queries, k, parallelism, exact, &CancelToken::never())
}

/// [`batch_knn`] with cooperative cancellation.
///
/// The token is polled at every **round boundary** — before any unit starts
/// the next round of the pipeline — never mid-scan, so a batch that runs to
/// completion is bit-identical to [`batch_knn`] (the checks are pure reads).
/// On cancellation the batch unwinds with [`IndexError::Cancelled`] carrying
/// the summed cost of every phase that completed (finished queries plus the
/// seed phases of aborted ones), making the aborted work observable.
pub fn batch_knn_with<U: SearchUnit, Q: AsRef<[f32]> + Sync>(
    units: &[U],
    queries: &[Q],
    k: usize,
    parallelism: usize,
    exact: bool,
    cancel: &CancelToken,
) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
    let n = queries.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if units.is_empty() {
        return Ok(vec![(Vec::new(), QueryCost::default()); n]);
    }
    let workers = effective_parallelism(parallelism).min(units.len());
    // Exact queries over a single unit need no seed phase (there is no
    // cross-unit bound to share), mirroring `parallel_knn`.
    let two_phase = exact && units.len() > 1;
    let bounds: Vec<SharedBound> = (0..n).map(|_| SharedBound::new()).collect();
    let mut frozen: Vec<f64> = vec![f64::INFINITY; n];
    let mut seed_costs: Vec<QueryCost> = vec![QueryCost::default(); n];
    let mut results: Vec<(Vec<Neighbor>, QueryCost)> = Vec::with_capacity(n);

    for round in 0..=n {
        // Round r: main phase (exact refine, or the single approximate
        // phase) of query r-1, then seed of query r.  A unit's task runs
        // the two strictly in that order, which is exactly the per-file
        // access order of one-at-a-time execution.
        let main_q = round.checked_sub(1);
        let seed_q = (two_phase && round < n).then_some(round);
        if main_q.is_none() && seed_q.is_none() {
            // Single-phase batches have an empty round 0.
            continue;
        }
        // Round boundary: the only cancellation point.  Completed work is
        // summed into the error so aborted queries stay observable.
        if cancel.is_cancelled() {
            let mut partial_cost = QueryCost::default();
            for (_, cost) in &results {
                partial_cost = partial_cost.plus(cost);
            }
            for seed_cost in seed_costs.iter().take(n).skip(results.len()) {
                partial_cost = partial_cost.plus(seed_cost);
            }
            return Err(IndexError::Cancelled { partial_cost });
        }
        let frozen_ref = &frozen;
        let bounds_ref = &bounds;
        let outcomes = parallel_map_tasks(units, workers, |_, unit| -> Result<RoundOut> {
            let main = match main_q {
                Some(q) => {
                    let query = queries[q].as_ref();
                    let mut heap = KnnHeap::with_ceiling(k, frozen_ref[q]);
                    let mut ctx = unit.context();
                    if exact {
                        unit.search_exact(query, &mut heap, &mut ctx)?;
                    } else {
                        unit.search_approximate(query, &mut heap, &mut ctx)?;
                    }
                    bounds_ref[q].tighten(heap.bound());
                    Some((heap.into_sorted(), ctx.cost))
                }
                None => None,
            };
            let seed = match seed_q {
                Some(q) => {
                    let query = queries[q].as_ref();
                    let mut heap = KnnHeap::with_ceiling(k, f64::INFINITY);
                    let mut ctx = unit.context();
                    unit.search_approximate(query, &mut heap, &mut ctx)?;
                    bounds_ref[q].tighten(heap.bound());
                    Some((heap.into_sorted(), ctx.cost))
                }
                None => None,
            };
            Ok((main, seed))
        });
        let mut mains: Vec<(Vec<Neighbor>, QueryCost)> = Vec::new();
        let mut seeds: Vec<(Vec<Neighbor>, QueryCost)> = Vec::new();
        for outcome in outcomes {
            let (main, seed) = outcome?;
            mains.extend(main);
            seeds.extend(seed);
        }
        if let Some(q) = seed_q {
            // Freeze query q's bound for its refine round: merge the seed
            // candidates in unit order and publish the k-th best of the
            // union, exactly as the single-query seed phase does.
            let mut neighbors = Vec::new();
            let mut cost = QueryCost::default();
            for (unit_neighbors, unit_cost) in seeds {
                neighbors.extend(unit_neighbors);
                cost = cost.plus(&unit_cost);
            }
            neighbors.sort();
            if neighbors.len() >= k {
                bounds[q].tighten(neighbors[k - 1].squared_distance);
            }
            frozen[q] = bounds[q].get();
            seed_costs[q] = cost;
        }
        if let Some(q) = main_q {
            // Deterministic merge through [`merge_topk`]: concatenate in
            // unit order, stable sort (equal `(distance, id, timestamp)`
            // neighbours keep unit order), truncate to k; sum costs in
            // unit order, seeded with the query's seed-phase cost.
            let mut parts = Vec::with_capacity(mains.len() + 1);
            parts.push((Vec::new(), seed_costs[q]));
            parts.extend(mains);
            results.push(merge_topk(parts, k));
        }
    }
    Ok(results)
}

/// [`batch_knn_with`] over consecutive sub-batches of at most `chunk`
/// queries (`0` = the whole batch in one pipeline).
///
/// This is the executor behind the planner's **batch round shape** knob:
/// because a batch's per-query answers and costs are identical to
/// one-at-a-time execution, they are identical under *any* chunking — the
/// chunk size only bounds the per-pipeline bookkeeping (one `SharedBound`
/// and frozen-bound slot per in-flight query) and trades fork/join barriers
/// (`N + chunks` instead of `N + 1`).  On cancellation the partial cost
/// sums every completed chunk plus the aborting chunk's own partial cost,
/// exactly as an unchunked batch would report it.
pub fn batch_knn_chunked<U: SearchUnit, Q: AsRef<[f32]> + Sync>(
    units: &[U],
    queries: &[Q],
    k: usize,
    parallelism: usize,
    exact: bool,
    chunk: usize,
    cancel: &CancelToken,
) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
    let chunk = if chunk == 0 {
        queries.len().max(1)
    } else {
        chunk
    };
    let mut results: Vec<(Vec<Neighbor>, QueryCost)> = Vec::with_capacity(queries.len());
    for part in queries.chunks(chunk) {
        match batch_knn_with(units, part, k, parallelism, exact, cancel) {
            Ok(part_results) => results.extend(part_results),
            Err(IndexError::Cancelled { partial_cost }) => {
                let mut total = partial_cost;
                for (_, cost) in &results {
                    total = total.plus(cost);
                }
                return Err(IndexError::Cancelled {
                    partial_cost: total,
                });
            }
            Err(e) => return Err(e),
        }
    }
    Ok(results)
}

/// Runs a kNN query over `units` with up to `parallelism` workers
/// (`1` = sequential, `0` = one per available core) and returns the merged
/// top-`k` plus the exact summed cost.
///
/// Results and cost are identical at every `parallelism` setting; see the
/// module docs for the protocol and the determinism argument.  A single
/// query is exactly a batch of one, so this delegates to [`batch_knn`] —
/// which is what makes the batch path's per-query identity guarantee hold
/// by construction.
pub fn parallel_knn<U: SearchUnit>(
    units: &[U],
    query: &[f32],
    k: usize,
    parallelism: usize,
    exact: bool,
) -> Result<(Vec<Neighbor>, QueryCost)> {
    parallel_knn_with(units, query, k, parallelism, exact, &CancelToken::never())
}

/// [`parallel_knn`] with cooperative cancellation (a batch of one run
/// through [`batch_knn_with`]; the token is polled at its round
/// boundaries — between the seed and refine phases of an exact query).
pub fn parallel_knn_with<U: SearchUnit>(
    units: &[U],
    query: &[f32],
    k: usize,
    parallelism: usize,
    exact: bool,
    cancel: &CancelToken,
) -> Result<(Vec<Neighbor>, QueryCost)> {
    let mut results = batch_knn_with(units, &[query], k, parallelism, exact, cancel)?;
    Ok(results.pop().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryContext;

    /// A purely in-memory unit over `(id, timestamp, distance)` candidates.
    /// The "distance" of a candidate is its stored value plus the sum of the
    /// query slice (so different queries rank candidates differently).
    struct VecUnit {
        candidates: Vec<(u64, u64, f64)>,
    }

    impl VecUnit {
        fn distance(query: &[f32], d: f64) -> f64 {
            d + query.iter().map(|v| *v as f64).sum::<f64>()
        }
    }

    impl SearchUnit for VecUnit {
        fn context(&self) -> QueryContext<'_> {
            QueryContext::materialized()
        }

        fn search_approximate(
            &self,
            query: &[f32],
            heap: &mut KnnHeap,
            ctx: &mut QueryContext<'_>,
        ) -> Result<()> {
            // Probe only the first candidate (the unit's "target block").
            if let Some(&(id, ts, d)) = self.candidates.first() {
                ctx.cost.entries_examined += 1;
                heap.offer_at(id, ts, Self::distance(query, d));
            }
            Ok(())
        }

        fn search_exact(
            &self,
            query: &[f32],
            heap: &mut KnnHeap,
            ctx: &mut QueryContext<'_>,
        ) -> Result<()> {
            for &(id, ts, d) in &self.candidates {
                ctx.cost.entries_examined += 1;
                let d = Self::distance(query, d);
                if d > heap.bound() {
                    continue;
                }
                ctx.cost.entries_refined += 1;
                heap.offer_at(id, ts, d);
            }
            Ok(())
        }
    }

    fn units(seed: u64) -> Vec<VecUnit> {
        // Deterministic pseudo-random candidates spread over 5 units.
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..5)
            .map(|u| VecUnit {
                candidates: (0..40)
                    .map(|i| {
                        let id = u * 1000 + i;
                        let ts = next() % 7;
                        let d = (next() % 10_000) as f64 / 10.0;
                        (id, ts, d)
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_results_and_cost() {
        let units = units(42);
        let (seq, seq_cost) = parallel_knn(&units, &[], 7, 1, true).unwrap();
        for workers in [2, 4, 8] {
            let (par, par_cost) = parallel_knn(&units, &[], 7, workers, true).unwrap();
            assert_eq!(seq, par, "workers={workers}");
            assert_eq!(seq_cost, par_cost, "workers={workers}");
        }
        assert_eq!(seq.len(), 7);
        for w in seq.windows(2) {
            assert!(w[0] <= w[1], "results must be sorted");
        }
    }

    #[test]
    fn approximate_mode_merges_unit_probes() {
        let units = units(7);
        let (seq, _) = parallel_knn(&units, &[], 3, 1, false).unwrap();
        let (par, _) = parallel_knn(&units, &[], 3, 8, false).unwrap();
        assert_eq!(seq, par);
        // Approximate mode probes one candidate per unit: 5 candidates total.
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn exact_answer_is_the_true_top_k() {
        let units = units(99);
        let mut all: Vec<Neighbor> = units
            .iter()
            .flat_map(|u| u.candidates.iter())
            .map(|&(id, ts, d)| Neighbor::new_at(id, ts, d))
            .collect();
        all.sort();
        all.truncate(9);
        let (got, _) = parallel_knn(&units, &[], 9, 4, true).unwrap();
        assert_eq!(got, all);
    }

    #[test]
    fn empty_unit_list_is_empty_answer() {
        let none: Vec<VecUnit> = Vec::new();
        let (nn, cost) = parallel_knn(&none, &[], 3, 4, true).unwrap();
        assert!(nn.is_empty());
        assert_eq!(cost, QueryCost::default());
        let batch = batch_knn(&none, &[vec![0.0f32], vec![1.0]], 3, 4, true).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(batch
            .iter()
            .all(|(nn, c)| nn.is_empty() && *c == QueryCost::default()));
    }

    /// Tentpole invariant at the engine level: a batch of N queries returns
    /// bit-identical per-query answers and costs to N one-at-a-time calls,
    /// at every worker count, in exact and approximate mode.
    #[test]
    fn batch_matches_one_at_a_time_exactly() {
        let units = units(1234);
        let queries: Vec<Vec<f32>> = (0..7)
            .map(|q| vec![q as f32 * 0.5, -(q as f32), 1.0])
            .collect();
        for exact in [true, false] {
            for k in [1usize, 4, 9] {
                let singles: Vec<_> = queries
                    .iter()
                    .map(|q| parallel_knn(&units, q, k, 1, exact).unwrap())
                    .collect();
                for workers in [1, 2, 4, 8] {
                    let batch = batch_knn(&units, &queries, k, workers, exact).unwrap();
                    assert_eq!(
                        batch, singles,
                        "batch must match singles (exact={exact}, k={k}, workers={workers})"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_over_single_unit_skips_the_seed_phase_like_singles() {
        // One unit: exact queries are single-phase; the batch must agree.
        let single_unit = vec![units(5).into_iter().next().unwrap()];
        let queries: Vec<Vec<f32>> = vec![vec![0.0], vec![2.0], vec![-1.5]];
        let singles: Vec<_> = queries
            .iter()
            .map(|q| parallel_knn(&single_unit, q, 3, 1, true).unwrap())
            .collect();
        let batch = batch_knn(&single_unit, &queries, 3, 4, true).unwrap();
        assert_eq!(batch, singles);
    }

    #[test]
    fn chunked_batch_matches_the_unchunked_batch() {
        let units = units(77);
        let queries: Vec<Vec<f32>> = (0..11).map(|q| vec![q as f32, 0.5]).collect();
        for exact in [true, false] {
            let whole = batch_knn(&units, &queries, 4, 2, exact).unwrap();
            for chunk in [0, 1, 2, 3, 5, 11, 64] {
                let chunked =
                    batch_knn_chunked(&units, &queries, 4, 2, exact, chunk, &CancelToken::never())
                        .unwrap();
                assert_eq!(chunked, whole, "chunk={chunk} exact={exact}");
            }
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let units = units(8);
        let none: Vec<Vec<f32>> = Vec::new();
        assert!(batch_knn(&units, &none, 3, 4, true).unwrap().is_empty());
    }

    #[test]
    fn pre_cancelled_token_aborts_before_any_work() {
        let units = units(21);
        let token = CancelToken::new();
        token.cancel();
        let queries = vec![vec![0.0f32], vec![1.0]];
        match batch_knn_with(&units, &queries, 3, 2, true, &token) {
            Err(IndexError::Cancelled { partial_cost }) => {
                assert_eq!(partial_cost, QueryCost::default(), "no round ran");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // A live token is invisible: same answers and costs as no token.
        let live = CancelToken::new();
        let with = batch_knn_with(&units, &queries, 3, 2, true, &live).unwrap();
        let without = batch_knn(&units, &queries, 3, 2, true).unwrap();
        assert_eq!(with, without);
    }

    /// A unit that trips the shared token from inside its seed probe, so the
    /// *next* round boundary observes the cancellation deterministically.
    struct TrippingUnit {
        inner: VecUnit,
        token: CancelToken,
    }

    impl SearchUnit for TrippingUnit {
        fn context(&self) -> QueryContext<'_> {
            self.inner.context()
        }

        fn search_approximate(
            &self,
            query: &[f32],
            heap: &mut KnnHeap,
            ctx: &mut QueryContext<'_>,
        ) -> Result<()> {
            self.token.cancel();
            self.inner.search_approximate(query, heap, ctx)
        }

        fn search_exact(
            &self,
            query: &[f32],
            heap: &mut KnnHeap,
            ctx: &mut QueryContext<'_>,
        ) -> Result<()> {
            self.inner.search_exact(query, heap, ctx)
        }
    }

    #[test]
    fn mid_batch_cancellation_stops_at_the_round_boundary_with_partial_cost() {
        let token = CancelToken::new();
        let units: Vec<TrippingUnit> = units(31)
            .into_iter()
            .map(|inner| TrippingUnit {
                inner,
                token: token.clone(),
            })
            .collect();
        let queries = vec![vec![0.0f32], vec![1.0], vec![2.0]];
        // Round 0 seeds query 0 (tripping the token); the round-1 boundary
        // must abort with exactly the seed phase's cost: one examined entry
        // per unit.
        match batch_knn_with(&units, &queries, 3, 4, true, &token) {
            Err(IndexError::Cancelled { partial_cost }) => {
                assert_eq!(partial_cost.entries_examined, units.len() as u64);
                assert_eq!(partial_cost.entries_refined, 0, "refine never ran");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }
}
