//! Index entries and their on-disk layout.
//!
//! Every Coconut index stores *entries*: the sortable summarization key, the
//! series id in the raw data file, the arrival timestamp (zero for static
//! datasets) and — in *materialized* variants — the full series values.

use coconut_sax::{InvSaxKey, SortableSummarizer};
use coconut_series::{Series, Timestamp};
use coconut_storage::RecordLayout;

/// A single index entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesEntry {
    /// Raw value of the sortable interleaved SAX key.
    pub key: u128,
    /// Series id in the raw data file.
    pub id: u64,
    /// Arrival timestamp (zero for static datasets).
    pub timestamp: Timestamp,
    /// Full series values when materialized; empty when non-materialized.
    pub values: Vec<f32>,
}

impl SeriesEntry {
    /// Builds an entry from a series using `summarizer`, materializing the
    /// values when `materialized` is set.
    pub fn from_series(
        series: &Series,
        timestamp: Timestamp,
        summarizer: &SortableSummarizer,
        materialized: bool,
    ) -> Self {
        Self::from_keyed(
            summarizer.key(&series.values),
            series,
            timestamp,
            materialized,
        )
    }

    /// Builds an entry from a series whose sortable key was already computed
    /// (e.g. by a batched summarization pass).  Single source of truth for
    /// the key/id/timestamp/values field mapping.
    pub fn from_keyed(
        key: InvSaxKey,
        series: &Series,
        timestamp: Timestamp,
        materialized: bool,
    ) -> Self {
        SeriesEntry {
            key: key.raw(),
            id: series.id,
            timestamp,
            values: if materialized {
                series.values.clone()
            } else {
                Vec::new()
            },
        }
    }

    /// Builds entries for a whole batch of series in one call, summarizing
    /// with up to `parallelism` worker threads (`1` = sequential, `0` = one
    /// per available core).
    ///
    /// Output order matches `series`; the result is identical to calling
    /// [`SeriesEntry::from_series`] per element at every worker count.
    pub fn from_series_batch(
        series: &[Series],
        timestamp: Timestamp,
        summarizer: &SortableSummarizer,
        materialized: bool,
        parallelism: usize,
    ) -> Vec<Self> {
        let keys = summarizer.keys_batch(series, parallelism);
        series
            .iter()
            .zip(keys)
            .map(|(s, key)| Self::from_keyed(key, s, timestamp, materialized))
            .collect()
    }

    /// Reconstructs the typed [`InvSaxKey`] of this entry.
    pub fn invsax(&self, key_width: u32) -> InvSaxKey {
        InvSaxKey::from_raw(self.key, key_width)
    }

    /// Returns `true` when the entry carries the full series values.
    pub fn is_materialized(&self) -> bool {
        !self.values.is_empty()
    }
}

/// On-disk layout for [`SeriesEntry`] records.
///
/// `series_len == 0` encodes a non-materialized layout (no values stored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryLayout {
    /// Width of the sortable key in bits (for reconstructing [`InvSaxKey`]s).
    pub key_width: u32,
    /// Number of stored values per entry (0 for non-materialized layouts).
    pub series_len: usize,
}

impl EntryLayout {
    /// Layout for non-materialized entries.
    pub fn non_materialized(key_width: u32) -> Self {
        EntryLayout {
            key_width,
            series_len: 0,
        }
    }

    /// Layout for materialized entries carrying `series_len` values.
    pub fn materialized(key_width: u32, series_len: usize) -> Self {
        assert!(series_len > 0);
        EntryLayout {
            key_width,
            series_len,
        }
    }

    /// Returns `true` when the layout stores full series values.
    pub fn is_materialized(&self) -> bool {
        self.series_len > 0
    }
}

impl RecordLayout for EntryLayout {
    type Record = SeriesEntry;
    type Key = (u128, u64);

    fn record_size(&self) -> usize {
        16 + 8 + 8 + 4 * self.series_len
    }

    fn encode(&self, record: &SeriesEntry, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), self.record_size());
        debug_assert_eq!(record.values.len(), self.series_len);
        buf[..16].copy_from_slice(&record.key.to_be_bytes());
        buf[16..24].copy_from_slice(&record.id.to_be_bytes());
        buf[24..32].copy_from_slice(&record.timestamp.to_be_bytes());
        let mut off = 32;
        for v in &record.values {
            buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
            off += 4;
        }
    }

    fn decode(&self, buf: &[u8]) -> SeriesEntry {
        debug_assert_eq!(buf.len(), self.record_size());
        let mut k = [0u8; 16];
        k.copy_from_slice(&buf[..16]);
        let mut id = [0u8; 8];
        id.copy_from_slice(&buf[16..24]);
        let mut ts = [0u8; 8];
        ts.copy_from_slice(&buf[24..32]);
        let values = buf[32..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        SeriesEntry {
            key: u128::from_be_bytes(k),
            id: u64::from_be_bytes(id),
            timestamp: u64::from_be_bytes(ts),
            values,
        }
    }

    fn key(&self, record: &SeriesEntry) -> Self::Key {
        (record.key, record.id)
    }

    fn columns(&self) -> coconut_storage::ColumnSpec {
        // The 16-byte big-endian invSAX key is front-coded (sorted
        // neighbors share long prefixes), id and timestamp are delta-varint
        // columns, and the f32 values are the raw tail key-only scans skip.
        coconut_storage::ColumnSpec {
            prefix_len: 16,
            int_fields: 2,
            tail_len: 4 * self.series_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_sax::SaxConfig;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};

    #[test]
    fn entry_roundtrip_non_materialized() {
        let layout = EntryLayout::non_materialized(128);
        let e = SeriesEntry {
            key: 12345678901234567890,
            id: 7,
            timestamp: 99,
            values: vec![],
        };
        let mut buf = vec![0u8; layout.record_size()];
        layout.encode(&e, &mut buf);
        assert_eq!(layout.decode(&buf), e);
        assert_eq!(layout.record_size(), 32);
        assert!(!layout.is_materialized());
    }

    #[test]
    fn entry_roundtrip_materialized() {
        let layout = EntryLayout::materialized(64, 16);
        let e = SeriesEntry {
            key: 42,
            id: 3,
            timestamp: 1,
            values: (0..16).map(|i| i as f32 * 0.5).collect(),
        };
        let mut buf = vec![0u8; layout.record_size()];
        layout.encode(&e, &mut buf);
        assert_eq!(layout.decode(&buf), e);
        assert_eq!(layout.record_size(), 32 + 64);
        assert!(layout.is_materialized());
    }

    #[test]
    fn from_series_respects_materialization() {
        let config = SaxConfig::new(64, 8, 8);
        let summarizer = SortableSummarizer::new(config);
        let mut gen = RandomWalkGenerator::new(64, 4);
        let s = gen.next_series();
        let mat = SeriesEntry::from_series(&s, 5, &summarizer, true);
        let non = SeriesEntry::from_series(&s, 5, &summarizer, false);
        assert_eq!(mat.key, non.key);
        assert_eq!(mat.id, s.id);
        assert!(mat.is_materialized());
        assert!(!non.is_materialized());
        assert_eq!(mat.values, s.values);
        assert_eq!(mat.invsax(config.key_bits()).raw(), mat.key);
    }

    #[test]
    fn layout_key_orders_by_key_then_id() {
        let layout = EntryLayout::non_materialized(128);
        let a = SeriesEntry {
            key: 1,
            id: 9,
            timestamp: 0,
            values: vec![],
        };
        let b = SeriesEntry {
            key: 2,
            id: 1,
            timestamp: 0,
            values: vec![],
        };
        assert!(layout.key(&a) < layout.key(&b));
    }
}
