//! # coconut-ctree
//!
//! CoconutTree (CTree): the read-optimized, compact and contiguous data
//! series index of the Coconut infrastructure.
//!
//! A CTree is bulk-loaded bottom-up: every series in the dataset is
//! summarized into its sortable interleaved SAX key, the `(key, id[, series])`
//! entries are sorted with a bounded-memory external merge sort, and the
//! sorted stream is packed into contiguous leaf blocks (to a configurable
//! fill factor).  Construction therefore performs only sequential I/O, and
//! the resulting index is fully dense and contiguous — the properties the
//! paper contrasts with the sparse, random-I/O-built ADS+ baseline.
//!
//! This crate also provides the building blocks shared with CoconutLSM and
//! the streaming partitions:
//!
//! * [`entry`] — the on-disk index entry and its
//!   [`coconut_storage::RecordLayout`].
//! * [`sorted_file`] — a sorted, block-indexed partition with approximate and
//!   exact kNN search (skip-sequential scan with MINDIST pruning).
//! * [`query`] — query-side helpers: the kNN result heap, the shared atomic
//!   best-so-far bound and the raw-dataset refinement context used by
//!   non-materialized indexes.
//! * [`engine`] — the concurrent query engine: deterministic parallel
//!   fan-out over search units (runs, shards, partitions) with per-worker
//!   heaps merged around a [`query::SharedBound`], for single queries
//!   ([`parallel_knn`]) and batches ([`batch_knn`], a round pipeline whose
//!   per-query answers and costs are bit-identical to one-at-a-time
//!   execution).
//! * [`kernels`] — the dispatch surface for the explicit SIMD
//!   distance/znorm/PAA backends (scalar / SSE2 / AVX2, runtime-detected,
//!   `COCONUT_KERNELS` override) used by every scan in this crate and the
//!   index crates built on it; bit-identical across backends by
//!   construction.
//! * [`raw`] — backend-aware raw-series fetching for non-materialized
//!   refinement ([`RawSeriesSource`]: positioned reads or an
//!   `MADV_RANDOM`-advised mapping of the dataset file, same accounting).
//! * [`tree`] — the [`CTree`] itself: bulk build, optional delta inserts with
//!   fill-factor-driven merge, and query entry points.

pub mod engine;
pub mod entry;
pub mod kernels;
pub mod planner;
pub mod query;
pub mod raw;
pub mod sorted_file;
pub mod tree;

pub use engine::{
    batch_knn, batch_knn_chunked, batch_knn_with, parallel_knn, parallel_knn_with, SearchUnit,
};
pub use entry::{EntryLayout, SeriesEntry};
pub use kernels::KernelBackend;
pub use planner::{PlanDecision, PlanReport, PlannerInputs, PlannerMode};
pub use query::{KnnHeap, QueryContext, QueryCost, SharedBound};
pub use raw::RawSeriesSource;
pub use sorted_file::{BlockMeta, SortedSeriesFile};
pub use tree::{BuildStats, CTree, CTreeConfig};

use coconut_series::SeriesError;
use coconut_storage::StorageError;

/// Errors produced by the CTree crate (and reused by the LSM / streaming
/// layers built on top of it).
#[derive(Debug)]
pub enum IndexError {
    /// Error from the storage substrate.
    Storage(StorageError),
    /// Error from the series substrate (raw data file access).
    Series(SeriesError),
    /// The index was asked to do something inconsistent with its config.
    Config(String),
    /// The operation was cancelled cooperatively (deadline exceeded or an
    /// explicit cancel, observed at a `SearchUnit` round boundary).  Carries
    /// the cost of the work performed before the abort so callers can
    /// surface partial accounting instead of losing it.
    Cancelled {
        /// Cost accumulated before the cancellation was observed.
        partial_cost: query::QueryCost,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Storage(e) => write!(f, "storage error: {e}"),
            IndexError::Series(e) => write!(f, "series error: {e}"),
            IndexError::Config(msg) => write!(f, "configuration error: {msg}"),
            IndexError::Cancelled { .. } => write!(f, "operation cancelled (deadline exceeded)"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Storage(e) => Some(e),
            IndexError::Series(e) => Some(e),
            IndexError::Config(_) => None,
            IndexError::Cancelled { .. } => None,
        }
    }
}

impl From<StorageError> for IndexError {
    fn from(e: StorageError) -> Self {
        IndexError::Storage(e)
    }
}

impl From<SeriesError> for IndexError {
    fn from(e: SeriesError) -> Self {
        IndexError::Series(e)
    }
}

/// Convenience alias used throughout the index crates.
pub type Result<T> = std::result::Result<T, IndexError>;
