//! The CoconutTree (CTree) index.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::kernels::euclidean_early_abandon;
use coconut_parallel::effective_parallelism;
use coconut_sax::{SaxConfig, SortableSummarizer};
use coconut_series::dataset::Dataset;
use coconut_series::distance::Neighbor;
use coconut_series::{Series, Timestamp};
use coconut_storage::dynsort::DynExternalSorter;
use coconut_storage::iostats::{IoStatsSnapshot, SharedIoStats};
use coconut_storage::page::DEFAULT_PAGE_SIZE;
use coconut_storage::IoBackend;

use crate::entry::{EntryLayout, SeriesEntry};
use crate::planner::{self, PlannedAnswer, PlannedBatch, PlannerInputs, PlannerMode};
use crate::query::{KnnHeap, QueryContext, QueryCost};
use crate::raw::RawSeriesSource;
use crate::sorted_file::SortedSeriesFile;
use crate::{IndexError, Result};

/// Configuration of a CoconutTree.
#[derive(Debug, Clone, Copy)]
pub struct CTreeConfig {
    /// Summarization configuration.
    pub sax: SaxConfig,
    /// Whether the index embeds full series values (materialized) or only
    /// summarizations + pointers into the raw data file.
    pub materialized: bool,
    /// Leaf fill factor in `(0, 1]`: the fraction of each leaf block filled
    /// at bulk-load time.  Lower values leave slack that absorbs later
    /// inserts before a merge is needed, at the cost of a larger index.
    pub fill_factor: f64,
    /// Nominal leaf block size in bytes.
    pub leaf_block_bytes: usize,
    /// Memory budget for external sorting during construction (bytes).
    pub memory_budget_bytes: usize,
    /// Page size used for I/O accounting.
    pub page_size: usize,
    /// Worker threads for summarization and run-generation sorting during
    /// bulk load (`1` = sequential, `0` = one per available core).  The
    /// produced index is byte-identical at every setting.
    pub parallelism: usize,
    /// Worker threads for query fan-out (`1` = sequential, `0` = one per
    /// available core).  Results and cost counters are identical at every
    /// setting; see `crate::engine`.
    pub query_parallelism: usize,
    /// Overlap computation with I/O during bulk load and delta merges
    /// (default `true`): run generation double-buffers through a dedicated
    /// writer worker and merge readers prefetch.  A pure performance knob —
    /// the index files, query answers and `IoStats` totals are identical at
    /// either setting; see
    /// `coconut_storage::ExternalSortConfig::io_overlap`.
    pub io_overlap: bool,
    /// Read backend for the leaf level and the sort's spill runs (default
    /// `pread`; `mmap` serves block scans from a read-only file mapping).
    /// A pure performance knob — the index files, answers, `QueryCost` and
    /// `IoStats` totals are identical at either setting; see
    /// `coconut_storage::IoBackend`.
    pub io_backend: IoBackend,
    /// Query planning mode (default [`PlannerMode::Fixed`]).  `Fixed` uses
    /// the knobs above verbatim; `Adaptive` lets the per-query cost-model
    /// planner override the pure performance knobs (fan-out, read-ahead
    /// gate, batch shape) from observed state.  Answers, `QueryCost` and
    /// `IoStats` are identical in both modes; see `crate::planner`.
    pub planner: PlannerMode,
    /// Minimum contiguous byte range for which read-ahead engages on delta
    /// merges (default `coconut_storage::PREFETCH_MIN_BYTES`;
    /// `usize::MAX` disables read-ahead).  A pure performance knob.
    pub prefetch_min_bytes: usize,
    /// On-disk compression of the leaf level and the sort's spill runs
    /// (default `off`).  `prefix` front-codes the sorted invSAX keys and
    /// delta-codes ids/timestamps into ~4 KiB blocks.  Answers,
    /// `QueryCost` and the logical `IoStats` view are identical at either
    /// setting; only the physical bytes (and the on-disk footprint the
    /// adaptive planner sees) shrink.  See `coconut_storage::Compression`.
    pub compression: coconut_storage::Compression,
}

impl CTreeConfig {
    /// A reasonable default configuration for the given summarization.
    pub fn new(sax: SaxConfig) -> Self {
        CTreeConfig {
            sax,
            materialized: false,
            fill_factor: 1.0,
            leaf_block_bytes: 16 * 1024,
            memory_budget_bytes: 32 << 20,
            page_size: DEFAULT_PAGE_SIZE,
            parallelism: 1,
            query_parallelism: 1,
            io_overlap: true,
            io_backend: IoBackend::Pread,
            planner: PlannerMode::Fixed,
            prefetch_min_bytes: coconut_storage::PREFETCH_MIN_BYTES,
            compression: coconut_storage::Compression::Off,
        }
    }

    /// Enables materialization.
    pub fn materialized(mut self, yes: bool) -> Self {
        self.materialized = yes;
        self
    }

    /// Sets the leaf fill factor.
    pub fn with_fill_factor(mut self, fill_factor: f64) -> Self {
        assert!(fill_factor > 0.0 && fill_factor <= 1.0);
        self.fill_factor = fill_factor;
        self
    }

    /// Sets the external-sort memory budget in bytes.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget_bytes = bytes.max(1024);
        self
    }

    /// Sets the bulk-load parallelism (`1` = sequential, `0` = all cores).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Sets the query fan-out parallelism (`1` = sequential, `0` = all
    /// cores).  A pure performance knob: answers and cost are identical at
    /// every setting.
    pub fn with_query_parallelism(mut self, workers: usize) -> Self {
        self.query_parallelism = workers;
        self
    }

    /// Enables or disables overlapped build I/O (default on).  A pure
    /// performance knob; see [`CTreeConfig::io_overlap`].
    pub fn with_io_overlap(mut self, overlap: bool) -> Self {
        self.io_overlap = overlap;
        self
    }

    /// Selects the read backend (default `pread`).  A pure performance
    /// knob; see [`CTreeConfig::io_backend`].
    pub fn with_io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = backend;
        self
    }

    /// Selects the query planning mode (default `Fixed`).  A pure
    /// performance knob; see [`CTreeConfig::planner`].
    pub fn with_planner(mut self, mode: PlannerMode) -> Self {
        self.planner = mode;
        self
    }

    /// Sets the read-ahead engagement gate for delta merges in bytes
    /// (`usize::MAX` disables read-ahead).  A pure performance knob; see
    /// [`CTreeConfig::prefetch_min_bytes`].
    pub fn with_prefetch_min_bytes(mut self, bytes: usize) -> Self {
        self.prefetch_min_bytes = bytes;
        self
    }

    /// Selects the on-disk compression (default `off`).  Answers, costs
    /// and the logical `IoStats` view are identical either way; see
    /// [`CTreeConfig::compression`].
    pub fn with_compression(mut self, compression: coconut_storage::Compression) -> Self {
        self.compression = compression;
        self
    }

    /// The entry layout implied by this configuration.
    pub fn layout(&self) -> EntryLayout {
        if self.materialized {
            EntryLayout::materialized(self.sax.key_bits(), self.sax.series_len)
        } else {
            EntryLayout::non_materialized(self.sax.key_bits())
        }
    }

    /// Number of entries stored per leaf block at bulk-load time.
    pub fn entries_per_block(&self) -> usize {
        let entry_size = coconut_storage::RecordLayout::record_size(&self.layout());
        let full = (self.leaf_block_bytes / entry_size).max(1);
        ((full as f64 * self.fill_factor).floor() as usize).max(1)
    }
}

/// Statistics collected while building an index.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Wall-clock build time.
    pub elapsed: Duration,
    /// I/O performed during the build.
    pub io: IoStatsSnapshot,
    /// Number of external-sort spill runs generated (0 = in-memory sort).
    pub sort_runs: usize,
    /// Index footprint on disk in bytes.
    pub footprint_bytes: u64,
    /// Number of entries indexed.
    pub entries: u64,
}

/// The CoconutTree: a compact, contiguous, bulk-loaded data series index.
pub struct CTree {
    config: CTreeConfig,
    summarizer: SortableSummarizer,
    file: SortedSeriesFile,
    raw: Option<RawSeriesSource>,
    stats: SharedIoStats,
    dir: PathBuf,
    build_stats: BuildStats,
    /// Delta inserts awaiting the next merge (kept sorted lazily).
    delta: Vec<SeriesEntry>,
    /// Maximum delta entries before a merge is triggered, derived from the
    /// fill-factor slack.
    delta_capacity: usize,
    generation: u64,
    /// Number of delta merges performed so far.
    pub merges: u64,
}

impl std::fmt::Debug for CTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CTree")
            .field("entries", &self.len())
            .field("materialized", &self.config.materialized)
            .field("fill_factor", &self.config.fill_factor)
            .finish()
    }
}

impl CTree {
    /// Bulk-loads a CTree from every series in `dataset`, storing the index
    /// files in `dir` and charging all I/O to `stats`.
    pub fn build(
        dataset: &Dataset,
        config: CTreeConfig,
        dir: &Path,
        stats: SharedIoStats,
    ) -> Result<CTree> {
        if dataset.series_len() != config.sax.series_len {
            return Err(IndexError::Config(format!(
                "dataset series length {} does not match SAX config {}",
                dataset.series_len(),
                config.sax.series_len
            )));
        }
        let start = Instant::now();
        let before = stats.snapshot();
        let summarizer = SortableSummarizer::new(config.sax);
        let layout = config.layout();

        // Pass 1: sequential scan of the raw data file, summarizing series
        // into entries in parallel batches (timestamp 0 for static
        // datasets).  The staging batch is capped at an eighth of the sort
        // budget (series + entries are alive together during a refill, so
        // the stage contributes at most ~a quarter of the budget on top of
        // the sorter's own half-budget chunk).
        let materialized = config.materialized;
        let batch_records = (config.memory_budget_bytes
            / 8
            / coconut_storage::RecordLayout::record_size(&layout).max(1))
        .clamp(256, 1 << 16);
        let mut entries = BatchedEntryIter::new(
            dataset.iter()?,
            &summarizer,
            materialized,
            config.parallelism,
            batch_records,
        );

        // Pass 2: bounded-memory external sort by interleaved key, with
        // run-generation chunks sorted by the same worker pool.
        let mut sorter =
            DynExternalSorter::new(layout, config.memory_budget_bytes, dir, Arc::clone(&stats))
                .with_page_size(config.page_size)
                .with_parallelism(config.parallelism)
                .with_io_overlap(config.io_overlap)
                .with_io_backend(config.io_backend)
                .with_compression(config.compression)
                .with_prefetch_min_bytes(config.prefetch_min_bytes);
        let sorted = sorter.sort(&mut entries)?;
        if let Some(err) = entries.error.take() {
            return Err(err);
        }
        let sort_runs = sorted.runs_generated;

        // Pass 3: pack the sorted stream into contiguous leaf blocks.
        let file = SortedSeriesFile::build_from_sorted_compressed(
            dir.join("ctree-leaves.run"),
            layout,
            config.sax,
            sorted.map(|r| r.map_err(IndexError::from)),
            config.entries_per_block(),
            Arc::clone(&stats),
            config.page_size,
            config.io_backend,
            config.compression,
        )?;

        let entries_count = file.len();
        let footprint = file.physical_byte_size();
        let delta_capacity = Self::delta_capacity_for(&config, entries_count);
        let build_stats = BuildStats {
            elapsed: start.elapsed(),
            io: stats.snapshot().since(&before),
            sort_runs,
            footprint_bytes: footprint,
            entries: entries_count,
        };
        Ok(CTree {
            config,
            summarizer,
            file,
            raw: if materialized {
                None
            } else {
                // Raw-series refinement fetches flow through the same
                // io_backend knob as the index's own files.
                Some(RawSeriesSource::new(dataset.reopen()?, config.io_backend)?)
            },
            stats,
            dir: dir.to_path_buf(),
            build_stats,
            delta: Vec::new(),
            delta_capacity,
            generation: 0,
            merges: 0,
        })
    }

    /// Builds a CTree directly from in-memory series (convenience used by
    /// tests, examples and the streaming partitions).  Non-materialized
    /// configurations additionally write the raw data file into `dir`.
    pub fn build_from_series(
        series: &[Series],
        config: CTreeConfig,
        dir: &Path,
        stats: SharedIoStats,
    ) -> Result<CTree> {
        let dataset = Dataset::create_from_series(dir.join("ctree-raw.bin"), series)?;
        Self::build(&dataset, config, dir, stats)
    }

    fn delta_capacity_for(config: &CTreeConfig, entries: u64) -> usize {
        let slack = (1.0 - config.fill_factor).max(0.0);
        ((entries as f64 * slack) as usize).max(64)
    }

    /// Configuration the tree was built with.
    pub fn config(&self) -> &CTreeConfig {
        &self.config
    }

    /// Number of indexed entries (including un-merged delta inserts).
    pub fn len(&self) -> u64 {
        self.file.len() + self.delta.len() as u64
    }

    /// Returns `true` when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk footprint of the index in bytes — the *physical* size, so
    /// compressed trees report (and the adaptive planner's residency test
    /// sees) their real, smaller working set.  Equals the logical size when
    /// compression is off.
    pub fn footprint_bytes(&self) -> u64 {
        self.file.physical_byte_size()
    }

    /// Build statistics.
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// The shared I/O statistics handle.
    pub fn io_stats(&self) -> &SharedIoStats {
        &self.stats
    }

    /// Number of leaf blocks.
    pub fn num_blocks(&self) -> usize {
        self.file.blocks().len()
    }

    fn query_context(&self) -> QueryContext<'_> {
        match &self.raw {
            Some(raw) => QueryContext::non_materialized(raw, Arc::clone(&self.stats)),
            None => QueryContext::materialized(),
        }
    }

    fn query_units(&self, window: Option<(Timestamp, Timestamp)>) -> Vec<CTreeUnit<'_>> {
        let mut units = vec![CTreeUnit {
            tree: self,
            window,
            part: CTreePart::Leaves,
        }];
        if !self.delta.is_empty() {
            units.push(CTreeUnit {
                tree: self,
                window,
                part: CTreePart::Delta,
            });
        }
        units
    }

    /// Captures a deterministic snapshot of the observed state the planner
    /// decides from.  Every field is an integer read at capture time; the
    /// decision itself is the pure function `crate::planner::plan`.
    fn planner_inputs(&self, k: usize, batch_width: usize, exact: bool) -> PlannerInputs {
        let probe = planner::host_probe();
        let snap = self.stats.snapshot();
        PlannerInputs {
            footprint_bytes: self.footprint_bytes(),
            cache_budget_bytes: probe.cache_budget_bytes,
            unit_count: self.query_units(None).len(),
            run_count: 1,
            cores: probe.cores,
            k,
            batch_width,
            exact,
            random_read_permille: planner::read_permille(&snap),
        }
    }

    /// The read-ahead gate a delta merge should use: the configured value in
    /// `Fixed` mode, or the planner's choice from a fresh state snapshot in
    /// `Adaptive` mode.
    fn merge_prefetch_gate(&self) -> usize {
        match self.config.planner {
            PlannerMode::Fixed => self.config.prefetch_min_bytes,
            PlannerMode::Adaptive => {
                planner::plan(&self.planner_inputs(0, 1, true)).effective_prefetch_gate()
            }
        }
    }

    /// Like [`CTree::knn_with`], but routed through the query planner when
    /// the config selects [`PlannerMode::Adaptive`]: the fan-out knob comes
    /// from a [`planner::PlanReport`] captured for this query, returned alongside the
    /// answer.  In `Fixed` mode this is exactly `knn_with` (byte-identical
    /// path) and the report is `None`.  Answers and cost are identical in
    /// both modes.
    pub fn knn_planned(
        &self,
        query: &[f32],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<PlannedAnswer> {
        match self.config.planner {
            PlannerMode::Fixed => self.knn_with(query, k, exact, cancel).map(|r| (r, None)),
            PlannerMode::Adaptive => {
                let report = planner::plan_report(self.planner_inputs(k, 1, exact));
                let units = self.query_units(None);
                let answer = crate::engine::parallel_knn_with(
                    &units,
                    query,
                    k,
                    report.decision.query_parallelism,
                    exact,
                    cancel,
                )?;
                Ok((answer, Some(report)))
            }
        }
    }

    /// Like [`CTree::batch_knn_with`], but routed through the query planner
    /// when the config selects [`PlannerMode::Adaptive`]: fan-out and batch
    /// round shape come from a [`planner::PlanReport`] captured for this batch.  In
    /// `Fixed` mode this is exactly `batch_knn_with` and the report is
    /// `None`.  Answers and cost are identical in both modes.
    pub fn batch_knn_planned(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<PlannedBatch> {
        match self.config.planner {
            PlannerMode::Fixed => self
                .batch_knn_with(queries, k, exact, cancel)
                .map(|r| (r, None)),
            PlannerMode::Adaptive => {
                let report = planner::plan_report(self.planner_inputs(k, queries.len(), exact));
                let units = self.query_units(None);
                let answers = crate::engine::batch_knn_chunked(
                    &units,
                    queries,
                    k,
                    report.decision.query_parallelism,
                    exact,
                    report.decision.batch_chunk,
                    cancel,
                )?;
                Ok((answers, Some(report)))
            }
        }
    }

    fn search_delta(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        window: Option<(Timestamp, Timestamp)>,
    ) {
        for entry in &self.delta {
            if let Some((start, end)) = window {
                if entry.timestamp < start || entry.timestamp > end {
                    continue;
                }
            }
            if entry.is_materialized() {
                if let Some(d) = euclidean_early_abandon(query, &entry.values, heap.bound()) {
                    heap.offer_at(entry.id, entry.timestamp, d);
                }
            }
        }
    }

    /// Approximate kNN search.
    pub fn approximate_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        self.approximate_knn_window(query, k, None)
    }

    /// Approximate kNN search restricted to a timestamp window.
    pub fn approximate_knn_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let units = self.query_units(window);
        crate::engine::parallel_knn(&units, query, k, self.config.query_parallelism, false)
    }

    /// Exact kNN search.
    pub fn exact_knn(&self, query: &[f32], k: usize) -> Result<(Vec<Neighbor>, QueryCost)> {
        self.exact_knn_window(query, k, None)
    }

    /// Exact kNN search restricted to a timestamp window.
    pub fn exact_knn_window(
        &self,
        query: &[f32],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let units = self.query_units(window);
        crate::engine::parallel_knn(&units, query, k, self.config.query_parallelism, true)
    }

    /// Runs a batch of kNN queries through the engine's round pipeline.
    ///
    /// Every query's answers and `QueryCost` are bit-identical to issuing
    /// it alone via [`CTree::exact_knn`] / [`CTree::approximate_knn`], and
    /// so is the per-file `IoStats` accounting; see `crate::engine`.
    pub fn batch_knn(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
    ) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
        self.batch_knn_window(queries, k, None, exact)
    }

    /// Like [`CTree::batch_knn`], restricted to a timestamp window.
    pub fn batch_knn_window(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        window: Option<(Timestamp, Timestamp)>,
        exact: bool,
    ) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
        let units = self.query_units(window);
        crate::engine::batch_knn(&units, queries, k, self.config.query_parallelism, exact)
    }

    /// Single kNN query with cooperative cancellation: a batch of one run
    /// through the engine, polling `cancel` at its round boundaries.
    /// Answers and cost are bit-identical to [`CTree::exact_knn`] /
    /// [`CTree::approximate_knn`] when the token never fires; on
    /// cancellation the query unwinds with
    /// [`IndexError::Cancelled`] carrying the
    /// partial cost.
    pub fn knn_with(
        &self,
        query: &[f32],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<(Vec<Neighbor>, QueryCost)> {
        let units = self.query_units(None);
        crate::engine::parallel_knn_with(
            &units,
            query,
            k,
            self.config.query_parallelism,
            exact,
            cancel,
        )
    }

    /// [`CTree::batch_knn`] with cooperative cancellation (polled at the
    /// engine's round boundaries).
    pub fn batch_knn_with(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        exact: bool,
        cancel: &coconut_parallel::CancelToken,
    ) -> Result<Vec<(Vec<Neighbor>, QueryCost)>> {
        let units = self.query_units(None);
        crate::engine::batch_knn_with(
            &units,
            queries,
            k,
            self.config.query_parallelism,
            exact,
            cancel,
        )
    }

    /// Inserts a batch of new series (delta inserts).  Materialized trees
    /// keep the values in the delta; non-materialized trees only keep the
    /// summarization and expect the series to also exist in the raw dataset.
    ///
    /// When the delta exceeds the fill-factor slack, the delta is sort-merged
    /// into the contiguous leaf level (a sequential rebuild), mirroring how
    /// the paper describes CTree absorbing updates.
    pub fn insert_batch(&mut self, series: &[Series], timestamp: Timestamp) -> Result<()> {
        for s in series {
            if s.len() != self.config.sax.series_len {
                return Err(IndexError::Config(format!(
                    "inserted series length {} does not match index ({})",
                    s.len(),
                    self.config.sax.series_len
                )));
            }
        }
        // Delta entries are always materialized in memory so that queries
        // can refine them without the raw file.
        self.delta.extend(SeriesEntry::from_series_batch(
            series,
            timestamp,
            &self.summarizer,
            true,
            self.config.parallelism,
        ));
        if self.delta.len() > self.delta_capacity {
            self.merge_delta()?;
        }
        Ok(())
    }

    /// Forces the delta to be merged into the contiguous leaf level.
    pub fn merge_delta(&mut self) -> Result<()> {
        if self.delta.is_empty() {
            return Ok(());
        }
        let mut delta = std::mem::take(&mut self.delta);
        if !self.config.materialized {
            // The leaf layout stores no values; strip them from the delta.
            for e in delta.iter_mut() {
                e.values = Vec::new();
            }
        }
        delta.sort_by_key(|e| (e.key, e.id));
        let mut delta_iter = delta.into_iter().peekable();
        // The old leaf level is drained front to back while the merged level
        // is written: read ahead so the next leaf buffer loads while the
        // current one interleaves with the delta.
        let mut file_iter = self
            .file
            .reader_with_prefetch_gate(
                self.config.entries_per_block(),
                self.config.io_overlap,
                self.merge_prefetch_gate(),
            )
            .map(|r| r.map_err(IndexError::from))
            .peekable();
        self.generation += 1;
        let path = self
            .dir
            .join(format!("ctree-leaves-{}.run", self.generation));
        let layout = self.config.layout();
        let sax = self.config.sax;
        let merged = std::iter::from_fn(move || -> Option<Result<SeriesEntry>> {
            let take_delta = match (delta_iter.peek(), file_iter.peek()) {
                (None, None) => return None,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(d), Some(Ok(f))) => (d.key, d.id) <= (f.key, f.id),
                (Some(_), Some(Err(_))) => false,
            };
            if take_delta {
                delta_iter.next().map(Ok)
            } else {
                file_iter.next()
            }
        });
        let new_file = SortedSeriesFile::build_from_sorted_compressed(
            path,
            layout,
            sax,
            merged,
            self.config.entries_per_block(),
            Arc::clone(&self.stats),
            self.config.page_size,
            self.config.io_backend,
            self.config.compression,
        )?;
        let old = std::mem::replace(&mut self.file, new_file);
        let _ = old.delete();
        self.delta_capacity = Self::delta_capacity_for(&self.config, self.file.len());
        self.merges += 1;
        Ok(())
    }

    /// Number of delta entries not yet merged.
    pub fn pending_delta(&self) -> usize {
        self.delta.len()
    }
}

#[derive(Clone, Copy)]
enum CTreePart {
    /// The contiguous leaf level.
    Leaves,
    /// The in-memory delta (always materialized).
    Delta,
}

/// One independently searchable piece of a CTree for the concurrent query
/// engine: the contiguous leaf level or the in-memory delta.  The query is
/// supplied per search call so one unit list serves a whole batch.
struct CTreeUnit<'a> {
    tree: &'a CTree,
    window: Option<(Timestamp, Timestamp)>,
    part: CTreePart,
}

impl crate::engine::SearchUnit for CTreeUnit<'_> {
    fn context(&self) -> QueryContext<'_> {
        self.tree.query_context()
    }

    fn search_approximate(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()> {
        match self.part {
            CTreePart::Leaves => self
                .tree
                .file
                .search_approximate(query, heap, ctx, self.window),
            CTreePart::Delta => {
                // The delta is in memory: its "approximate" probe is the
                // full scan, which both seeds the bound and is exact.
                self.tree.search_delta(query, heap, self.window);
                Ok(())
            }
        }
    }

    fn search_exact(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()> {
        match self.part {
            CTreePart::Leaves => self.tree.file.search_exact(query, heap, ctx, self.window),
            CTreePart::Delta => {
                self.tree.search_delta(query, heap, self.window);
                Ok(())
            }
        }
    }
}

/// Streaming adapter feeding the external sorter: pulls series from the
/// dataset scan in batches, summarizes each batch with the worker pool, and
/// yields plain entries (remembering the first error, since the sorter only
/// understands plain records).
struct BatchedEntryIter<'a, I> {
    inner: I,
    summarizer: &'a SortableSummarizer,
    materialized: bool,
    parallelism: usize,
    batch_size: usize,
    pending: std::collections::VecDeque<SeriesEntry>,
    error: Option<IndexError>,
}

impl<'a, I> BatchedEntryIter<'a, I>
where
    I: Iterator<Item = coconut_series::Result<Series>>,
{
    fn new(
        inner: I,
        summarizer: &'a SortableSummarizer,
        materialized: bool,
        parallelism: usize,
        max_batch_records: usize,
    ) -> Self {
        // Enough work per refill to amortize a fork/join across the pool,
        // but capped by the caller's memory bound so staging never rivals
        // the external sorter's budget.
        let batch_size =
            (effective_parallelism(parallelism) * 1024).clamp(256, max_batch_records.max(256));
        BatchedEntryIter {
            inner,
            summarizer,
            materialized,
            parallelism,
            batch_size,
            pending: std::collections::VecDeque::new(),
            error: None,
        }
    }

    fn refill(&mut self) {
        let mut batch: Vec<Series> = Vec::with_capacity(self.batch_size);
        while batch.len() < self.batch_size {
            match self.inner.next() {
                Some(Ok(series)) => batch.push(series),
                Some(Err(e)) => {
                    self.error = Some(IndexError::from(e));
                    break;
                }
                None => break,
            }
        }
        if !batch.is_empty() {
            self.pending.extend(SeriesEntry::from_series_batch(
                &batch,
                0,
                self.summarizer,
                self.materialized,
                self.parallelism,
            ));
        }
    }
}

impl<'a, I> Iterator for BatchedEntryIter<'a, I>
where
    I: Iterator<Item = coconut_series::Result<Series>>,
{
    type Item = SeriesEntry;

    fn next(&mut self) -> Option<SeriesEntry> {
        if self.pending.is_empty() && self.error.is_none() {
            self.refill();
        }
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::distance::brute_force_knn;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::iostats::IoStats;
    use coconut_storage::ScratchDir;

    fn build_tree(
        n: usize,
        materialized: bool,
        budget: usize,
        seed: u64,
    ) -> (ScratchDir, Vec<Series>, CTree, SharedIoStats) {
        let dir = ScratchDir::new("ctree").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let mut gen = RandomWalkGenerator::new(64, seed);
        let series = gen.generate(n);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let stats = IoStats::shared();
        let config = CTreeConfig::new(sax)
            .materialized(materialized)
            .with_memory_budget(budget);
        let tree = CTree::build(&dataset, config, dir.path(), Arc::clone(&stats)).unwrap();
        (dir, series, tree, stats)
    }

    #[test]
    fn build_indexes_every_series() {
        let (_dir, series, tree, _stats) = build_tree(500, true, 1 << 20, 1);
        assert_eq!(tree.len(), series.len() as u64);
        assert!(tree.num_blocks() > 1);
        assert!(tree.footprint_bytes() > 0);
        assert_eq!(tree.build_stats().entries, 500);
    }

    #[test]
    fn construction_is_mostly_sequential_even_with_tiny_budget() {
        // A small memory budget forces external sorting, but the I/O pattern
        // must remain overwhelmingly sequential — the core Coconut claim.
        let (_dir, _series, tree, _stats) = build_tree(2000, true, 64 * 1024, 2);
        let io = tree.build_stats().io;
        assert!(tree.build_stats().sort_runs > 1, "expected spill runs");
        assert!(
            io.random_fraction() < 0.15,
            "CTree construction should be sequential, random fraction {}",
            io.random_fraction()
        );
    }

    #[test]
    fn exact_knn_matches_brute_force_materialized() {
        let (_dir, series, tree, _stats) = build_tree(400, true, 1 << 20, 3);
        let mut gen = RandomWalkGenerator::new(64, 99);
        for _ in 0..10 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                5,
            );
            let (got, _) = tree.exact_knn(&q.values, 5).unwrap();
            assert_eq!(got.len(), 5);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!(
                    (g.squared_distance - e.squared_distance).abs() < 1e-6,
                    "distance mismatch"
                );
            }
        }
    }

    #[test]
    fn exact_knn_matches_brute_force_non_materialized() {
        let (_dir, series, tree, _stats) = build_tree(300, false, 1 << 20, 4);
        let mut gen = RandomWalkGenerator::new(64, 55);
        for _ in 0..5 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                1,
            );
            let (got, cost) = tree.exact_knn(&q.values, 1).unwrap();
            assert_eq!(got[0].id, expected[0].id);
            assert!(cost.raw_fetches < series.len() as u64);
        }
    }

    #[test]
    fn approximate_query_is_cheaper_than_exact() {
        let (_dir, _series, tree, _stats) = build_tree(1000, true, 1 << 20, 5);
        let mut gen = RandomWalkGenerator::new(64, 7);
        let q = gen.next_series();
        let (_a, approx_cost) = tree.approximate_knn(&q.values, 1).unwrap();
        let (_e, exact_cost) = tree.exact_knn(&q.values, 1).unwrap();
        assert!(approx_cost.blocks_read <= exact_cost.blocks_read);
        assert!(approx_cost.entries_examined <= exact_cost.entries_examined);
    }

    #[test]
    fn non_materialized_is_smaller_than_materialized() {
        let (_d1, _s1, non, _) = build_tree(300, false, 1 << 20, 6);
        let (_d2, _s2, mat, _) = build_tree(300, true, 1 << 20, 6);
        assert!(non.footprint_bytes() < mat.footprint_bytes() / 2);
    }

    #[test]
    fn mismatched_dataset_length_rejected() {
        let dir = ScratchDir::new("ctree-mismatch").unwrap();
        let mut gen = RandomWalkGenerator::new(32, 1);
        let series = gen.generate(10);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let config = CTreeConfig::new(SaxConfig::new(64, 8, 8));
        let result = CTree::build(&dataset, config, dir.path(), IoStats::shared());
        assert!(matches!(result, Err(IndexError::Config(_))));
    }

    #[test]
    fn delta_inserts_are_queryable_and_merge() {
        let dir = ScratchDir::new("ctree-delta").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let mut gen = RandomWalkGenerator::new(64, 10);
        let base = gen.generate(200);
        let stats = IoStats::shared();
        let config = CTreeConfig::new(sax)
            .materialized(true)
            .with_fill_factor(0.7);
        let mut tree =
            CTree::build_from_series(&base, config, dir.path(), Arc::clone(&stats)).unwrap();

        // Insert new series with fresh ids.
        let mut extra: Vec<Series> = gen.generate(50);
        for (i, s) in extra.iter_mut().enumerate() {
            s.id = 200 + i as u64;
        }
        tree.insert_batch(&extra, 1).unwrap();
        assert_eq!(tree.len(), 250);

        // A query targeting an inserted series must find it.
        let target = &extra[10];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.001).collect();
        let (got, _) = tree.exact_knn(&query, 1).unwrap();
        assert_eq!(got[0].id, target.id);

        // Force the merge and re-check.
        tree.merge_delta().unwrap();
        assert_eq!(tree.pending_delta(), 0);
        assert_eq!(tree.len(), 250);
        let (got, _) = tree.exact_knn(&query, 1).unwrap();
        assert_eq!(got[0].id, target.id);
        assert!(tree.merges >= 1);
    }

    #[test]
    fn lower_fill_factor_means_more_blocks() {
        let dir = ScratchDir::new("ctree-ff").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let mut gen = RandomWalkGenerator::new(64, 11);
        let series = gen.generate(400);
        let dense_cfg = CTreeConfig::new(sax)
            .materialized(true)
            .with_fill_factor(1.0);
        let sparse_cfg = CTreeConfig::new(sax)
            .materialized(true)
            .with_fill_factor(0.5);
        let dense =
            CTree::build_from_series(&series, dense_cfg, &dir.file("dense"), IoStats::shared());
        std::fs::create_dir_all(dir.file("dense")).unwrap();
        std::fs::create_dir_all(dir.file("sparse")).unwrap();
        let dense = match dense {
            Ok(t) => t,
            Err(_) => {
                CTree::build_from_series(&series, dense_cfg, &dir.file("dense"), IoStats::shared())
                    .unwrap()
            }
        };
        let sparse =
            CTree::build_from_series(&series, sparse_cfg, &dir.file("sparse"), IoStats::shared())
                .unwrap();
        assert!(sparse.num_blocks() > dense.num_blocks());
    }
}
