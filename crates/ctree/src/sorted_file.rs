//! Sorted, block-indexed partitions of index entries.
//!
//! A [`SortedSeriesFile`] is the fundamental on-disk unit of every Coconut
//! structure: the (single) leaf level of a CoconutTree, each run of a
//! CoconutLSM level, and each temporal partition of the TP / BTP streaming
//! schemes.  It stores entries sorted by their interleaved SAX key, packed
//! into fixed-size blocks, and keeps a small in-memory block index (fence
//! keys, entry ranges, timestamp ranges) that plays the role of the B+-tree's
//! internal levels.
//!
//! Queries use the block index for **skip-sequential** search: blocks are
//! visited in order of their lower-bound distance to the query and skipped
//! entirely once the bound exceeds the best-so-far answer, so an exact query
//! reads only a contiguous subset of the blocks with sequential I/O.

use std::path::Path;
use std::sync::Arc;

use crate::kernels::euclidean_early_abandon;
use coconut_sax::breakpoints::BreakpointTable;
use coconut_sax::mindist::{mindist_paa_isax_sq, mindist_paa_sax_sq};
use coconut_sax::{InvSaxKey, SaxConfig};
use coconut_series::paa::paa;
use coconut_series::Timestamp;
use coconut_storage::dynsort::DynRunWriter;
use coconut_storage::{AccessPattern, Compression, IoBackend, SharedIoStats};

use crate::entry::{EntryLayout, SeriesEntry};
use crate::query::{KnnHeap, QueryContext};
use crate::{IndexError, Result};

/// Metadata of one block of a [`SortedSeriesFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Smallest key in the block.
    pub min_key: u128,
    /// Largest key in the block.
    pub max_key: u128,
    /// Index of the first entry of the block within the file.
    pub start: u64,
    /// Number of entries in the block.
    pub count: u32,
    /// Smallest timestamp in the block.
    pub min_ts: Timestamp,
    /// Largest timestamp in the block.
    pub max_ts: Timestamp,
}

impl BlockMeta {
    /// Returns `true` when the block's timestamp range intersects `window`.
    pub fn intersects_window(&self, window: Option<(Timestamp, Timestamp)>) -> bool {
        match window {
            None => true,
            Some((start, end)) => self.min_ts <= end && self.max_ts >= start,
        }
    }
}

/// A sorted partition of entries with an in-memory block index.
#[derive(Debug)]
pub struct SortedSeriesFile {
    run: coconut_storage::DynRunFile<EntryLayout>,
    blocks: Vec<BlockMeta>,
    sax: SaxConfig,
    table: Arc<BreakpointTable>,
    min_ts: Timestamp,
    max_ts: Timestamp,
}

impl SortedSeriesFile {
    /// Builds a partition at `path` by streaming already-sorted entries into
    /// blocks of `entries_per_block` entries (reads served by `pread`).
    pub fn build_from_sorted<P, I>(
        path: P,
        layout: EntryLayout,
        sax: SaxConfig,
        sorted: I,
        entries_per_block: usize,
        stats: SharedIoStats,
        page_size: usize,
    ) -> Result<Self>
    where
        P: AsRef<Path>,
        I: IntoIterator<Item = Result<SeriesEntry>>,
    {
        Self::build_from_sorted_with(
            path,
            layout,
            sax,
            sorted,
            entries_per_block,
            stats,
            page_size,
            IoBackend::Pread,
        )
    }

    /// Like [`SortedSeriesFile::build_from_sorted`], choosing the read
    /// backend the finished partition serves its block scans with.  A pure
    /// performance knob: the partition file, query answers, costs and
    /// `IoStats` are identical at either setting.
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_sorted_with<P, I>(
        path: P,
        layout: EntryLayout,
        sax: SaxConfig,
        sorted: I,
        entries_per_block: usize,
        stats: SharedIoStats,
        page_size: usize,
        backend: IoBackend,
    ) -> Result<Self>
    where
        P: AsRef<Path>,
        I: IntoIterator<Item = Result<SeriesEntry>>,
    {
        Self::build_from_sorted_compressed(
            path,
            layout,
            sax,
            sorted,
            entries_per_block,
            stats,
            page_size,
            backend,
            Compression::Off,
        )
    }

    /// Like [`SortedSeriesFile::build_from_sorted_with`], additionally
    /// choosing the on-disk [`Compression`] of the partition.  `off`
    /// produces byte-identical files to every release before the knob
    /// existed; `prefix` front-codes the sorted invSAX keys and
    /// delta-codes ids/timestamps into ~4 KiB blocks.  Answers, costs and
    /// the logical `IoStats` view are identical either way.
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_sorted_compressed<P, I>(
        path: P,
        layout: EntryLayout,
        sax: SaxConfig,
        sorted: I,
        entries_per_block: usize,
        stats: SharedIoStats,
        page_size: usize,
        backend: IoBackend,
        compression: Compression,
    ) -> Result<Self>
    where
        P: AsRef<Path>,
        I: IntoIterator<Item = Result<SeriesEntry>>,
    {
        assert!(entries_per_block > 0);
        let mut writer = DynRunWriter::create_compressed(
            layout,
            path,
            Arc::clone(&stats),
            page_size,
            backend,
            compression,
        )?;
        let mut blocks: Vec<BlockMeta> = Vec::new();
        let mut current: Option<BlockMeta> = None;
        let mut index: u64 = 0;
        let mut last_key: Option<(u128, u64)> = None;
        let mut min_ts = Timestamp::MAX;
        let mut max_ts = Timestamp::MIN;

        for entry in sorted {
            let entry = entry?;
            if let Some(prev) = last_key {
                if (entry.key, entry.id) < prev {
                    return Err(IndexError::Config(
                        "build_from_sorted requires key-ordered input".into(),
                    ));
                }
            }
            last_key = Some((entry.key, entry.id));
            min_ts = min_ts.min(entry.timestamp);
            max_ts = max_ts.max(entry.timestamp);
            let block = current.get_or_insert(BlockMeta {
                min_key: entry.key,
                max_key: entry.key,
                start: index,
                count: 0,
                min_ts: entry.timestamp,
                max_ts: entry.timestamp,
            });
            block.max_key = entry.key;
            block.count += 1;
            block.min_ts = block.min_ts.min(entry.timestamp);
            block.max_ts = block.max_ts.max(entry.timestamp);
            writer.push(&entry)?;
            index += 1;
            if block.count as usize >= entries_per_block {
                blocks.push(current.take().unwrap());
            }
        }
        if let Some(block) = current.take() {
            blocks.push(block);
        }
        if index == 0 {
            min_ts = 0;
            max_ts = 0;
        }
        let run = writer.finish()?;
        Ok(SortedSeriesFile {
            run,
            blocks,
            sax,
            table: Arc::new(BreakpointTable::new()),
            min_ts,
            max_ts,
        })
    }

    /// Builds a partition from unsorted in-memory entries (sorts them first).
    /// Used for buffer flushes in CoconutLSM and the streaming schemes.
    pub fn build_from_entries<P: AsRef<Path>>(
        path: P,
        layout: EntryLayout,
        sax: SaxConfig,
        entries: Vec<SeriesEntry>,
        entries_per_block: usize,
        stats: SharedIoStats,
        page_size: usize,
    ) -> Result<Self> {
        Self::build_from_entries_parallel(
            path,
            layout,
            sax,
            entries,
            entries_per_block,
            stats,
            page_size,
            1,
        )
    }

    /// Like [`SortedSeriesFile::build_from_entries`], sorting the buffer with
    /// up to `parallelism` worker threads (`1` = sequential, `0` = one per
    /// available core).  The partition is byte-identical at every setting.
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_entries_parallel<P: AsRef<Path>>(
        path: P,
        layout: EntryLayout,
        sax: SaxConfig,
        entries: Vec<SeriesEntry>,
        entries_per_block: usize,
        stats: SharedIoStats,
        page_size: usize,
        parallelism: usize,
    ) -> Result<Self> {
        Self::build_from_entries_with(
            path,
            layout,
            sax,
            entries,
            entries_per_block,
            stats,
            page_size,
            parallelism,
            IoBackend::Pread,
        )
    }

    /// Like [`SortedSeriesFile::build_from_entries_parallel`], additionally
    /// choosing the read backend of the finished partition.
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_entries_with<P: AsRef<Path>>(
        path: P,
        layout: EntryLayout,
        sax: SaxConfig,
        entries: Vec<SeriesEntry>,
        entries_per_block: usize,
        stats: SharedIoStats,
        page_size: usize,
        parallelism: usize,
        backend: IoBackend,
    ) -> Result<Self> {
        Self::build_from_entries_compressed(
            path,
            layout,
            sax,
            entries,
            entries_per_block,
            stats,
            page_size,
            parallelism,
            backend,
            Compression::Off,
        )
    }

    /// Like [`SortedSeriesFile::build_from_entries_with`], additionally
    /// choosing the on-disk [`Compression`]; see
    /// [`SortedSeriesFile::build_from_sorted_compressed`].
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_entries_compressed<P: AsRef<Path>>(
        path: P,
        layout: EntryLayout,
        sax: SaxConfig,
        mut entries: Vec<SeriesEntry>,
        entries_per_block: usize,
        stats: SharedIoStats,
        page_size: usize,
        parallelism: usize,
        backend: IoBackend,
        compression: Compression,
    ) -> Result<Self> {
        let workers = coconut_parallel::effective_parallelism(parallelism);
        coconut_parallel::parallel_sort_by_key(&mut entries, workers, |e| (e.key, e.id));
        Self::build_from_sorted_compressed(
            path,
            layout,
            sax,
            entries.into_iter().map(Ok),
            entries_per_block,
            stats,
            page_size,
            backend,
            compression,
        )
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.run.len()
    }

    /// Returns `true` when the partition has no entries.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// Logical size in bytes (`entries × record_size`, compression-blind);
    /// cost and buffer arithmetic stays on this view so decisions are
    /// identical at compression off/prefix.
    pub fn byte_size(&self) -> u64 {
        self.run.byte_size()
    }

    /// Bytes the partition actually occupies on disk (smaller than
    /// [`SortedSeriesFile::byte_size`] when compressed).
    pub fn physical_byte_size(&self) -> u64 {
        self.run.physical_byte_size()
    }

    /// The on-disk compression the partition was built with.
    pub fn compression(&self) -> Compression {
        self.run.compression()
    }

    /// Reads only the invSAX keys of `count` entries starting at `index`,
    /// in key order.  On compressed materialized partitions this touches
    /// just the blocks' head regions — the raw f32 values never leave the
    /// disk — so a cold key-only scan moves strictly fewer physical bytes
    /// than an entry scan; the logical `IoStats` view is charged like a
    /// full-record read on every path, keeping it knob-invariant.
    pub fn scan_keys(&self, index: u64, count: usize) -> Result<Vec<u128>> {
        let heads = self.run.read_heads_raw(index, count)?;
        let head = self.run.head_size();
        Ok(heads
            .chunks_exact(head)
            .map(|h| {
                let mut k = [0u8; 16];
                k.copy_from_slice(&h[..16]);
                u128::from_be_bytes(k)
            })
            .collect())
    }

    /// The block index.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Entry layout of the partition.
    pub fn layout(&self) -> &EntryLayout {
        self.run.layout()
    }

    /// Timestamp range covered by the partition.
    pub fn time_range(&self) -> (Timestamp, Timestamp) {
        (self.min_ts, self.max_ts)
    }

    /// Returns a sequential reader over all entries (for merging).
    pub fn reader(&self, buffer_records: usize) -> coconut_storage::DynRunReader<EntryLayout> {
        self.run.reader(buffer_records)
    }

    /// Like [`SortedSeriesFile::reader`], optionally prefetching each next
    /// buffer on a background thread (same reads, same order, same
    /// accounting; see `coconut_storage::DynRunFile::reader_with_prefetch`).
    pub fn reader_with_prefetch(
        &self,
        buffer_records: usize,
        prefetch: bool,
    ) -> coconut_storage::DynRunReader<EntryLayout> {
        self.reader_with_prefetch_gate(
            buffer_records,
            prefetch,
            coconut_storage::PREFETCH_MIN_BYTES,
        )
    }

    /// Like [`SortedSeriesFile::reader_with_prefetch`] with an explicit
    /// read-ahead engage gate in bytes (`usize::MAX` never spawns the
    /// worker) — the knob the adaptive planner sets; a pure performance
    /// knob either way.
    pub fn reader_with_prefetch_gate(
        &self,
        buffer_records: usize,
        prefetch: bool,
        prefetch_min_bytes: usize,
    ) -> coconut_storage::DynRunReader<EntryLayout> {
        // A full scan walks the mapped pages front to back: let the kernel
        // read ahead aggressively (advisory; accounting unaffected).
        self.run.advise_read_pattern(AccessPattern::Sequential);
        self.run
            .reader_with_prefetch_gate(buffer_records, prefetch, prefetch_min_bytes)
    }

    /// Returns a sequential reader over the entries whose key lies in
    /// `[lo, hi)` (`hi = None` means unbounded above).  The block index is
    /// used to seek straight to the first candidate block; only the two
    /// boundary blocks are filtered entry-by-entry, everything in between
    /// streams through untouched.  Used by sharded compactions to feed one
    /// key shard of a level merge.
    pub fn range_reader(&self, lo: u128, hi: Option<u128>) -> RangeReader<'_> {
        self.range_reader_with_prefetch(lo, hi, false)
    }

    /// Like [`SortedSeriesFile::range_reader`], optionally reading the
    /// range's blocks ahead on a background thread while the consumer (a
    /// compaction merge) drains the current one.
    ///
    /// The set of blocks a range touches is a pure function of the block
    /// fences — blocks from the first with `max_key >= lo` up to (not
    /// including) the first with `min_key >= hi` — so the prefetcher issues
    /// exactly the reads the inline path would, in the same order, and the
    /// I/O accounting is identical.
    pub fn range_reader_with_prefetch(
        &self,
        lo: u128,
        hi: Option<u128>,
        prefetch: bool,
    ) -> RangeReader<'_> {
        self.range_reader_with_prefetch_gate(lo, hi, prefetch, coconut_storage::PREFETCH_MIN_BYTES)
    }

    /// Like [`SortedSeriesFile::range_reader_with_prefetch`] with an
    /// explicit read-ahead engage gate in bytes (`usize::MAX` never spawns
    /// the worker) — the knob the adaptive planner sets; a pure performance
    /// knob either way.
    pub fn range_reader_with_prefetch_gate(
        &self,
        lo: u128,
        hi: Option<u128>,
        prefetch: bool,
        prefetch_min_bytes: usize,
    ) -> RangeReader<'_> {
        // A range feeds a merge: its blocks stream in ascending order, so
        // kernel read-ahead on the mapped pages pays off (advisory;
        // accounting unaffected).
        self.run.advise_read_pattern(AccessPattern::Sequential);
        // First block that can contain a key >= lo.
        let first = self.blocks.partition_point(|b| b.max_key < lo);
        // First block past the range (entirely >= hi); clamped so an
        // inverted range (lo > hi) degenerates to an empty reader instead
        // of an inverted slice.
        let last = match hi {
            Some(hi) => self.blocks.partition_point(|b| b.min_key < hi),
            None => self.blocks.len(),
        }
        .max(first);
        // A background thread only pays off when the range is big enough
        // that its reads may block (see
        // `coconut_storage::PREFETCH_MIN_BYTES`); small ranges — including
        // every merge of freshly written, page-cache-hot runs — stay inline.
        let range_bytes: u64 = self.blocks[first..last]
            .iter()
            .map(|b| b.count as u64)
            .sum::<u64>()
            * coconut_storage::RecordLayout::record_size(self.run.layout()) as u64;
        let engage =
            prefetch && last.saturating_sub(first) > 1 && range_bytes >= prefetch_min_bytes as u64;
        let prefetcher = engage.then(|| {
            self.run.range_prefetcher(
                self.blocks[first..last]
                    .iter()
                    .map(|b| (b.start, b.count))
                    .collect(),
            )
        });
        RangeReader {
            file: self,
            next_block: first,
            end_block: last,
            pending: std::collections::VecDeque::new(),
            lo,
            hi,
            done: false,
            prefetcher,
        }
    }

    /// The underlying run file (for merge plumbing).
    pub fn run(&self) -> &coconut_storage::DynRunFile<EntryLayout> {
        &self.run
    }

    /// Returns `true` while the backing file holds a live read mapping
    /// (mmap backend only; used by the unmap-before-unlink tests).
    pub fn is_mapped(&self) -> bool {
        self.run.is_mapped()
    }

    /// Deletes the backing file.
    pub fn delete(self) -> Result<()> {
        self.run.delete()?;
        Ok(())
    }

    /// Index of the block whose key range should contain `key` (the last
    /// block whose `min_key <= key`, clamped to the first block).
    pub fn locate_block(&self, key: u128) -> Option<usize> {
        if self.blocks.is_empty() {
            return None;
        }
        let idx = self.blocks.partition_point(|b| b.min_key <= key);
        Some(idx.saturating_sub(1))
    }

    /// Lower bound (squared) on the distance between the query and *any*
    /// entry in the block, derived from the interleaved-key prefix shared by
    /// the block's minimum and maximum keys.
    ///
    /// Because the key interleaves bits level by level across segments, a
    /// shared prefix of `p` bits constrains the first `p / segments` bit
    /// levels of *every* segment plus one extra bit for the first
    /// `p % segments` segments.  The bound is the iSAX MINDIST against that
    /// partially refined word, which is valid for every key in
    /// `[min_key, max_key]`.
    pub fn block_mindist_sq(&self, block: &BlockMeta, query_paa: &[f64]) -> f64 {
        let width = self.sax.key_bits();
        let min = InvSaxKey::from_raw(block.min_key, width);
        let max = InvSaxKey::from_raw(block.max_key, width);
        let shared_bits = min.common_prefix_bits(&max);
        let segments = self.sax.segments as u32;
        let base_levels = (shared_bits / segments).min(self.sax.bits_per_segment as u32) as u8;
        let extra_segments = if base_levels as u32 >= self.sax.bits_per_segment as u32 {
            0
        } else {
            (shared_bits % segments) as usize
        };
        let sax_word = min.to_sax(&self.sax);
        let symbols: Vec<coconut_sax::IsaxSymbol> = (0..self.sax.segments)
            .map(|seg| {
                let bits = if seg < extra_segments {
                    base_levels + 1
                } else {
                    base_levels
                };
                if bits == 0 {
                    coconut_sax::IsaxSymbol::ANY
                } else {
                    coconut_sax::IsaxSymbol::new(sax_word.symbol_at_bits(seg, bits), bits)
                }
            })
            .collect();
        let prefix = coconut_sax::IsaxWord::new(symbols);
        mindist_paa_isax_sq(query_paa, &prefix, &self.sax, &self.table)
    }

    fn refine_entry(
        &self,
        entry: &SeriesEntry,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
    ) -> Result<()> {
        ctx.cost.entries_refined += 1;
        let bound = heap.bound();
        if entry.is_materialized() {
            if let Some(d) = euclidean_early_abandon(query, &entry.values, bound) {
                heap.offer_at(entry.id, entry.timestamp, d);
            }
        } else {
            let values = ctx.fetch(entry.id)?;
            if let Some(d) = euclidean_early_abandon(query, &values, bound) {
                heap.offer_at(entry.id, entry.timestamp, d);
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_block(
        &self,
        block: &BlockMeta,
        query: &[f32],
        query_paa: &[f64],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
        window: Option<(Timestamp, Timestamp)>,
        prune_entries: bool,
    ) -> Result<()> {
        ctx.cost.blocks_read += 1;
        let entries = self.run.read_range(block.start, block.count as usize)?;
        let breakpoints = self.table.for_bits(self.sax.bits_per_segment);
        for entry in &entries {
            if let Some((start, end)) = window {
                if entry.timestamp < start || entry.timestamp > end {
                    continue;
                }
            }
            ctx.cost.entries_examined += 1;
            if prune_entries {
                let sax = InvSaxKey::from_raw(entry.key, self.sax.key_bits()).to_sax(&self.sax);
                let lb = mindist_paa_sax_sq(query_paa, &sax, &self.sax, breakpoints);
                if lb > heap.bound() {
                    continue;
                }
            }
            self.refine_entry(entry, query, heap, ctx)?;
        }
        Ok(())
    }

    /// Approximate kNN: reads only the block(s) around the query's key
    /// position and refines their entries.  This is the "approximate query"
    /// of the iSAX family: fast, no guarantee of exactness.
    pub fn search_approximate(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<()> {
        assert_eq!(query.len(), self.sax.series_len);
        if self.blocks.is_empty() {
            return Ok(());
        }
        // Query-time probes jump between blocks in bound order: disable
        // kernel read-ahead on the mapped pages (advisory; accounting
        // unaffected).
        self.run.advise_read_pattern(AccessPattern::Random);
        let query_paa = paa(query, self.sax.segments);
        let summarizer = coconut_sax::SortableSummarizer::new(self.sax);
        let key = summarizer.key(query).raw();
        let target = self.locate_block(key).unwrap();
        // Visit the target block plus its neighbours until the heap is full
        // (or the partition is exhausted).
        let mut offsets: Vec<usize> = vec![target];
        let mut radius = 1usize;
        while offsets.len() < self.blocks.len() {
            let mut extended = false;
            if target + radius < self.blocks.len() {
                offsets.push(target + radius);
                extended = true;
            }
            if let Some(lo) = target.checked_sub(radius) {
                offsets.push(lo);
                extended = true;
            }
            if heap.bound() < f64::INFINITY || !extended {
                break;
            }
            radius += 1;
        }
        for idx in offsets {
            let block = self.blocks[idx];
            if !block.intersects_window(window) {
                ctx.cost.blocks_skipped += 1;
                continue;
            }
            self.scan_block(&block, query, &query_paa, heap, ctx, window, false)?;
            if heap.bound() < f64::INFINITY {
                break;
            }
        }
        Ok(())
    }

    /// Exact kNN contribution of this partition: visits blocks in ascending
    /// order of their lower bound, skipping blocks (and entries) whose bound
    /// exceeds the current best-so-far answer in `heap`.
    pub fn search_exact(
        &self,
        query: &[f32],
        heap: &mut KnnHeap,
        ctx: &mut QueryContext<'_>,
        window: Option<(Timestamp, Timestamp)>,
    ) -> Result<()> {
        assert_eq!(query.len(), self.sax.series_len);
        if self.blocks.is_empty() {
            return Ok(());
        }
        // See `search_approximate`: probes are random-access by design.
        self.run.advise_read_pattern(AccessPattern::Random);
        let query_paa = paa(query, self.sax.segments);
        // Order blocks by lower bound so the tightest candidates are refined
        // first and the rest can be skipped.
        let mut ordered: Vec<(f64, usize)> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects_window(window))
            .map(|(i, b)| (self.block_mindist_sq(b, &query_paa), i))
            .collect();
        ctx.cost.blocks_skipped += (self.blocks.len() - ordered.len()) as u64;
        ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for (lb, idx) in ordered {
            if lb > heap.bound() {
                ctx.cost.blocks_skipped += 1;
                continue;
            }
            let block = self.blocks[idx];
            self.scan_block(&block, query, &query_paa, heap, ctx, window, true)?;
        }
        Ok(())
    }
}

/// Buffered iterator over the entries of one key range of a
/// [`SortedSeriesFile`]; see [`SortedSeriesFile::range_reader`].
pub struct RangeReader<'a> {
    file: &'a SortedSeriesFile,
    next_block: usize,
    end_block: usize,
    pending: std::collections::VecDeque<SeriesEntry>,
    lo: u128,
    hi: Option<u128>,
    done: bool,
    prefetcher: Option<coconut_storage::ReadAheadBuffers>,
}

impl RangeReader<'_> {
    /// Raw bytes of the next block of the range, from the read-ahead worker
    /// when one is attached, inline otherwise; `None` once the range's
    /// blocks are exhausted.
    fn next_block_bytes(&mut self) -> Result<Option<Vec<u8>>> {
        if self.next_block >= self.end_block {
            return Ok(None);
        }
        self.next_block += 1;
        match &mut self.prefetcher {
            Some(p) => match p.next_buffer() {
                Some(bytes) => Ok(Some(bytes.map_err(IndexError::from)?)),
                None => Err(IndexError::from(coconut_storage::StorageError::Corrupt(
                    "read-ahead worker ended before its range was drained".into(),
                ))),
            },
            None => {
                let block = self.file.blocks[self.next_block - 1];
                Ok(Some(
                    self.file.run.read_raw(block.start, block.count as usize)?,
                ))
            }
        }
    }

    fn refill(&mut self) -> Result<()> {
        while self.pending.is_empty() && !self.done {
            let Some(bytes) = self.next_block_bytes()? else {
                self.done = true;
                return Ok(());
            };
            let layout = self.file.run.layout();
            let size = coconut_storage::RecordLayout::record_size(layout);
            for chunk in bytes.chunks_exact(size) {
                let entry = coconut_storage::RecordLayout::decode(layout, chunk);
                if entry.key < self.lo {
                    continue;
                }
                if self.hi.is_some_and(|hi| entry.key >= hi) {
                    self.done = true;
                    break;
                }
                self.pending.push_back(entry);
            }
        }
        Ok(())
    }
}

impl Iterator for RangeReader<'_> {
    type Item = Result<SeriesEntry>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Err(e) = self.refill() {
            self.done = true;
            return Some(Err(e));
        }
        self.pending.pop_front().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_sax::SortableSummarizer;
    use coconut_series::distance::brute_force_knn;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_series::Dataset;
    use coconut_storage::iostats::IoStats;
    use coconut_storage::ScratchDir;

    fn make_entries(
        n: usize,
        sax: SaxConfig,
        materialized: bool,
        seed: u64,
    ) -> (Vec<coconut_series::Series>, Vec<SeriesEntry>) {
        let summarizer = SortableSummarizer::new(sax);
        let mut gen = RandomWalkGenerator::new(sax.series_len, seed);
        let series = gen.generate(n);
        let entries = series
            .iter()
            .map(|s| SeriesEntry::from_series(s, s.id, &summarizer, materialized))
            .collect();
        (series, entries)
    }

    fn build(
        dir: &ScratchDir,
        sax: SaxConfig,
        entries: Vec<SeriesEntry>,
        materialized: bool,
        entries_per_block: usize,
    ) -> SortedSeriesFile {
        let layout = if materialized {
            EntryLayout::materialized(sax.key_bits(), sax.series_len)
        } else {
            EntryLayout::non_materialized(sax.key_bits())
        };
        SortedSeriesFile::build_from_entries(
            dir.file("part.run"),
            layout,
            sax,
            entries,
            entries_per_block,
            IoStats::shared(),
            4096,
        )
        .unwrap()
    }

    #[test]
    fn build_creates_sorted_blocks() {
        let dir = ScratchDir::new("ssf-build").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let (_, entries) = make_entries(500, sax, true, 1);
        let file = build(&dir, sax, entries, true, 64);
        assert_eq!(file.len(), 500);
        assert_eq!(file.blocks().len(), 500_usize.div_ceil(64));
        let mut prev_max = 0u128;
        for (i, b) in file.blocks().iter().enumerate() {
            assert!(b.min_key <= b.max_key);
            if i > 0 {
                assert!(b.min_key >= prev_max);
            }
            prev_max = b.max_key;
        }
    }

    #[test]
    fn unsorted_input_to_build_from_sorted_is_rejected() {
        let dir = ScratchDir::new("ssf-unsorted").unwrap();
        let sax = SaxConfig::new(32, 4, 4);
        let (_, mut entries) = make_entries(10, sax, false, 2);
        entries.sort_by_key(|e| std::cmp::Reverse(e.key));
        let layout = EntryLayout::non_materialized(sax.key_bits());
        let result = SortedSeriesFile::build_from_sorted(
            dir.file("bad.run"),
            layout,
            sax,
            entries.into_iter().map(Ok),
            8,
            IoStats::shared(),
            1024,
        );
        assert!(matches!(result, Err(IndexError::Config(_))));
    }

    #[test]
    fn exact_search_matches_brute_force_materialized() {
        let dir = ScratchDir::new("ssf-exact-mat").unwrap();
        let sax = SaxConfig::new(96, 8, 8);
        let (series, entries) = make_entries(400, sax, true, 3);
        let file = build(&dir, sax, entries, true, 32);
        let mut gen = RandomWalkGenerator::new(96, 77);
        for _ in 0..10 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                5,
            );
            let mut heap = KnnHeap::new(5);
            let mut ctx = QueryContext::materialized();
            file.search_exact(&q.values, &mut heap, &mut ctx, None)
                .unwrap();
            let got = heap.into_sorted();
            assert_eq!(got.len(), 5);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g.squared_distance - e.squared_distance).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn exact_search_matches_brute_force_non_materialized() {
        let dir = ScratchDir::new("ssf-exact-non").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let (series, entries) = make_entries(300, sax, false, 4);
        let dataset = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        let raw =
            crate::raw::RawSeriesSource::new(dataset, coconut_storage::IoBackend::Pread).unwrap();
        let file = build(&dir, sax, entries, false, 32);
        let stats = IoStats::shared();
        let mut gen = RandomWalkGenerator::new(64, 101);
        for _ in 0..5 {
            let q = gen.next_series();
            let expected = brute_force_knn(
                &q.values,
                series.iter().map(|s| (s.id, s.values.as_slice())),
                3,
            );
            let mut heap = KnnHeap::new(3);
            let mut ctx = QueryContext::non_materialized(&raw, std::sync::Arc::clone(&stats));
            file.search_exact(&q.values, &mut heap, &mut ctx, None)
                .unwrap();
            let got = heap.into_sorted();
            assert_eq!(got[0].id, expected[0].id);
            assert!((got[0].squared_distance - expected[0].squared_distance).abs() < 1e-6);
            // Pruning must have avoided fetching every raw series.
            assert!(ctx.cost.raw_fetches < 300);
        }
    }

    #[test]
    fn approximate_search_finds_close_answer() {
        let dir = ScratchDir::new("ssf-approx").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let (series, entries) = make_entries(500, sax, true, 5);
        let file = build(&dir, sax, entries, true, 32);
        // Query = slightly perturbed member: the approximate answer must be
        // very close (usually the member itself).
        let target = &series[123];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.001).collect();
        let mut heap = KnnHeap::new(1);
        let mut ctx = QueryContext::materialized();
        file.search_approximate(&query, &mut heap, &mut ctx, None)
            .unwrap();
        let got = heap.into_sorted();
        assert_eq!(got.len(), 1);
        assert!(got[0].squared_distance < 1.0);
        // Approximate search must touch far fewer blocks than there are.
        assert!(ctx.cost.blocks_read <= 3);
    }

    #[test]
    fn window_filter_restricts_results() {
        let dir = ScratchDir::new("ssf-window").unwrap();
        let sax = SaxConfig::new(32, 4, 8);
        let summarizer = SortableSummarizer::new(sax);
        let mut gen = RandomWalkGenerator::new(32, 6);
        let series = gen.generate(100);
        let entries: Vec<SeriesEntry> = series
            .iter()
            .map(|s| SeriesEntry::from_series(s, s.id * 10, &summarizer, true))
            .collect();
        let file = build(&dir, sax, entries, true, 16);
        let q = gen.next_series();
        let mut heap = KnnHeap::new(100);
        let mut ctx = QueryContext::materialized();
        file.search_exact(&q.values, &mut heap, &mut ctx, Some((200, 400)))
            .unwrap();
        let got = heap.into_sorted();
        assert!(!got.is_empty());
        for n in &got {
            assert!(n.id * 10 >= 200 && n.id * 10 <= 400);
        }
    }

    #[test]
    fn exact_search_skips_blocks_via_pruning() {
        let dir = ScratchDir::new("ssf-prune").unwrap();
        let sax = SaxConfig::new(128, 16, 8);
        let (series, entries) = make_entries(2000, sax, true, 7);
        let file = build(&dir, sax, entries, true, 64);
        let target = &series[42];
        let query: Vec<f32> = target.values.iter().map(|v| v + 0.01).collect();
        let mut heap = KnnHeap::new(1);
        let mut ctx = QueryContext::materialized();
        file.search_exact(&query, &mut heap, &mut ctx, None)
            .unwrap();
        assert!(
            ctx.cost.blocks_skipped > 0,
            "a near-duplicate query must allow block pruning (read {} skipped {})",
            ctx.cost.blocks_read,
            ctx.cost.blocks_skipped
        );
    }

    #[test]
    fn range_reader_covers_partition_without_overlap() {
        let dir = ScratchDir::new("ssf-range").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        let (_, entries) = make_entries(700, sax, false, 8);
        let file = build(&dir, sax, entries, false, 32);
        let all: Vec<SeriesEntry> = file.reader(64).map(|r| r.unwrap()).collect();

        // Split the key domain at arbitrary block fences; concatenating the
        // range readers must reproduce the full sorted sequence exactly.
        let b1 = file.blocks()[5].min_key;
        let b2 = file.blocks()[13].min_key;
        let mut glued: Vec<SeriesEntry> = Vec::new();
        for (lo, hi) in [(0u128, Some(b1)), (b1, Some(b2)), (b2, None)] {
            let part: Vec<SeriesEntry> = file.range_reader(lo, hi).map(|r| r.unwrap()).collect();
            for e in &part {
                assert!(e.key >= lo);
                if let Some(hi) = hi {
                    assert!(e.key < hi);
                }
            }
            glued.extend(part);
        }
        assert_eq!(glued, all);

        // Empty and inverted ranges yield nothing (and must not panic).
        assert_eq!(file.range_reader(b1, Some(b1)).count(), 0);
        assert_eq!(file.range_reader(b2, Some(b1)).count(), 0);
        assert_eq!(file.range_reader(u128::MAX, Some(0)).count(), 0);
        assert_eq!(
            file.range_reader_with_prefetch(u128::MAX, Some(0), true)
                .count(),
            0
        );
    }

    #[test]
    fn prefetching_range_reader_matches_inline_reader() {
        let dir = ScratchDir::new("ssf-range-prefetch").unwrap();
        let sax = SaxConfig::new(64, 8, 8);
        // 8000 materialized entries x ~290 B ≈ 2.3 MiB: past the
        // PREFETCH_MIN_BYTES gate, so the full-range reader engages its
        // read-ahead worker (sub-ranges below the gate stay inline but must
        // agree as well).
        let (_, entries) = make_entries(8000, sax, true, 77);
        let file = build(&dir, sax, entries, true, 64);
        assert!(file.byte_size() >= coconut_storage::PREFETCH_MIN_BYTES as u64);
        let b1 = file.blocks()[30].min_key;
        for (lo, hi) in [(0u128, None), (0, Some(b1)), (b1, None)] {
            let inline: Vec<SeriesEntry> = file.range_reader(lo, hi).map(|r| r.unwrap()).collect();
            let prefetched: Vec<SeriesEntry> = file
                .range_reader_with_prefetch(lo, hi, true)
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(prefetched, inline, "range [{lo}, {hi:?})");
        }
    }

    #[test]
    fn empty_partition_is_searchable() {
        let dir = ScratchDir::new("ssf-empty").unwrap();
        let sax = SaxConfig::new(32, 4, 4);
        let file = build(&dir, sax, Vec::new(), true, 16);
        assert!(file.is_empty());
        let mut heap = KnnHeap::new(3);
        let mut ctx = QueryContext::materialized();
        let q = vec![0.5f32; 32];
        file.search_exact(&q, &mut heap, &mut ctx, None).unwrap();
        file.search_approximate(&q, &mut heap, &mut ctx, None)
            .unwrap();
        assert!(heap.is_empty());
    }
}
