//! Raw-series fetching for non-materialized refinement.
//!
//! A non-materialized index stores only `(key, id)` entries and fetches the
//! raw series values from the original [`Dataset`] file when a candidate
//! must be refined with a true distance computation.  [`RawSeriesSource`]
//! is that fetch path, threaded through the same `io_backend` knob as the
//! index's own run files: with [`IoBackend::Pread`] every fetch is a
//! positioned read through the dataset's descriptor, with
//! [`IoBackend::Mmap`] fetches are copied out of a read-only `MAP_SHARED`
//! mapping of the dataset file (advised `MADV_RANDOM` — refinement fetches
//! are point reads in id order of the candidates, not file order).
//!
//! The accounting contract is unchanged by the backend: the caller
//! ([`crate::query::QueryContext::fetch`]) charges one random read of the
//! series' byte volume per fetch, exactly as the pread path always did, so
//! `QueryCost` and `IoStats` are identical at either setting by
//! construction.

use std::fs::File;

use parking_lot::Mutex;

use coconut_series::dataset::HEADER_LEN;
use coconut_series::{Dataset, SeriesError};
use coconut_storage::{AccessPattern, IoBackend, Mapping};

use crate::Result;

/// Backend-aware reader of raw series values from a [`Dataset`] file.
pub struct RawSeriesSource {
    dataset: Dataset,
    backend: IoBackend,
    /// Descriptor the mapping is created from (kept separate from the
    /// dataset's own descriptor so mapping never interferes with its reads).
    file: File,
    /// Lazily created read-only mapping of the whole (immutable) dataset
    /// file; `None` until the first mapped fetch, or forever on platforms
    /// without `mmap` (fetches fall back to positioned reads).
    mapping: Mutex<Option<Mapping>>,
}

impl std::fmt::Debug for RawSeriesSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawSeriesSource")
            .field("path", &self.dataset.path())
            .field("backend", &self.backend)
            .finish()
    }
}

impl RawSeriesSource {
    /// Wraps `dataset` with the given read backend.
    pub fn new(dataset: Dataset, backend: IoBackend) -> Result<Self> {
        let file = File::open(dataset.path()).map_err(SeriesError::Io)?;
        Ok(RawSeriesSource {
            dataset,
            backend,
            file,
            mapping: Mutex::new(None),
        })
    }

    /// The wrapped dataset handle.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The read backend fetches are served with.
    pub fn backend(&self) -> IoBackend {
        self.backend
    }

    /// Returns `true` while a read mapping of the dataset file is alive.
    pub fn is_mapped(&self) -> bool {
        self.mapping.lock().is_some()
    }

    /// Reads the values of series `id`.
    ///
    /// Both backends return the same bytes; neither records any I/O here —
    /// the caller accounts the fetch (one random read of the series' byte
    /// volume), keeping `IoStats` backend-independent by construction.
    pub fn read_values(&self, id: u64) -> Result<Vec<f32>> {
        if self.backend == IoBackend::Mmap {
            if let Some(values) = self.read_mapped(id)? {
                return Ok(values);
            }
        }
        Ok(self.dataset.read_series(id)?.values)
    }

    /// Serves the fetch from the mapping; `Ok(None)` means "fall back to a
    /// positioned read" (platform without mmap, or the kernel refused).
    fn read_mapped(&self, id: u64) -> Result<Option<Vec<f32>>> {
        // Ids are global file positions: a dataset handle windowed to an id
        // range (service-level sharding) still serves point fetches of any
        // series in the file, so validate against the file count, exactly
        // as the pread path's `read_series` does.
        if id >= self.dataset.meta().count {
            return Err(SeriesError::UnknownSeries(id).into());
        }
        let mut mapping = self.mapping.lock();
        if mapping.is_none() {
            // Datasets are immutable once finished, so one mapping of the
            // full file length serves every future fetch.
            match Mapping::map(&self.file, self.dataset.file_size()) {
                Ok(m) => {
                    m.advise(AccessPattern::Random);
                    *mapping = Some(m);
                }
                Err(_) => return Ok(None),
            }
        }
        let m = mapping.as_ref().expect("mapping was just ensured");
        let series_bytes = self.dataset.series_len() * 4;
        let start = HEADER_LEN as usize + id as usize * series_bytes;
        let bytes = &m.as_slice()[start..start + series_bytes];
        Ok(Some(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::ScratchDir;

    fn dataset(dir: &ScratchDir, n: usize) -> (Vec<coconut_series::Series>, Dataset) {
        let mut gen = RandomWalkGenerator::new(32, 11);
        let series = gen.generate(n);
        let ds = Dataset::create_from_series(dir.file("raw.bin"), &series).unwrap();
        (series, ds)
    }

    #[test]
    fn both_backends_return_identical_values() {
        let dir = ScratchDir::new("raw-src").unwrap();
        let (series, ds) = dataset(&dir, 20);
        let pread = RawSeriesSource::new(ds.reopen().unwrap(), IoBackend::Pread).unwrap();
        let mmap = RawSeriesSource::new(ds, IoBackend::Mmap).unwrap();
        for id in [0u64, 7, 19, 3] {
            let a = pread.read_values(id).unwrap();
            let b = mmap.read_values(id).unwrap();
            assert_eq!(a, b, "id {id}");
            assert_eq!(a, series[id as usize].values);
        }
        assert!(!pread.is_mapped(), "pread source must never map");
        // Mapping is only guaranteed on 64-bit unix; elsewhere the mmap
        // source silently serves through the positioned-read fallback.
        if cfg!(all(unix, target_pointer_width = "64")) {
            assert!(mmap.is_mapped(), "mmap source must map on first fetch");
        }
    }

    #[test]
    fn unknown_id_is_an_error_on_both_backends() {
        let dir = ScratchDir::new("raw-src-err").unwrap();
        let (_series, ds) = dataset(&dir, 5);
        for backend in [IoBackend::Pread, IoBackend::Mmap] {
            let src = RawSeriesSource::new(ds.reopen().unwrap(), backend).unwrap();
            assert!(src.read_values(5).is_err(), "{backend}");
        }
    }
}
