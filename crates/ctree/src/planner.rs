//! The per-query cost-model planner: pick the performance knobs from
//! observed state instead of from the caller.
//!
//! PRs 1–6 proved every execution knob (`query_parallelism`, shard fan-out,
//! read-ahead engagement, batch composition) **bit-identical** in answers,
//! `QueryCost` and `IoStats`.  That identity discipline is what makes a
//! planner safe: whatever it chooses, the caller observes the same results —
//! only the wall-clock changes.  This module is the decision layer the
//! Coconut Palm paper applies offline (its recommender inspects the workload
//! and picks an indexing method) transplanted to query time, where the bench
//! trajectory shows static knobs misfire (fan-out and read-ahead lose on
//! small page-cache-resident workloads and win at scale).
//!
//! # Determinism and replayability
//!
//! A plan is computed in two strictly separated steps:
//!
//! 1. **Capture** — the index snapshots everything the decision may depend
//!    on into a [`PlannerInputs`] value: index footprint vs an estimated
//!    page-cache budget, search-unit and run counts, the rolling `IoStats`
//!    sequential/random read mix, `k`, the batch width, exactness, and the
//!    host core count.  Capture reads live state (atomics, `/proc/meminfo`),
//!    so two captures at different times may differ — but a captured
//!    snapshot is plain data.
//! 2. **Decide** — [`plan`] maps the snapshot to a [`PlanDecision`].  It is
//!    a *pure function*: no wall clock, no randomness, no global state.
//!    Replaying a recorded snapshot therefore reproduces the decision
//!    bit-for-bit, which is what the identity tests pin.
//!
//! Every adaptive execution records both halves in a [`PlanReport`]
//! (surfaced by the palm service as the `explain` member of query responses
//! and aggregated under the `stats` verb), so "what did the planner do, and
//! why" is always answerable from the wire.

use std::sync::OnceLock;

/// A planned single-query result: the `(answer, cost)` pair plus the
/// [`PlanReport`] captured for it (`None` under [`PlannerMode::Fixed`]).
pub type PlannedAnswer = (
    (
        Vec<coconut_series::distance::Neighbor>,
        crate::query::QueryCost,
    ),
    Option<PlanReport>,
);

/// A planned batch result: per-query `(answer, cost)` pairs plus the one
/// [`PlanReport`] captured for the whole batch (`None` under
/// [`PlannerMode::Fixed`]).
pub type PlannedBatch = (
    Vec<(
        Vec<coconut_series::distance::Neighbor>,
        crate::query::QueryCost,
    )>,
    Option<PlanReport>,
);

/// How an index chooses its execution knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// Use the statically configured knobs exactly as the caller set them.
    /// Byte-identical to the pre-planner behaviour.
    #[default]
    Fixed,
    /// Capture a [`PlannerInputs`] snapshot per query and let [`plan`]
    /// choose the knobs.  Answers and cost counters are identical to every
    /// fixed configuration; only latency changes.
    Adaptive,
}

impl PlannerMode {
    /// Wire name of the mode (`"fixed"` / `"adaptive"`).
    pub fn name(&self) -> &'static str {
        match self {
            PlannerMode::Fixed => "fixed",
            PlannerMode::Adaptive => "adaptive",
        }
    }

    /// Parses a wire name; `None` for anything unknown.
    pub fn parse(name: &str) -> Option<PlannerMode> {
        match name {
            "fixed" => Some(PlannerMode::Fixed),
            "adaptive" => Some(PlannerMode::Adaptive),
            _ => None,
        }
    }
}

impl coconut_json::ToJson for PlannerMode {
    fn to_json(&self) -> coconut_json::Json {
        coconut_json::Json::Str(self.name().to_string())
    }
}

impl coconut_json::FromJson for PlannerMode {
    fn from_json(json: &coconut_json::Json) -> coconut_json::Result<PlannerMode> {
        match json.as_str() {
            Some(name) => PlannerMode::parse(name).ok_or_else(|| {
                coconut_json::JsonError::new(format!(
                    "unknown planner mode '{name}' (expected \"fixed\" or \"adaptive\")"
                ))
            }),
            None => Err(coconut_json::JsonError::new(
                "expected a string for the planner mode",
            )),
        }
    }
}

/// Everything a planning decision is allowed to depend on, captured as plain
/// integers at a single point in time.  See the module docs for the
/// capture/decide split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerInputs {
    /// On-disk footprint of the index in bytes.
    pub footprint_bytes: u64,
    /// Estimated page-cache budget of the host in bytes at capture time
    /// (see [`cache_budget_bytes`]).  An index whose footprint fits this
    /// budget with headroom is treated as cache-resident.
    pub cache_budget_bytes: u64,
    /// Search units the query fans out over (runs × shards + buffer for
    /// CLSM, leaves + delta for CTree, partitions for streams).
    pub unit_count: usize,
    /// Sorted runs (levels) backing the index; `1` for single-file indexes.
    pub run_count: usize,
    /// Available cores at capture time.
    pub cores: usize,
    /// Neighbours requested.
    pub k: usize,
    /// Queries in the batch this plan covers (`1` for a single query).
    pub batch_width: usize,
    /// Exact (two-phase) or approximate (probe-only) search.
    pub exact: bool,
    /// Random share of the index's reads so far, in permille (`0` = all
    /// sequential, `1000` = all random), from the rolling `IoStats`
    /// history.
    pub random_read_permille: u32,
}

/// The knobs a plan assigns.  All of them are proven pure performance
/// knobs, so any assignment yields bit-identical answers and costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanDecision {
    /// Worker threads for the engine fan-out over search units (the shard
    /// fan-out; the engine additionally caps at the unit count).
    pub query_parallelism: usize,
    /// Whether background read-ahead should engage at all for large
    /// sequential range reads (merges, compactions).
    pub read_ahead: bool,
    /// Minimum contiguous range, in bytes, below which read-ahead stays
    /// disengaged even when [`PlanDecision::read_ahead`] is `true`.
    pub prefetch_min_bytes: u64,
    /// Maximum queries per engine round pipeline: a batch wider than this
    /// is split into consecutive sub-batches (identical answers by the
    /// batch-composition invariant), bounding per-batch bookkeeping.
    pub batch_chunk: usize,
}

impl PlanDecision {
    /// The read-ahead engage gate as the storage layer consumes it:
    /// `usize::MAX` (never engage) when read-ahead is off.
    pub fn effective_prefetch_gate(&self) -> usize {
        if self.read_ahead {
            usize::try_from(self.prefetch_min_bytes).unwrap_or(usize::MAX)
        } else {
            usize::MAX
        }
    }
}

/// One recorded planning decision: the captured inputs and the knobs chosen
/// from them.  `decision == plan(&inputs)` always holds — the report is
/// replayable by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanReport {
    /// The captured snapshot the decision was computed from.
    pub inputs: PlannerInputs,
    /// The knobs chosen.
    pub decision: PlanDecision,
}

/// Residency headroom: an index is treated as page-cache-resident when
/// twice its footprint fits the estimated cache budget.
pub const RESIDENT_HEADROOM: u64 = 2;
/// Per-unit footprint below which fanning out is not worth the per-round
/// thread spawns (scoped workers are spawned per query round).
pub const PARALLEL_MIN_UNIT_BYTES: u64 = 1 << 20;
/// Random-read share (permille) above which the rolling I/O history is
/// considered random-dominated and the read-ahead gate is raised (a
/// background sequential prefetch helps little when the workload's reads
/// are mostly random).
pub const RANDOM_HEAVY_PERMILLE: u32 = 750;
/// Widest batch one engine round pipeline is asked to carry; wider batches
/// are chunked (bounding the per-batch bound/cost bookkeeping) — answers
/// are identical under any chunking.
pub const MAX_BATCH_CHUNK: usize = 256;
/// Default read-ahead engage gate, re-exported from the storage layer.
pub const DEFAULT_PREFETCH_MIN_BYTES: u64 = coconut_storage::PREFETCH_MIN_BYTES as u64;

/// Maps a captured snapshot to a knob assignment.  **Pure**: the same
/// inputs always produce the same decision (pinned by a proptest), which is
/// what makes recorded [`PlanReport`]s replayable.
///
/// The policy, from the bench trajectory (see DESIGN.md "Adaptive
/// planning"):
///
/// * **Fan-out** engages only when there is more than one core *and* more
///   than one unit *and* the refinement work amortizes the per-round thread
///   spawns: the index spills past the cache budget, or each unit carries
///   at least [`PARALLEL_MIN_UNIT_BYTES`].  Approximate queries are
///   probe-only and never worth spawning for.
/// * **Read-ahead** is disabled outright for cache-resident indexes (the
///   pages are already hot; a prefetch thread is pure overhead), engages at
///   the default gate for spilling indexes, and at a raised gate when the
///   rolling read mix is random-dominated.
/// * **Batch shape** keeps the whole batch in one round pipeline (cheapest:
///   `N + 1` barriers) up to [`MAX_BATCH_CHUNK`], then chunks.
pub fn plan(inputs: &PlannerInputs) -> PlanDecision {
    let resident =
        inputs.footprint_bytes.saturating_mul(RESIDENT_HEADROOM) <= inputs.cache_budget_bytes;
    let per_unit_bytes = inputs.footprint_bytes / inputs.unit_count.max(1) as u64;
    let heavy = inputs.exact && (!resident || per_unit_bytes >= PARALLEL_MIN_UNIT_BYTES);
    let query_parallelism = if inputs.cores > 1 && inputs.unit_count > 1 && heavy {
        inputs.cores.min(inputs.unit_count)
    } else {
        1
    };
    let read_ahead = !resident;
    let prefetch_min_bytes = if inputs.random_read_permille >= RANDOM_HEAVY_PERMILLE {
        DEFAULT_PREFETCH_MIN_BYTES.saturating_mul(4)
    } else {
        DEFAULT_PREFETCH_MIN_BYTES
    };
    let batch_chunk = inputs.batch_width.clamp(1, MAX_BATCH_CHUNK);
    PlanDecision {
        query_parallelism,
        read_ahead,
        prefetch_min_bytes,
        batch_chunk,
    }
}

/// Captures the snapshot for one query and immediately decides, returning
/// the full report.
pub fn plan_report(inputs: PlannerInputs) -> PlanReport {
    PlanReport {
        decision: plan(&inputs),
        inputs,
    }
}

/// Host facts the capture step reads once per process: the estimated
/// page-cache budget and the core count.  Probing sits on the capture side
/// of the capture/decide split — the values land in [`PlannerInputs`], so a
/// recorded snapshot replays identically on any host.
#[derive(Debug, Clone, Copy)]
pub struct HostProbe {
    /// Estimated bytes of page cache available to this process.
    pub cache_budget_bytes: u64,
    /// Available cores.
    pub cores: usize,
}

static HOST_PROBE: OnceLock<HostProbe> = OnceLock::new();

/// The process-wide host probe, captured on first use (probing per query
/// would put a file read on the hot path for a value that moves slowly).
pub fn host_probe() -> HostProbe {
    *HOST_PROBE.get_or_init(|| HostProbe {
        cache_budget_bytes: cache_budget_bytes(),
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

/// Integer random-read share of an `IoStats` snapshot in permille, the form
/// [`PlannerInputs::random_read_permille`] captures (integer math keeps the
/// snapshot — and thus the decision — trivially replayable).
pub fn read_permille(snap: &coconut_storage::iostats::IoStatsSnapshot) -> u32 {
    match snap
        .random_reads
        .saturating_mul(1000)
        .checked_div(snap.total_reads())
    {
        Some(permille) => permille as u32,
        None => 0,
    }
}

/// Estimates the page-cache budget available to this process in bytes.
///
/// On Linux this reads `MemAvailable` from `/proc/meminfo` — the kernel's
/// own estimate of memory usable without swapping, which includes
/// reclaimable page cache.  Elsewhere (or if the probe fails) a fixed
/// 1 GiB fallback keeps the planner functional without claiming precision.
pub fn cache_budget_bytes() -> u64 {
    const FALLBACK: u64 = 1 << 30;
    match std::fs::read_to_string("/proc/meminfo") {
        Ok(text) => parse_meminfo_available(&text).unwrap_or(FALLBACK),
        Err(_) => FALLBACK,
    }
}

/// Parses the `MemAvailable:` line of `/proc/meminfo` (value is in KiB).
fn parse_meminfo_available(text: &str) -> Option<u64> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib.saturating_mul(1024));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test: the probe must report the host's real core count.
    /// An earlier revision collapsed `cores` to a constant, silently
    /// pinning every adaptive fan-out decision to single-core behavior on
    /// multi-core hosts.
    #[test]
    fn host_probe_reports_real_core_count() {
        let probe = host_probe();
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(probe.cores, expected);
        assert!(probe.cores >= 1);
        assert!(probe.cache_budget_bytes > 0);
        // The probe is process-wide and stable across calls.
        assert_eq!(host_probe().cores, probe.cores);
    }

    fn base_inputs() -> PlannerInputs {
        PlannerInputs {
            footprint_bytes: 64 << 20,
            cache_budget_bytes: 1 << 30,
            unit_count: 8,
            run_count: 3,
            cores: 4,
            k: 10,
            batch_width: 1,
            exact: true,
            random_read_permille: 100,
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_the_snapshot() {
        let inputs = base_inputs();
        let first = plan(&inputs);
        for _ in 0..100 {
            assert_eq!(plan(&inputs), first);
        }
    }

    #[test]
    fn tiny_resident_index_stays_sequential_with_no_read_ahead() {
        let inputs = PlannerInputs {
            footprint_bytes: 1 << 20,
            ..base_inputs()
        };
        let decision = plan(&inputs);
        assert_eq!(decision.query_parallelism, 1);
        assert!(!decision.read_ahead);
        assert_eq!(decision.effective_prefetch_gate(), usize::MAX);
    }

    #[test]
    fn spilling_index_fans_out_and_prefetches() {
        let inputs = PlannerInputs {
            footprint_bytes: 4 << 30,
            ..base_inputs()
        };
        let decision = plan(&inputs);
        assert_eq!(decision.query_parallelism, 4, "cores cap the fan-out");
        assert!(decision.read_ahead);
        assert_eq!(
            decision.effective_prefetch_gate(),
            DEFAULT_PREFETCH_MIN_BYTES as usize
        );
    }

    #[test]
    fn resident_but_chunky_units_still_fan_out() {
        // 64 MiB over 8 units = 8 MiB/unit: enough refinement work per
        // spawned worker even though the index is cache-resident.
        let decision = plan(&base_inputs());
        assert_eq!(decision.query_parallelism, 4);
    }

    #[test]
    fn approximate_probes_never_spawn() {
        let inputs = PlannerInputs {
            exact: false,
            footprint_bytes: 4 << 30,
            ..base_inputs()
        };
        assert_eq!(plan(&inputs).query_parallelism, 1);
    }

    #[test]
    fn single_core_hosts_always_run_sequentially() {
        let inputs = PlannerInputs {
            cores: 1,
            footprint_bytes: 4 << 30,
            ..base_inputs()
        };
        assert_eq!(plan(&inputs).query_parallelism, 1);
    }

    #[test]
    fn random_heavy_history_raises_the_prefetch_gate() {
        let inputs = PlannerInputs {
            footprint_bytes: 4 << 30,
            random_read_permille: 900,
            ..base_inputs()
        };
        let decision = plan(&inputs);
        assert_eq!(decision.prefetch_min_bytes, DEFAULT_PREFETCH_MIN_BYTES * 4);
    }

    #[test]
    fn wide_batches_are_chunked() {
        let narrow = PlannerInputs {
            batch_width: 12,
            ..base_inputs()
        };
        assert_eq!(plan(&narrow).batch_chunk, 12);
        let wide = PlannerInputs {
            batch_width: 10_000,
            ..base_inputs()
        };
        assert_eq!(plan(&wide).batch_chunk, MAX_BATCH_CHUNK);
        let empty = PlannerInputs {
            batch_width: 0,
            ..base_inputs()
        };
        assert_eq!(plan(&empty).batch_chunk, 1);
    }

    #[test]
    fn report_embeds_the_replayable_decision() {
        let report = plan_report(base_inputs());
        assert_eq!(report.decision, plan(&report.inputs));
    }

    #[test]
    fn meminfo_parsing() {
        let text = "MemTotal:       16000000 kB\nMemFree:         1000000 kB\nMemAvailable:    8000000 kB\n";
        assert_eq!(parse_meminfo_available(text), Some(8_000_000 * 1024));
        assert_eq!(parse_meminfo_available("MemTotal: 1 kB\n"), None);
        assert!(host_probe().cores >= 1);
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in [PlannerMode::Fixed, PlannerMode::Adaptive] {
            assert_eq!(PlannerMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(PlannerMode::parse("greedy"), None);
        assert_eq!(PlannerMode::default(), PlannerMode::Fixed);
    }
}
