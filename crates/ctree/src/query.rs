//! Query-side helpers shared by every index variant.

use std::collections::BinaryHeap;

use coconut_series::dataset::Dataset;
use coconut_series::distance::Neighbor;
use coconut_storage::iostats::AccessKind;
use coconut_storage::SharedIoStats;

use crate::Result;

/// A bounded max-heap holding the `k` best (smallest-distance) neighbours
/// seen so far; its current worst distance is the pruning bound.
#[derive(Debug)]
pub struct KnnHeap {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl KnnHeap {
    /// Creates a heap that retains the best `k` neighbours.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KnnHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps it only if it is among the best `k`.
    pub fn offer(&mut self, id: u64, squared_distance: f64) {
        let n = Neighbor::new(id, squared_distance);
        if self.heap.len() < self.k {
            self.heap.push(n);
        } else if let Some(worst) = self.heap.peek() {
            if n < *worst {
                self.heap.pop();
                self.heap.push(n);
            }
        }
    }

    /// Current pruning bound: the squared distance of the k-th best
    /// neighbour, or `+inf` while fewer than `k` have been seen.
    pub fn bound(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap
                .peek()
                .map(|n| n.squared_distance)
                .unwrap_or(f64::INFINITY)
        }
    }

    /// Number of neighbours currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no neighbour has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the heap, returning neighbours sorted by ascending distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort();
        v
    }
}

/// Per-query cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Entries whose summarization was examined (lower bound computed).
    pub entries_examined: u64,
    /// Entries refined with a true distance computation.
    pub entries_refined: u64,
    /// Raw series fetched from the original data file (non-materialized).
    pub raw_fetches: u64,
    /// Partitions / blocks skipped thanks to summarization pruning.
    pub blocks_skipped: u64,
    /// Partitions / blocks actually read.
    pub blocks_read: u64,
}

impl QueryCost {
    /// Element-wise sum.
    pub fn plus(&self, other: &QueryCost) -> QueryCost {
        QueryCost {
            entries_examined: self.entries_examined + other.entries_examined,
            entries_refined: self.entries_refined + other.entries_refined,
            raw_fetches: self.raw_fetches + other.raw_fetches,
            blocks_skipped: self.blocks_skipped + other.blocks_skipped,
            blocks_read: self.blocks_read + other.blocks_read,
        }
    }
}

/// Context passed through a query: access to the raw data file (for
/// non-materialized refinement), shared I/O statistics and cost counters.
pub struct QueryContext<'a> {
    dataset: Option<&'a Dataset>,
    stats: Option<SharedIoStats>,
    /// Cost counters accumulated during the query.
    pub cost: QueryCost,
}

impl<'a> QueryContext<'a> {
    /// Context for a materialized index (no raw data file needed).
    pub fn materialized() -> Self {
        QueryContext {
            dataset: None,
            stats: None,
            cost: QueryCost::default(),
        }
    }

    /// Context for a non-materialized index backed by `dataset`.  Raw series
    /// fetches are charged to `stats` as random page reads.
    pub fn non_materialized(dataset: &'a Dataset, stats: SharedIoStats) -> Self {
        QueryContext {
            dataset: Some(dataset),
            stats: Some(stats),
            cost: QueryCost::default(),
        }
    }

    /// Returns `true` when raw series can be fetched.
    pub fn can_fetch(&self) -> bool {
        self.dataset.is_some()
    }

    /// Fetches the raw values of series `id` from the data file, charging
    /// the access as a random read.
    pub fn fetch(&mut self, id: u64) -> Result<Vec<f32>> {
        let ds = self.dataset.ok_or_else(|| {
            crate::IndexError::Config(
                "non-materialized refinement requires a raw dataset handle".into(),
            )
        })?;
        let series = ds.read_series(id)?;
        self.cost.raw_fetches += 1;
        if let Some(stats) = &self.stats {
            stats.record(AccessKind::RandomRead, (series.len() * 4) as u64);
        }
        Ok(series.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::iostats::IoStats;
    use coconut_storage::ScratchDir;

    #[test]
    fn knn_heap_keeps_best_k() {
        let mut heap = KnnHeap::new(3);
        assert_eq!(heap.bound(), f64::INFINITY);
        for (id, d) in [(1, 9.0), (2, 1.0), (3, 4.0), (4, 16.0), (5, 0.5)] {
            heap.offer(id, d);
        }
        assert_eq!(heap.len(), 3);
        let sorted = heap.into_sorted();
        let ids: Vec<u64> = sorted.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![5, 2, 3]);
    }

    #[test]
    fn knn_heap_bound_tracks_worst_of_k() {
        let mut heap = KnnHeap::new(2);
        heap.offer(1, 10.0);
        assert_eq!(heap.bound(), f64::INFINITY);
        heap.offer(2, 5.0);
        assert_eq!(heap.bound(), 10.0);
        heap.offer(3, 1.0);
        assert_eq!(heap.bound(), 5.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        KnnHeap::new(0);
    }

    #[test]
    fn materialized_context_cannot_fetch() {
        let mut ctx = QueryContext::materialized();
        assert!(!ctx.can_fetch());
        assert!(ctx.fetch(0).is_err());
    }

    #[test]
    fn non_materialized_context_fetches_and_counts() {
        let dir = ScratchDir::new("qctx").unwrap();
        let mut gen = RandomWalkGenerator::new(32, 9);
        let series = gen.generate(5);
        let ds = Dataset::create_from_series(dir.file("d.bin"), &series).unwrap();
        let stats = IoStats::shared();
        let mut ctx = QueryContext::non_materialized(&ds, std::sync::Arc::clone(&stats));
        let v = ctx.fetch(3).unwrap();
        assert_eq!(v, series[3].values);
        assert_eq!(ctx.cost.raw_fetches, 1);
        assert_eq!(stats.snapshot().random_reads, 1);
    }

    #[test]
    fn query_cost_plus_adds_fields() {
        let a = QueryCost {
            entries_examined: 1,
            entries_refined: 2,
            raw_fetches: 3,
            blocks_skipped: 4,
            blocks_read: 5,
        };
        let b = a.plus(&a);
        assert_eq!(b.entries_examined, 2);
        assert_eq!(b.blocks_read, 10);
    }
}
