//! Query-side helpers shared by every index variant.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use coconut_series::distance::Neighbor;
use coconut_storage::iostats::AccessKind;
use coconut_storage::SharedIoStats;

use crate::raw::RawSeriesSource;
use crate::Result;

/// Maps an `f64` to a `u64` whose unsigned order matches the float order
/// (IEEE-754 total-order trick: flip the sign bit of non-negatives, flip all
/// bits of negatives).  Distances are non-negative, but the mapping is
/// implemented for the full domain so [`SharedBound`] is safe regardless.
fn f64_to_ordered_bits(value: f64) -> u64 {
    let bits = value.to_bits();
    if bits >> 63 == 0 {
        bits | (1u64 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`f64_to_ordered_bits`].
fn f64_from_ordered_bits(bits: u64) -> f64 {
    if bits >> 63 == 1 {
        f64::from_bits(bits & !(1u64 << 63))
    } else {
        f64::from_bits(!bits)
    }
}

/// A best-so-far pruning bound shared across concurrent query workers.
///
/// The bound is the squared distance of the k-th best neighbour discovered
/// so far, stored as *ordered bits* (the IEEE-754 total-order mapping
/// above) in one
/// `AtomicU64` and **monotonically tightened** via a CAS loop: a worker that
/// finishes probing a run publishes its local k-th-best distance, and the
/// stored value only ever decreases.  The structure is lock-free: readers
/// load one word, writers retry the CAS only while they still improve the
/// bound.
///
/// The concurrent query engine (see `crate::engine`) reads the bound at
/// deterministic phase boundaries rather than mid-scan, which is what keeps
/// query answers *and* cost counters bit-identical at every worker count.
#[derive(Debug)]
pub struct SharedBound {
    bits: AtomicU64,
}

impl Default for SharedBound {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedBound {
    /// Creates an untightened bound (`+inf`).
    pub fn new() -> Self {
        SharedBound {
            bits: AtomicU64::new(f64_to_ordered_bits(f64::INFINITY)),
        }
    }

    /// Current bound value.
    pub fn get(&self) -> f64 {
        f64_from_ordered_bits(self.bits.load(Ordering::Acquire))
    }

    /// Tightens the bound to `candidate` if it improves on the stored value.
    /// Returns `true` when this call lowered the bound.
    pub fn tighten(&self, candidate: f64) -> bool {
        let new = f64_to_ordered_bits(candidate);
        let mut current = self.bits.load(Ordering::Acquire);
        while new < current {
            match self
                .bits
                .compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
        false
    }
}

/// A bounded max-heap holding the `k` best (smallest-distance) neighbours
/// seen so far; its current worst distance is the pruning bound.
///
/// A heap may carry a *ceiling*: a pruning bound frozen from a
/// [`SharedBound`] at a phase boundary of the concurrent query engine.  The
/// effective bound is then the minimum of the ceiling and the heap's own
/// k-th-best distance, which injects cross-run pruning into per-run worker
/// searches without any mid-scan synchronization.
#[derive(Debug)]
pub struct KnnHeap {
    k: usize,
    heap: BinaryHeap<Neighbor>,
    ceiling: f64,
}

impl KnnHeap {
    /// Creates a heap that retains the best `k` neighbours.
    pub fn new(k: usize) -> Self {
        Self::with_ceiling(k, f64::INFINITY)
    }

    /// Creates a heap whose pruning bound never exceeds `ceiling`.
    pub fn with_ceiling(k: usize, ceiling: f64) -> Self {
        assert!(k > 0, "k must be positive");
        KnnHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            ceiling,
        }
    }

    /// Offers a candidate with timestamp zero (static data); keeps it only
    /// if it is among the best `k`.
    pub fn offer(&mut self, id: u64, squared_distance: f64) {
        self.offer_at(id, 0, squared_distance);
    }

    /// Offers a candidate carrying its entry's arrival timestamp.  Ties are
    /// resolved by the total `(distance, id, timestamp)` order of
    /// [`Neighbor`].
    pub fn offer_at(&mut self, id: u64, timestamp: u64, squared_distance: f64) {
        let n = Neighbor::new_at(id, timestamp, squared_distance);
        if self.heap.len() < self.k {
            self.heap.push(n);
        } else if let Some(worst) = self.heap.peek() {
            if n < *worst {
                self.heap.pop();
                self.heap.push(n);
            }
        }
    }

    /// Current pruning bound: the squared distance of the k-th best
    /// neighbour (or `+inf` while fewer than `k` have been seen), capped by
    /// the ceiling.
    pub fn bound(&self) -> f64 {
        let own = if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap
                .peek()
                .map(|n| n.squared_distance)
                .unwrap_or(f64::INFINITY)
        };
        own.min(self.ceiling)
    }

    /// Number of neighbours currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no neighbour has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the heap, returning neighbours sorted by ascending distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort();
        v
    }
}

/// Per-query cost counters.
///
/// Concurrent queries keep one `QueryCost` per worker (inside that worker's
/// [`QueryContext`]) and sum them into the returned cost with
/// [`QueryCost::plus`] once every worker has joined — counters are never
/// shared mutably across threads, so the aggregate is exact, and because
/// each per-unit search is deterministic the summed cost is identical at
/// every `query_parallelism` setting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Entries whose summarization was examined (lower bound computed).
    pub entries_examined: u64,
    /// Entries refined with a true distance computation.
    pub entries_refined: u64,
    /// Raw series fetched from the original data file (non-materialized).
    pub raw_fetches: u64,
    /// Partitions / blocks skipped thanks to summarization pruning.
    pub blocks_skipped: u64,
    /// Partitions / blocks actually read.
    pub blocks_read: u64,
}

impl QueryCost {
    /// Element-wise sum.
    pub fn plus(&self, other: &QueryCost) -> QueryCost {
        QueryCost {
            entries_examined: self.entries_examined + other.entries_examined,
            entries_refined: self.entries_refined + other.entries_refined,
            raw_fetches: self.raw_fetches + other.raw_fetches,
            blocks_skipped: self.blocks_skipped + other.blocks_skipped,
            blocks_read: self.blocks_read + other.blocks_read,
        }
    }
}

/// Context passed through a query: access to the raw data file (for
/// non-materialized refinement), shared I/O statistics and cost counters.
pub struct QueryContext<'a> {
    raw: Option<&'a RawSeriesSource>,
    stats: Option<SharedIoStats>,
    /// Cost counters accumulated during the query.
    pub cost: QueryCost,
}

impl<'a> QueryContext<'a> {
    /// Context for a materialized index (no raw data file needed).
    pub fn materialized() -> Self {
        QueryContext {
            raw: None,
            stats: None,
            cost: QueryCost::default(),
        }
    }

    /// Context for a non-materialized index backed by `raw` (a
    /// backend-aware reader over the original dataset file).  Raw series
    /// fetches are charged to `stats` as random page reads — identically at
    /// either read backend.
    pub fn non_materialized(raw: &'a RawSeriesSource, stats: SharedIoStats) -> Self {
        QueryContext {
            raw: Some(raw),
            stats: Some(stats),
            cost: QueryCost::default(),
        }
    }

    /// Returns `true` when raw series can be fetched.
    pub fn can_fetch(&self) -> bool {
        self.raw.is_some()
    }

    /// Fetches the raw values of series `id` from the data file, charging
    /// the access as a random read.
    pub fn fetch(&mut self, id: u64) -> Result<Vec<f32>> {
        let raw = self.raw.ok_or_else(|| {
            crate::IndexError::Config(
                "non-materialized refinement requires a raw dataset handle".into(),
            )
        })?;
        let values = raw.read_values(id)?;
        self.cost.raw_fetches += 1;
        if let Some(stats) = &self.stats {
            stats.record(AccessKind::RandomRead, (values.len() * 4) as u64);
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
    use coconut_storage::iostats::IoStats;
    use coconut_storage::ScratchDir;

    #[test]
    fn knn_heap_keeps_best_k() {
        let mut heap = KnnHeap::new(3);
        assert_eq!(heap.bound(), f64::INFINITY);
        for (id, d) in [(1, 9.0), (2, 1.0), (3, 4.0), (4, 16.0), (5, 0.5)] {
            heap.offer(id, d);
        }
        assert_eq!(heap.len(), 3);
        let sorted = heap.into_sorted();
        let ids: Vec<u64> = sorted.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![5, 2, 3]);
    }

    #[test]
    fn knn_heap_bound_tracks_worst_of_k() {
        let mut heap = KnnHeap::new(2);
        heap.offer(1, 10.0);
        assert_eq!(heap.bound(), f64::INFINITY);
        heap.offer(2, 5.0);
        assert_eq!(heap.bound(), 10.0);
        heap.offer(3, 1.0);
        assert_eq!(heap.bound(), 5.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        KnnHeap::new(0);
    }

    #[test]
    fn ceiling_caps_the_bound_without_blocking_offers() {
        let mut heap = KnnHeap::with_ceiling(2, 4.0);
        assert_eq!(heap.bound(), 4.0, "empty heap is bounded by the ceiling");
        heap.offer(1, 100.0);
        heap.offer(2, 50.0);
        // The heap's own k-th best (100.0) is looser than the ceiling.
        assert_eq!(heap.bound(), 4.0);
        heap.offer(3, 1.0);
        heap.offer(4, 2.0);
        // Now the heap's k-th best (2.0) undercuts the ceiling.
        assert_eq!(heap.bound(), 2.0);
        let ids: Vec<u64> = heap.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn equal_distance_offers_keep_smallest_id_then_timestamp() {
        let mut heap = KnnHeap::new(2);
        heap.offer_at(9, 5, 1.0);
        heap.offer_at(9, 3, 1.0);
        heap.offer_at(2, 7, 1.0);
        let sorted = heap.into_sorted();
        let keys: Vec<(u64, u64)> = sorted.iter().map(|n| (n.id, n.timestamp)).collect();
        assert_eq!(keys, vec![(2, 7), (9, 3)]);
    }

    #[test]
    fn shared_bound_tightens_monotonically() {
        let bound = SharedBound::new();
        assert_eq!(bound.get(), f64::INFINITY);
        assert!(bound.tighten(10.0));
        assert!(!bound.tighten(11.0), "looser values must be rejected");
        assert_eq!(bound.get(), 10.0);
        assert!(bound.tighten(0.5));
        assert!(!bound.tighten(0.5), "equal values do not tighten");
        assert_eq!(bound.get(), 0.5);
        assert!(bound.tighten(0.0));
        assert_eq!(bound.get(), 0.0);
    }

    #[test]
    fn shared_bound_is_consistent_under_concurrent_tightening() {
        let bound = SharedBound::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let bound = &bound;
                scope.spawn(move || {
                    for i in (1..500u64).rev() {
                        bound.tighten((t * 1000 + i) as f64);
                    }
                });
            }
        });
        // The global minimum of every published candidate must have won.
        assert_eq!(bound.get(), 1.0);
    }

    #[test]
    fn ordered_bits_roundtrip_and_order() {
        for v in [0.0f64, 1.5, 1e300, f64::INFINITY, -1.0, -0.0] {
            assert_eq!(f64_from_ordered_bits(f64_to_ordered_bits(v)), v);
        }
        assert!(f64_to_ordered_bits(-1.0) < f64_to_ordered_bits(0.0));
        assert!(f64_to_ordered_bits(0.0) < f64_to_ordered_bits(2.0));
        assert!(f64_to_ordered_bits(2.0) < f64_to_ordered_bits(f64::INFINITY));
    }

    #[test]
    fn materialized_context_cannot_fetch() {
        let mut ctx = QueryContext::materialized();
        assert!(!ctx.can_fetch());
        assert!(ctx.fetch(0).is_err());
    }

    #[test]
    fn non_materialized_context_fetches_and_counts() {
        let dir = ScratchDir::new("qctx").unwrap();
        let mut gen = RandomWalkGenerator::new(32, 9);
        let series = gen.generate(5);
        let ds = coconut_series::Dataset::create_from_series(dir.file("d.bin"), &series).unwrap();
        // The accounting contract is backend-independent: one random read of
        // the series' byte volume per fetch, whether the values came from a
        // positioned read or a mapping.
        for backend in [
            coconut_storage::IoBackend::Pread,
            coconut_storage::IoBackend::Mmap,
        ] {
            let raw = RawSeriesSource::new(ds.reopen().unwrap(), backend).unwrap();
            let stats = IoStats::shared();
            let mut ctx = QueryContext::non_materialized(&raw, std::sync::Arc::clone(&stats));
            let v = ctx.fetch(3).unwrap();
            assert_eq!(v, series[3].values);
            assert_eq!(ctx.cost.raw_fetches, 1);
            assert_eq!(stats.snapshot().random_reads, 1, "{backend}");
            assert_eq!(stats.snapshot().bytes_read, 32 * 4, "{backend}");
        }
    }

    #[test]
    fn query_cost_plus_adds_fields() {
        let a = QueryCost {
            entries_examined: 1,
            entries_refined: 2,
            raw_fetches: 3,
            blocks_skipped: 4,
            blocks_read: 5,
        };
        let b = a.plus(&a);
        assert_eq!(b.entries_examined, 2);
        assert_eq!(b.blocks_read, 10);
    }
}
