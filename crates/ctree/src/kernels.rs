//! Kernel dispatch: the engine-facing surface of the explicit SIMD
//! distance / z-normalization / PAA backends.
//!
//! The implementations live one layer down, in [`coconut_series::kernels`]
//! — they must sit below this crate because the summarization path
//! (z-normalization during dataset generation, PAA inside the SAX layer)
//! runs before any index exists — but the *engine* is where backend choice
//! matters operationally, so this module is the surface the index crates
//! (CTree, CLSM, ADS+, the streaming schemes) and the benches import:
//!
//! * [`active_backend`] / [`force_backend`] / [`KernelBackend`] — the
//!   process-wide backend selection (runtime `is_x86_feature_detected!`
//!   dispatch, `COCONUT_KERNELS` override: `auto|scalar|sse2|avx2`).
//! * [`euclidean_early_abandon`] / [`squared_euclidean`] — the refinement
//!   kernels every skip-sequential scan calls per candidate.
//! * The `*_with` entry points — address a specific backend explicitly
//!   (equivalence tests, per-backend benches) without touching the
//!   process-wide choice.
//!
//! **The backend is a pure performance knob**, exactly like `parallelism`
//! or `io_backend`: every backend performs the same IEEE-754 operations in
//! the same 8-lane association order (see the [`coconut_series::kernels`]
//! module docs for the full argument), so index files, answers,
//! `QueryCost` and `IoStats` are bit-identical whichever backend served
//! them — including the early-abandon *decision points*, which fire at the
//! same chunk boundary on every backend.  Enforced by
//! `crates/series/tests/kernel_equivalence.rs` (kernel level),
//! `crates/core/tests/kernel_backend_equivalence.rs` (index level) and the
//! `e17_scale` bench self-checks (scale level, every CI run).

pub use coconut_series::distance::{euclidean_early_abandon, squared_euclidean};
pub use coconut_series::kernels::{
    active_backend, euclidean_early_abandon_with, force_backend, scale_with,
    squared_euclidean_with, sum_sq_dev_with, sum_with, KernelBackend, LANES,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_layer_matches_series_kernels() {
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let b = [9.0f32, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let active = active_backend();
        assert!(active.available());
        assert_eq!(
            squared_euclidean(&a, &b).to_bits(),
            squared_euclidean_with(active, &a, &b).to_bits()
        );
        assert_eq!(
            euclidean_early_abandon(&a, &b, 1e9).map(f64::to_bits),
            euclidean_early_abandon_with(active, &a, &b, 1e9).map(f64::to_bits)
        );
    }
}
