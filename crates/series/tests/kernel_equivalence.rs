//! Kernel-backend equivalence: every SIMD backend is **bit-identical** to
//! the scalar reference on the distance / z-normalization / PAA kernels.
//!
//! This is the kernel-level half of the equivalence discipline (the
//! index-level half lives in `crates/core/tests/kernel_backend_equivalence.
//! rs`): proptests drive the `*_with` entry points across lengths 1..1024 —
//! non-multiple-of-8 tails included — value ranges from tiny to extreme
//! (NaN-free), and early-abandon thresholds straddling every chunk
//! boundary, asserting `f64::to_bits` equality, never approximate
//! closeness.  A deterministic grid additionally pins the full
//! `znormalize` / `paa` pipelines per backend via `force_backend`.

use coconut_series::kernels::{self, active_backend, force_backend, KernelBackend};
use coconut_series::paa::paa;
use coconut_series::znorm::znormalize;
use proptest::prelude::*;

/// Splits one generated vector into two equal-length halves, so `a` and `b`
/// share a length in 1..1024 without needing a dependent strategy.
fn halves(vals: &[f32]) -> (&[f32], &[f32]) {
    let half = vals.len() / 2;
    (&vals[..half], &vals[half..2 * half])
}

fn simd_backends() -> Vec<KernelBackend> {
    KernelBackend::available_backends()
        .into_iter()
        .filter(|b| *b != KernelBackend::Scalar)
        .collect()
}

proptest! {
    #[test]
    fn squared_euclidean_bits_identical(
        vals in proptest::collection::vec(-1e4f32..1e4, 2..2048),
    ) {
        let (a, b) = halves(&vals);
        let reference = kernels::squared_euclidean_with(KernelBackend::Scalar, a, b);
        for backend in simd_backends() {
            let got = kernels::squared_euclidean_with(backend, a, b);
            prop_assert_eq!(got.to_bits(), reference.to_bits(), "backend {}", backend);
        }
    }

    #[test]
    fn squared_euclidean_bits_identical_at_extremes(
        vals in proptest::collection::vec(-1e30f32..1e30, 2..256),
    ) {
        let (a, b) = halves(&vals);
        let reference = kernels::squared_euclidean_with(KernelBackend::Scalar, a, b);
        for backend in simd_backends() {
            let got = kernels::squared_euclidean_with(backend, a, b);
            prop_assert_eq!(got.to_bits(), reference.to_bits(), "backend {}", backend);
        }
    }

    #[test]
    fn early_abandon_decision_and_value_identical(
        vals in proptest::collection::vec(-100.0f32..100.0, 2..2048),
        factor in 0.0f64..1.5,
    ) {
        let (a, b) = halves(&vals);
        // Thresholds spanning abandon-at-early-chunk through never-abandon,
        // including factor values that land exactly on partial sums.
        let threshold = kernels::squared_euclidean_with(KernelBackend::Scalar, a, b) * factor;
        let reference =
            kernels::euclidean_early_abandon_with(KernelBackend::Scalar, a, b, threshold);
        for backend in simd_backends() {
            let got = kernels::euclidean_early_abandon_with(backend, a, b, threshold);
            prop_assert_eq!(
                got.map(f64::to_bits),
                reference.map(f64::to_bits),
                "backend {} threshold {}",
                backend,
                threshold
            );
        }
    }

    #[test]
    fn znorm_sums_bits_identical(
        vals in proptest::collection::vec(-1e4f32..1e4, 1..1024),
        mean in -100.0f64..100.0,
    ) {
        let ref_sum = kernels::sum_with(KernelBackend::Scalar, &vals);
        let ref_dev = kernels::sum_sq_dev_with(KernelBackend::Scalar, &vals, mean);
        for backend in simd_backends() {
            prop_assert_eq!(
                kernels::sum_with(backend, &vals).to_bits(),
                ref_sum.to_bits(),
                "sum backend {}",
                backend
            );
            prop_assert_eq!(
                kernels::sum_sq_dev_with(backend, &vals, mean).to_bits(),
                ref_dev.to_bits(),
                "sum_sq_dev backend {}",
                backend
            );
        }
    }

    #[test]
    fn scale_bits_identical(
        vals in proptest::collection::vec(-1e4f32..1e4, 1..1024),
        mean in -100.0f64..100.0,
        inv in 0.01f64..100.0,
    ) {
        let mut reference = vals.clone();
        kernels::scale_with(KernelBackend::Scalar, &mut reference, mean, inv);
        for backend in simd_backends() {
            let mut got = vals.clone();
            kernels::scale_with(backend, &mut got, mean, inv);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
            prop_assert_eq!(bits(&got), bits(&reference), "backend {}", backend);
        }
    }
}

/// Deterministic pseudo-random values (no dependence on the rand stand-in's
/// distribution) covering sign changes and magnitude spread.
fn wiggly(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed.wrapping_mul(1442695040888963407));
            ((x >> 33) as f64 / (1u64 << 31) as f64 - 0.5) as f32 * 200.0
        })
        .collect()
}

/// Every length in 1..=80 (all tail shapes around the 8-lane chunking, three
/// times over) plus larger sizes: the raw kernels agree bit-for-bit.
#[test]
fn kernel_grid_every_tail_shape() {
    for len in (1usize..=80).chain([100, 128, 255, 256, 257, 500, 1000, 1023, 1024]) {
        let a = wiggly(len, 7);
        let b = wiggly(len, 11);
        let reference = kernels::squared_euclidean_with(KernelBackend::Scalar, &a, &b);
        for backend in simd_backends() {
            assert_eq!(
                kernels::squared_euclidean_with(backend, &a, &b).to_bits(),
                reference.to_bits(),
                "len {len} backend {backend}"
            );
            // Threshold at ~half the distance: abandons mid-scan for most
            // lengths, exercising the per-chunk decision points.
            let half = reference * 0.5;
            assert_eq!(
                kernels::euclidean_early_abandon_with(backend, &a, &b, half).map(f64::to_bits),
                kernels::euclidean_early_abandon_with(KernelBackend::Scalar, &a, &b, half)
                    .map(f64::to_bits),
                "abandon len {len} backend {backend}"
            );
        }
    }
}

/// The *dispatched* pipelines (`znormalize`, `paa`) produce bit-identical
/// output whichever backend is pinned process-wide.
#[test]
fn dispatched_pipelines_identical_per_backend() {
    let initial = active_backend();
    for len in [1usize, 5, 8, 13, 16, 40, 96, 256, 1000, 1024] {
        let vals = wiggly(len, 3);

        force_backend(KernelBackend::Scalar);
        let ref_znorm = znormalize(&vals);
        let ref_paa: Vec<u64> = divisors(len)
            .flat_map(|segs| paa(&vals, segs))
            .map(f64::to_bits)
            .collect();
        let ref_paa_frac: Vec<u64> = fractional_segments(len)
            .flat_map(|segs| paa(&vals, segs))
            .map(f64::to_bits)
            .collect();

        for backend in simd_backends() {
            force_backend(backend);
            let got_znorm = znormalize(&vals);
            assert_eq!(
                got_znorm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ref_znorm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "znormalize len {len} backend {backend}"
            );
            let got_paa: Vec<u64> = divisors(len)
                .flat_map(|segs| paa(&vals, segs))
                .map(f64::to_bits)
                .collect();
            assert_eq!(got_paa, ref_paa, "paa len {len} backend {backend}");
            let got_frac: Vec<u64> = fractional_segments(len)
                .flat_map(|segs| paa(&vals, segs))
                .map(f64::to_bits)
                .collect();
            assert_eq!(
                got_frac, ref_paa_frac,
                "paa frac len {len} backend {backend}"
            );
        }
    }
    force_backend(initial);
}

/// All segment counts that divide `len` (the PAA fast path).
fn divisors(len: usize) -> impl Iterator<Item = usize> {
    (1..=len).filter(move |s| len.is_multiple_of(*s))
}

/// A few segment counts that do NOT divide `len` (the general fractional
/// path — scalar on every backend, so trivially identical, but pinned here
/// so a future vectorization of it keeps the contract).
fn fractional_segments(len: usize) -> impl Iterator<Item = usize> {
    (2..=len.min(7)).filter(move |s| !len.is_multiple_of(*s))
}
