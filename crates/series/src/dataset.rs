//! On-disk raw dataset files.
//!
//! Coconut distinguishes *materialized* indexes (which embed the full series
//! next to each summarization) from *non-materialized* indexes (which store
//! only summarization + series id and fetch the raw series from the original
//! data file when needed).  This module implements that raw data file: a
//! simple binary format holding fixed-length `f32` series, supporting
//! sequential streaming reads (for index construction) and random point reads
//! by series id (for non-materialized query refinement).
//!
//! ## File format
//!
//! ```text
//! [ magic: 8 bytes "COCOSER1" ]
//! [ series_len: u32 LE ] [ count: u64 LE ]
//! [ series 0: series_len * f32 LE ]
//! [ series 1: ... ]
//! ```
//!
//! The series id is implicit: series `i` starts at byte
//! `HEADER_LEN + i * series_len * 4`.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::series::{Series, SeriesId, SeriesMeta};
use crate::{Result, SeriesError};

const MAGIC: &[u8; 8] = b"COCOSER1";
/// Size in bytes of the dataset file header.
pub const HEADER_LEN: u64 = 8 + 4 + 8;

/// Writer that appends series to a new dataset file.
pub struct DatasetWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    series_len: usize,
    count: u64,
}

impl DatasetWriter {
    /// Creates a new dataset file at `path`, truncating any existing file.
    pub fn create<P: AsRef<Path>>(path: P, series_len: usize) -> Result<Self> {
        assert!(series_len > 0, "series length must be positive");
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path.as_ref())?;
        let mut writer = BufWriter::new(file);
        writer.write_all(MAGIC)?;
        writer.write_all(&(series_len as u32).to_le_bytes())?;
        writer.write_all(&0u64.to_le_bytes())?;
        Ok(DatasetWriter {
            path: path.as_ref().to_path_buf(),
            writer,
            series_len,
            count: 0,
        })
    }

    /// Appends a series, returning the id it was assigned.
    pub fn append(&mut self, values: &[f32]) -> Result<SeriesId> {
        if values.len() != self.series_len {
            return Err(SeriesError::LengthMismatch {
                expected: self.series_len,
                actual: values.len(),
            });
        }
        for v in values {
            self.writer.write_all(&v.to_le_bytes())?;
        }
        let id = self.count;
        self.count += 1;
        Ok(id)
    }

    /// Appends every series in the iterator, in order.
    pub fn append_all<'a, I: IntoIterator<Item = &'a Series>>(&mut self, series: I) -> Result<()> {
        for s in series {
            self.append(&s.values)?;
        }
        Ok(())
    }

    /// Number of series written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finalizes the file (rewrites the header with the final count) and
    /// returns a [`Dataset`] handle for reading it back.
    pub fn finish(mut self) -> Result<Dataset> {
        self.writer.flush()?;
        let mut file = self
            .writer
            .into_inner()
            .map_err(|e| SeriesError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(8 + 4))?;
        file.write_all(&self.count.to_le_bytes())?;
        file.sync_all()?;
        Dataset::open(&self.path)
    }
}

/// Read-only handle to a dataset file, optionally restricted to a
/// contiguous id window.
///
/// Cloning the handle is cheap (it re-opens the file), and reads are
/// positioned, so a `Dataset` can be shared across index variants.
///
/// A *windowed* handle (see [`Dataset::open_range`]) exposes only the
/// series in `[lo, hi)` — [`Dataset::len`] and [`Dataset::iter`] cover the
/// window — but ids stay **global** (a series' id is its position in the
/// file), so an index built over a window reports the same ids as an index
/// built over the whole file, and point reads by global id keep working.
/// This is the primitive behind service-level sharding: each worker builds
/// over its own key range of the shared dataset file and the coordinator's
/// merged answers carry globally unique ids with no translation.
pub struct Dataset {
    path: PathBuf,
    file: File,
    meta: SeriesMeta,
    /// The visible id window `[view_lo, view_hi)`; the full file when
    /// opened through [`Dataset::open`].
    view_lo: u64,
    view_hi: u64,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("path", &self.path)
            .field("meta", &self.meta)
            .finish()
    }
}

impl Dataset {
    /// Opens an existing dataset file.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut file = File::open(path.as_ref())?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SeriesError::BadHeader(format!(
                "bad magic {:?} in {}",
                magic,
                path.as_ref().display()
            )));
        }
        let mut len_buf = [0u8; 4];
        file.read_exact(&mut len_buf)?;
        let series_len = u32::from_le_bytes(len_buf) as usize;
        if series_len == 0 {
            return Err(SeriesError::BadHeader("series length is zero".into()));
        }
        let mut count_buf = [0u8; 8];
        file.read_exact(&mut count_buf)?;
        let count = u64::from_le_bytes(count_buf);
        Ok(Dataset {
            path: path.as_ref().to_path_buf(),
            file,
            meta: SeriesMeta { series_len, count },
            view_lo: 0,
            view_hi: count,
        })
    }

    /// Opens an existing dataset file restricted to the id window
    /// `[lo, hi)`.  Ids remain global (see the type docs); only
    /// [`Dataset::len`], [`Dataset::iter`] and [`Dataset::contains`] are
    /// narrowed.
    pub fn open_range<P: AsRef<Path>>(path: P, lo: u64, hi: u64) -> Result<Self> {
        let mut ds = Dataset::open(path)?;
        if lo > hi || hi > ds.meta.count {
            return Err(SeriesError::BadHeader(format!(
                "invalid dataset range [{lo}, {hi}) over {} series",
                ds.meta.count
            )));
        }
        ds.view_lo = lo;
        ds.view_hi = hi;
        Ok(ds)
    }

    /// Builds a dataset file at `path` from in-memory series and opens it.
    pub fn create_from_series<P: AsRef<Path>>(path: P, series: &[Series]) -> Result<Self> {
        assert!(!series.is_empty(), "cannot create an empty dataset");
        let mut w = DatasetWriter::create(path, series[0].len())?;
        w.append_all(series.iter())?;
        w.finish()
    }

    /// Dataset metadata (series length and count).
    pub fn meta(&self) -> SeriesMeta {
        self.meta
    }

    /// Number of series visible through this handle (the window size for a
    /// handle from [`Dataset::open_range`], the file count otherwise).
    pub fn len(&self) -> u64 {
        self.view_hi - self.view_lo
    }

    /// Returns `true` when the handle exposes no series.
    pub fn is_empty(&self) -> bool {
        self.view_hi == self.view_lo
    }

    /// The visible id window `[lo, hi)`.
    pub fn id_range(&self) -> (u64, u64) {
        (self.view_lo, self.view_hi)
    }

    /// Whether `id` falls inside the visible window.
    pub fn contains(&self, id: SeriesId) -> bool {
        id >= self.view_lo && id < self.view_hi
    }

    /// Length of each series in the dataset.
    pub fn series_len(&self) -> usize {
        self.meta.series_len
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Size of the dataset file in bytes.
    pub fn file_size(&self) -> u64 {
        HEADER_LEN + self.meta.count * (self.meta.series_len as u64) * 4
    }

    /// Reads the series with the given id (a random positioned read).
    pub fn read_series(&self, id: SeriesId) -> Result<Series> {
        if id >= self.meta.count {
            return Err(SeriesError::UnknownSeries(id));
        }
        let offset = HEADER_LEN + id * (self.meta.series_len as u64) * 4;
        let mut buf = vec![0u8; self.meta.series_len * 4];
        read_exact_at(&self.file, &mut buf, offset)?;
        let values = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Series::new(id, values))
    }

    /// Reads many series by id, in the given order.
    pub fn read_many(&self, ids: &[SeriesId]) -> Result<Vec<Series>> {
        ids.iter().map(|&id| self.read_series(id)).collect()
    }

    /// Returns a sequential iterator over the visible series, yielding
    /// their global ids.
    pub fn iter(&self) -> Result<DatasetReader> {
        DatasetReader::new(&self.path, self.view_lo, self.view_hi)
    }

    /// Re-opens the dataset, preserving the id window (useful to hand
    /// independent handles to threads).
    pub fn reopen(&self) -> Result<Dataset> {
        Dataset::open_range(&self.path, self.view_lo, self.view_hi)
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// Streaming sequential reader over a dataset file (or an id window of
/// one); yields global ids.
pub struct DatasetReader {
    reader: BufReader<File>,
    meta: SeriesMeta,
    next_id: SeriesId,
    end_id: SeriesId,
}

impl DatasetReader {
    fn new(path: &Path, lo: SeriesId, hi: SeriesId) -> Result<Self> {
        let ds = Dataset::open(path)?;
        let file = File::open(path)?;
        let mut reader = BufReader::with_capacity(1 << 20, file);
        reader.seek(SeekFrom::Start(
            HEADER_LEN + lo * (ds.meta.series_len as u64) * 4,
        ))?;
        Ok(DatasetReader {
            reader,
            meta: ds.meta,
            next_id: lo,
            end_id: hi.min(ds.meta.count),
        })
    }

    /// Metadata of the dataset being read.
    pub fn meta(&self) -> SeriesMeta {
        self.meta
    }
}

impl Iterator for DatasetReader {
    type Item = Result<Series>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_id >= self.end_id {
            return None;
        }
        let mut buf = vec![0u8; self.meta.series_len * 4];
        if let Err(e) = self.reader.read_exact(&mut buf) {
            return Some(Err(SeriesError::Io(e)));
        }
        let values: Vec<f32> = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let id = self.next_id;
        self.next_id += 1;
        Some(Ok(Series::new(id, values)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{RandomWalkGenerator, SeriesGenerator};

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "coconut-series-test-{}-{}",
            std::process::id(),
            name
        ));
        p
    }

    #[test]
    fn roundtrip_write_read() {
        let path = temp_path("roundtrip.bin");
        let mut gen = RandomWalkGenerator::new(64, 99);
        let series = gen.generate(50);
        let ds = Dataset::create_from_series(&path, &series).unwrap();
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.series_len(), 64);
        for s in &series {
            let back = ds.read_series(s.id).unwrap();
            assert_eq!(back.values, s.values);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sequential_iteration_matches_point_reads() {
        let path = temp_path("seq.bin");
        let mut gen = RandomWalkGenerator::new(32, 5);
        let series = gen.generate(20);
        let ds = Dataset::create_from_series(&path, &series).unwrap();
        let scanned: Vec<Series> = ds.iter().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(scanned.len(), 20);
        for (i, s) in scanned.iter().enumerate() {
            assert_eq!(s.id, i as u64);
            assert_eq!(s.values, series[i].values);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_series_id_is_an_error() {
        let path = temp_path("unknown.bin");
        let mut gen = RandomWalkGenerator::new(16, 1);
        let ds = Dataset::create_from_series(&path, &gen.generate(3)).unwrap();
        assert!(matches!(
            ds.read_series(3),
            Err(SeriesError::UnknownSeries(3))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn length_mismatch_rejected() {
        let path = temp_path("mismatch.bin");
        let mut w = DatasetWriter::create(&path, 8).unwrap();
        assert!(w.append(&[0.0; 8]).is_ok());
        assert!(matches!(
            w.append(&[0.0; 9]),
            Err(SeriesError::LengthMismatch {
                expected: 8,
                actual: 9
            })
        ));
        drop(w);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp_path("badmagic.bin");
        std::fs::write(&path, b"NOTRIGHTxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            Dataset::open(&path),
            Err(SeriesError::BadHeader(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_size_accounts_header_and_payload() {
        let path = temp_path("size.bin");
        let mut gen = RandomWalkGenerator::new(16, 2);
        let ds = Dataset::create_from_series(&path, &gen.generate(10)).unwrap();
        assert_eq!(ds.file_size(), HEADER_LEN + 10 * 16 * 4);
        let actual = std::fs::metadata(&path).unwrap().len();
        assert_eq!(actual, ds.file_size());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn windowed_view_keeps_global_ids() {
        let path = temp_path("window.bin");
        let mut gen = RandomWalkGenerator::new(16, 7);
        let series = gen.generate(10);
        Dataset::create_from_series(&path, &series).unwrap();
        let ds = Dataset::open_range(&path, 3, 7).unwrap();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.id_range(), (3, 7));
        assert!(ds.contains(3) && ds.contains(6));
        assert!(!ds.contains(2) && !ds.contains(7));
        let scanned: Vec<Series> = ds.iter().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(scanned.len(), 4);
        for (offset, s) in scanned.iter().enumerate() {
            assert_eq!(s.id, 3 + offset as u64);
            assert_eq!(s.values, series[3 + offset].values);
        }
        // Point reads by global id stay file-wide: refinement fetches may
        // target any series of the shared file.
        assert_eq!(ds.read_series(0).unwrap().values, series[0].values);
        assert_eq!(ds.read_series(9).unwrap().values, series[9].values);
        // The window is preserved across reopen.
        let ds2 = ds.reopen().unwrap();
        assert_eq!(ds2.len(), 4);
        assert_eq!(ds2.id_range(), (3, 7));
        // Invalid windows are rejected.
        assert!(Dataset::open_range(&path, 5, 4).is_err());
        assert!(Dataset::open_range(&path, 0, 11).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_gives_independent_handle() {
        let path = temp_path("reopen.bin");
        let mut gen = RandomWalkGenerator::new(16, 3);
        let ds = Dataset::create_from_series(&path, &gen.generate(4)).unwrap();
        let ds2 = ds.reopen().unwrap();
        assert_eq!(ds2.len(), ds.len());
        assert_eq!(
            ds.read_series(2).unwrap().values,
            ds2.read_series(2).unwrap().values
        );
        std::fs::remove_file(&path).unwrap();
    }
}
