//! Query workload construction.
//!
//! The demonstration scenarios issue nearest-neighbour queries against the
//! indexed collection.  Queries come in three flavours:
//!
//! * **Noisy members** — a series from the dataset perturbed with Gaussian
//!   noise.  These have a well-defined "intended" answer and are the standard
//!   way the data series literature evaluates approximate search quality.
//! * **Planted patterns** — the pattern templates from the generators (e.g.
//!   the supernova light curve), matching Scenario 1's "known patterns of
//!   interest".
//! * **Random walks** — queries unrelated to the dataset, exercising the
//!   worst case for pruning.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::series::Series;
use crate::znorm::znormalize_in_place;

/// The kind of queries a workload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Perturbed copies of dataset members (easy queries with known targets).
    NoisyMembers {
        /// Standard deviation of the additive Gaussian noise.
        noise_millis: u32,
    },
    /// Fresh random walks unrelated to the dataset (hard queries).
    RandomWalk,
}

/// A set of query series plus bookkeeping about how they were derived.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The query series (ids are indexes into this workload, not the dataset).
    pub queries: Vec<Series>,
    /// For noisy-member queries, the id of the dataset series each query was
    /// derived from (aligned with `queries`); empty for other kinds.
    pub source_ids: Vec<u64>,
    /// How this workload was constructed.
    pub kind: WorkloadKind,
}

impl QueryWorkload {
    /// Builds a workload of `count` noisy-member queries derived from
    /// `dataset` (in-memory series), with noise standard deviation
    /// `noise` (on z-normalized values, so ~0.1 is mild, ~1.0 severe).
    pub fn noisy_members(dataset: &[Series], count: usize, noise: f64, seed: u64) -> Self {
        assert!(!dataset.is_empty(), "dataset must not be empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queries = Vec::with_capacity(count);
        let mut source_ids = Vec::with_capacity(count);
        for qid in 0..count {
            let pick = rng.gen_range(0..dataset.len());
            let src = &dataset[pick];
            let mut values: Vec<f32> = src
                .values
                .iter()
                .map(|&v| v + (gaussian(&mut rng) * noise) as f32)
                .collect();
            znormalize_in_place(&mut values);
            queries.push(Series::new(qid as u64, values));
            source_ids.push(src.id);
        }
        QueryWorkload {
            queries,
            source_ids,
            kind: WorkloadKind::NoisyMembers {
                noise_millis: (noise * 1000.0) as u32,
            },
        }
    }

    /// Builds a workload of `count` independent random-walk queries.
    pub fn random_walks(series_len: usize, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queries = Vec::with_capacity(count);
        for qid in 0..count {
            let mut acc = 0.0f64;
            let mut values: Vec<f32> = (0..series_len)
                .map(|_| {
                    acc += gaussian(&mut rng);
                    acc as f32
                })
                .collect();
            znormalize_in_place(&mut values);
            queries.push(Series::new(qid as u64, values));
        }
        QueryWorkload {
            queries,
            source_ids: Vec::new(),
            kind: WorkloadKind::RandomWalk,
        }
    }

    /// Builds a workload from explicit query templates (e.g. pattern shapes).
    pub fn from_templates(templates: Vec<Vec<f32>>) -> Self {
        let queries = templates
            .into_iter()
            .enumerate()
            .map(|(i, mut values)| {
                znormalize_in_place(&mut values);
                Series::new(i as u64, values)
            })
            .collect();
        QueryWorkload {
            queries,
            source_ids: Vec::new(),
            kind: WorkloadKind::RandomWalk,
        }
    }

    /// Number of queries in the workload.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::brute_force_knn;
    use crate::generator::{RandomWalkGenerator, SeriesGenerator};

    #[test]
    fn noisy_member_queries_find_their_source_with_mild_noise() {
        let mut gen = RandomWalkGenerator::new(128, 21);
        let data = gen.generate(200);
        let wl = QueryWorkload::noisy_members(&data, 20, 0.05, 7);
        assert_eq!(wl.len(), 20);
        let mut hits = 0;
        for (q, &src) in wl.queries.iter().zip(wl.source_ids.iter()) {
            let nn = brute_force_knn(
                &q.values,
                data.iter().map(|s| (s.id, s.values.as_slice())),
                1,
            );
            if nn[0].id == src {
                hits += 1;
            }
        }
        // With very mild noise, the vast majority of queries must still map
        // back to their source series as nearest neighbour.
        assert!(hits >= 18, "only {hits}/20 queries found their source");
    }

    #[test]
    fn random_walk_workload_has_requested_shape() {
        let wl = QueryWorkload::random_walks(64, 11, 3);
        assert_eq!(wl.len(), 11);
        assert!(wl.source_ids.is_empty());
        assert!(wl.queries.iter().all(|q| q.len() == 64));
    }

    #[test]
    fn workload_is_deterministic() {
        let mut gen = RandomWalkGenerator::new(32, 1);
        let data = gen.generate(10);
        let a = QueryWorkload::noisy_members(&data, 5, 0.1, 42);
        let b = QueryWorkload::noisy_members(&data, 5, 0.1, 42);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.source_ids, b.source_ids);
    }

    #[test]
    fn from_templates_znormalizes() {
        let wl = QueryWorkload::from_templates(vec![vec![10.0, 20.0, 30.0, 40.0]]);
        let (mean, _) = crate::znorm::mean_std(&wl.queries[0].values);
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn empty_template_list_gives_empty_workload() {
        let wl = QueryWorkload::from_templates(vec![]);
        assert!(wl.is_empty());
    }
}
