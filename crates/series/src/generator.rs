//! Synthetic data series generators.
//!
//! The paper's demonstration scenarios operate on (1) a large static archive
//! of astronomy series containing known patterns of interest (supernova,
//! binary star, ...) and (2) a continuous stream of seismic measurements in
//! which earthquake patterns must be found within temporal windows.  Neither
//! dataset can be redistributed here, so this module provides synthetic
//! generators with the same statistical structure:
//!
//! * [`RandomWalkGenerator`] — the standard benchmark workload used by the
//!   original Coconut evaluation (each series is a cumulative sum of Gaussian
//!   steps, then z-normalized).
//! * [`AstronomyGenerator`] — random-walk background with *planted patterns*
//!   (parameterized templates for "supernova"-like bursts and "binary
//!   star"-like periodic dips), so that ground-truth matches exist.
//! * [`SeismicStreamGenerator`] — background noise with occasional
//!   high-energy "earthquake" bursts, produced in timestamped batches.
//!
//! All generators are deterministic given a seed so experiments are exactly
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::series::{Series, SeriesId, Timestamp, TimestampedSeries};
use crate::znorm::znormalize_in_place;

/// Common interface of all synthetic series generators.
pub trait SeriesGenerator {
    /// Length of every generated series.
    fn series_len(&self) -> usize;

    /// Generates the next series.
    fn next_series(&mut self) -> Series;

    /// Generates `count` series into a vector.
    fn generate(&mut self, count: usize) -> Vec<Series> {
        (0..count).map(|_| self.next_series()).collect()
    }
}

/// Kinds of planted patterns produced by the [`AstronomyGenerator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// A sharp rise followed by an exponential decay (supernova light curve).
    Supernova,
    /// A periodic dip pattern (eclipsing binary star light curve).
    BinaryStar,
    /// A sudden level shift (generic anomaly).
    StepChange,
    /// Pure random walk with no planted structure.
    Background,
}

impl PatternKind {
    /// All pattern kinds that correspond to actual planted templates.
    pub fn planted() -> [PatternKind; 3] {
        [
            PatternKind::Supernova,
            PatternKind::BinaryStar,
            PatternKind::StepChange,
        ]
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box-Muller transform; avoids depending on rand_distr.
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Generates z-normalized random-walk series.
///
/// This is the canonical synthetic workload of the data series indexing
/// literature (and of the original Coconut evaluation): each value is the
/// cumulative sum of i.i.d. standard Gaussian steps.
#[derive(Debug)]
pub struct RandomWalkGenerator {
    series_len: usize,
    next_id: SeriesId,
    rng: StdRng,
    znormalize: bool,
}

impl RandomWalkGenerator {
    /// Creates a generator producing series of `series_len` points, seeded
    /// deterministically with `seed`.
    pub fn new(series_len: usize, seed: u64) -> Self {
        assert!(series_len > 0, "series length must be positive");
        RandomWalkGenerator {
            series_len,
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
            znormalize: true,
        }
    }

    /// Disables the final z-normalization step (raw random walks).
    pub fn without_znormalization(mut self) -> Self {
        self.znormalize = false;
        self
    }
}

impl SeriesGenerator for RandomWalkGenerator {
    fn series_len(&self) -> usize {
        self.series_len
    }

    fn next_series(&mut self) -> Series {
        let mut values = Vec::with_capacity(self.series_len);
        let mut acc = 0.0f64;
        for _ in 0..self.series_len {
            acc += gaussian(&mut self.rng);
            values.push(acc as f32);
        }
        if self.znormalize {
            znormalize_in_place(&mut values);
        }
        let id = self.next_id;
        self.next_id += 1;
        Series::new(id, values)
    }
}

/// Astronomy-like generator: random-walk background with planted patterns.
///
/// A fraction `pattern_fraction` of the generated series embed one of the
/// planted templates ([`PatternKind`]), scaled and shifted randomly; the rest
/// are pure background random walks.  The generator records which pattern was
/// planted in each series so tests and demos can verify that queries using a
/// pattern template retrieve series that actually contain it.
#[derive(Debug)]
pub struct AstronomyGenerator {
    series_len: usize,
    next_id: SeriesId,
    rng: StdRng,
    pattern_fraction: f64,
    /// Pattern planted into each generated series, indexed by series id.
    labels: Vec<PatternKind>,
}

impl AstronomyGenerator {
    /// Creates a new astronomy-like generator.
    ///
    /// `pattern_fraction` is the probability that a generated series contains
    /// a planted pattern (uniformly chosen among the planted kinds).
    pub fn new(series_len: usize, seed: u64, pattern_fraction: f64) -> Self {
        assert!(series_len >= 16, "astronomy series need at least 16 points");
        assert!((0.0..=1.0).contains(&pattern_fraction));
        AstronomyGenerator {
            series_len,
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
            pattern_fraction,
            labels: Vec::new(),
        }
    }

    /// Returns the pattern planted in series `id`, if that id was generated.
    pub fn label(&self, id: SeriesId) -> Option<PatternKind> {
        self.labels.get(id as usize).copied()
    }

    /// Returns the ids of all generated series labelled with `kind`.
    pub fn ids_with_pattern(&self, kind: PatternKind) -> Vec<SeriesId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &k)| k == kind)
            .map(|(i, _)| i as SeriesId)
            .collect()
    }

    /// Produces the canonical (noise-free) template for a pattern kind, at
    /// this generator's series length.  Useful for constructing query targets
    /// ("known patterns of interest" in Scenario 1).
    pub fn template(&self, kind: PatternKind) -> Vec<f32> {
        let mut v = pattern_template(kind, self.series_len);
        znormalize_in_place(&mut v);
        v
    }

    fn background(&mut self) -> Vec<f32> {
        let mut values = Vec::with_capacity(self.series_len);
        let mut acc = 0.0f64;
        for _ in 0..self.series_len {
            acc += gaussian(&mut self.rng) * 0.5;
            values.push(acc as f32);
        }
        values
    }
}

/// Builds the noise-free template of a planted pattern.
pub fn pattern_template(kind: PatternKind, len: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; len];
    match kind {
        PatternKind::Supernova => {
            // Sharp rise at 1/4 of the series, exponential decay afterwards.
            let peak = len / 4;
            for (i, val) in v.iter_mut().enumerate() {
                if i < peak {
                    *val = (i as f32 / peak as f32) * 0.2;
                } else {
                    let t = (i - peak) as f32 / (len as f32 * 0.15);
                    *val = (1.0 + 4.0 * (-t).exp()).max(0.0);
                }
            }
        }
        PatternKind::BinaryStar => {
            // Periodic dips: baseline with Gaussian-shaped eclipses.
            let period = (len / 6).max(4);
            for (i, val) in v.iter_mut().enumerate() {
                let phase = (i % period) as f32 / period as f32;
                let dip = (-((phase - 0.5) * 10.0).powi(2)).exp();
                *val = 1.0 - 2.0 * dip;
            }
        }
        PatternKind::StepChange => {
            for (i, val) in v.iter_mut().enumerate() {
                *val = if i < len / 2 { -1.0 } else { 1.0 };
            }
        }
        PatternKind::Background => {}
    }
    v
}

impl SeriesGenerator for AstronomyGenerator {
    fn series_len(&self) -> usize {
        self.series_len
    }

    fn next_series(&mut self) -> Series {
        let plant: bool = self.rng.gen::<f64>() < self.pattern_fraction;
        let kind = if plant {
            let kinds = PatternKind::planted();
            kinds[self.rng.gen_range(0..kinds.len())]
        } else {
            PatternKind::Background
        };
        let mut values = self.background();
        if kind != PatternKind::Background {
            let template = pattern_template(kind, self.series_len);
            let amplitude = 3.0 + self.rng.gen::<f32>() * 2.0;
            for (v, t) in values.iter_mut().zip(template.iter()) {
                *v = *v * 0.2 + t * amplitude;
            }
        }
        znormalize_in_place(&mut values);
        let id = self.next_id;
        self.next_id += 1;
        self.labels.push(kind);
        Series::new(id, values)
    }
}

/// Seismic-like batch stream generator (Scenario 2).
///
/// Produces batches of timestamped series.  Most series are low-amplitude
/// background noise; with probability `quake_fraction` a series contains an
/// "earthquake" burst (a high-frequency, high-amplitude oscillation with an
/// exponentially decaying envelope).  Timestamps advance by one per series so
/// windows can be expressed directly in number-of-arrivals.
#[derive(Debug)]
pub struct SeismicStreamGenerator {
    series_len: usize,
    next_id: SeriesId,
    next_ts: Timestamp,
    rng: StdRng,
    quake_fraction: f64,
    quake_ids: Vec<SeriesId>,
}

impl SeismicStreamGenerator {
    /// Creates a new seismic stream generator.
    pub fn new(series_len: usize, seed: u64, quake_fraction: f64) -> Self {
        assert!(series_len >= 16);
        assert!((0.0..=1.0).contains(&quake_fraction));
        SeismicStreamGenerator {
            series_len,
            next_id: 0,
            next_ts: 0,
            rng: StdRng::seed_from_u64(seed),
            quake_fraction,
            quake_ids: Vec::new(),
        }
    }

    /// The canonical z-normalized earthquake template used for queries.
    pub fn quake_template(&self) -> Vec<f32> {
        let mut v = quake_template(self.series_len);
        znormalize_in_place(&mut v);
        v
    }

    /// Ids of all generated series that contain an earthquake burst.
    pub fn quake_ids(&self) -> &[SeriesId] {
        &self.quake_ids
    }

    /// Generates the next batch of `batch_size` timestamped series.
    pub fn next_batch(&mut self, batch_size: usize) -> Vec<TimestampedSeries> {
        (0..batch_size).map(|_| self.next_arrival()).collect()
    }

    /// Generates a single timestamped arrival.
    pub fn next_arrival(&mut self) -> TimestampedSeries {
        let is_quake = self.rng.gen::<f64>() < self.quake_fraction;
        let mut values: Vec<f32> = (0..self.series_len)
            .map(|_| (gaussian(&mut self.rng) * 0.3) as f32)
            .collect();
        if is_quake {
            let template = quake_template(self.series_len);
            let amplitude = 4.0 + self.rng.gen::<f32>() * 3.0;
            for (v, t) in values.iter_mut().zip(template.iter()) {
                *v += t * amplitude;
            }
            self.quake_ids.push(self.next_id);
        }
        znormalize_in_place(&mut values);
        let id = self.next_id;
        self.next_id += 1;
        let ts = self.next_ts;
        self.next_ts += 1;
        TimestampedSeries::new(Series::new(id, values), ts)
    }
}

/// Noise-free earthquake template: decaying high-frequency oscillation that
/// starts one third of the way into the series (P-wave onset).
pub fn quake_template(len: usize) -> Vec<f32> {
    let onset = len / 3;
    (0..len)
        .map(|i| {
            if i < onset {
                0.0
            } else {
                let t = (i - onset) as f32;
                let envelope = (-t / (len as f32 * 0.2)).exp();
                envelope * (t * 0.9).sin()
            }
        })
        .collect()
}

impl SeriesGenerator for SeismicStreamGenerator {
    fn series_len(&self) -> usize {
        self.series_len
    }

    fn next_series(&mut self) -> Series {
        self.next_arrival().series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::znorm::mean_std;

    #[test]
    fn random_walk_is_deterministic_given_seed() {
        let mut a = RandomWalkGenerator::new(64, 42);
        let mut b = RandomWalkGenerator::new(64, 42);
        assert_eq!(a.next_series(), b.next_series());
        assert_eq!(a.next_series(), b.next_series());
    }

    #[test]
    fn random_walk_different_seeds_differ() {
        let mut a = RandomWalkGenerator::new(64, 1);
        let mut b = RandomWalkGenerator::new(64, 2);
        assert_ne!(a.next_series().values, b.next_series().values);
    }

    #[test]
    fn random_walk_is_znormalized() {
        let mut g = RandomWalkGenerator::new(256, 7);
        let s = g.next_series();
        let (mean, std) = mean_std(&s.values);
        assert!(mean.abs() < 1e-4);
        assert!((std - 1.0).abs() < 1e-3);
    }

    #[test]
    fn random_walk_ids_are_dense() {
        let mut g = RandomWalkGenerator::new(32, 0);
        let batch = g.generate(10);
        for (i, s) in batch.iter().enumerate() {
            assert_eq!(s.id, i as u64);
            assert_eq!(s.len(), 32);
        }
    }

    #[test]
    fn astronomy_generator_plants_patterns() {
        let mut g = AstronomyGenerator::new(128, 3, 0.5);
        let _ = g.generate(200);
        let supernovae = g.ids_with_pattern(PatternKind::Supernova);
        let binaries = g.ids_with_pattern(PatternKind::BinaryStar);
        let background = g.ids_with_pattern(PatternKind::Background);
        assert!(!supernovae.is_empty());
        assert!(!binaries.is_empty());
        assert!(!background.is_empty());
        assert_eq!(g.label(supernovae[0]), Some(PatternKind::Supernova));
    }

    #[test]
    fn planted_series_are_closer_to_template_than_background() {
        let mut g = AstronomyGenerator::new(128, 11, 0.4);
        let all = g.generate(300);
        let template = g.template(PatternKind::Supernova);
        let sn_ids: std::collections::HashSet<_> = g
            .ids_with_pattern(PatternKind::Supernova)
            .into_iter()
            .collect();
        let bg_ids: std::collections::HashSet<_> = g
            .ids_with_pattern(PatternKind::Background)
            .into_iter()
            .collect();
        let mean_dist = |ids: &std::collections::HashSet<u64>| {
            let (sum, n) = all
                .iter()
                .filter(|s| ids.contains(&s.id))
                .map(|s| crate::distance::euclidean(&template, &s.values))
                .fold((0.0f64, 0usize), |(sum, n), d| (sum + d, n + 1));
            sum / n as f64
        };
        assert!(mean_dist(&sn_ids) < mean_dist(&bg_ids));
    }

    #[test]
    fn seismic_stream_batches_have_monotone_timestamps() {
        let mut g = SeismicStreamGenerator::new(64, 5, 0.1);
        let b1 = g.next_batch(10);
        let b2 = g.next_batch(10);
        assert_eq!(b1.len(), 10);
        let last_b1 = b1.last().unwrap().timestamp;
        let first_b2 = b2.first().unwrap().timestamp;
        assert!(first_b2 > last_b1);
        for w in b1.windows(2) {
            assert!(w[0].timestamp < w[1].timestamp);
        }
    }

    #[test]
    fn seismic_quake_series_match_template_better() {
        let mut g = SeismicStreamGenerator::new(96, 13, 0.2);
        let arrivals = g.next_batch(300);
        let template = g.quake_template();
        let quake_ids: std::collections::HashSet<_> = g.quake_ids().iter().copied().collect();
        assert!(!quake_ids.is_empty());
        let mut quake_d = 0.0;
        let mut quake_n = 0;
        let mut other_d = 0.0;
        let mut other_n = 0;
        for a in &arrivals {
            let d = crate::distance::euclidean(&template, &a.series.values);
            if quake_ids.contains(&a.series.id) {
                quake_d += d;
                quake_n += 1;
            } else {
                other_d += d;
                other_n += 1;
            }
        }
        assert!(quake_d / (quake_n as f64) < other_d / (other_n as f64));
    }

    #[test]
    fn templates_have_expected_length() {
        for kind in PatternKind::planted() {
            assert_eq!(pattern_template(kind, 77).len(), 77);
        }
        assert_eq!(quake_template(55).len(), 55);
    }
}
