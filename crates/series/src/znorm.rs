//! Z-normalization of data series.
//!
//! Similarity search over data series is almost always performed over
//! z-normalized series (zero mean, unit standard deviation) so that queries
//! match on *shape* rather than absolute offset or amplitude.  The SAX
//! breakpoints used by the summarization layer also assume a standard normal
//! value distribution, which z-normalization establishes approximately.

/// Minimum standard deviation below which a series is considered constant.
///
/// Constant (or near-constant) series cannot be scaled to unit variance, so
/// they are mapped to the all-zeros series instead, which is the convention
/// used by the iSAX family of implementations.
pub const MIN_STDDEV: f64 = 1e-8;

/// Returns a z-normalized copy of `values`.
pub fn znormalize(values: &[f32]) -> Vec<f32> {
    let mut out = values.to_vec();
    znormalize_in_place(&mut out);
    out
}

use crate::kernels;

/// Z-normalizes `values` in place (zero mean, unit standard deviation).
///
/// Near-constant inputs (standard deviation below [`MIN_STDDEV`]) are set to
/// all zeros.
///
/// The mean/variance sums accumulate in 8 independent `f64` lanes over
/// 8-wide chunks (the accumulator shape shared with the distance kernels)
/// and the scale pass is elementwise; all three dispatch to the
/// process-wide [`kernels`] backend and are bit-identical at every setting.
pub fn znormalize_in_place(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let backend = kernels::active_backend();
    let n = values.len() as f64;
    let mean = kernels::sum_with(backend, values) / n;
    let var = kernels::sum_sq_dev_with(backend, values, mean) / n;
    let std = var.sqrt();
    if std < MIN_STDDEV {
        for v in values.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    kernels::scale_with(backend, values, mean, 1.0 / std);
}

/// Returns the mean and (population) standard deviation of `values`.
pub fn mean_std(values: &[f32]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let backend = kernels::active_backend();
    let n = values.len() as f64;
    let mean = kernels::sum_with(backend, values) / n;
    let var = kernels::sum_sq_dev_with(backend, values, mean) / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znorm_produces_zero_mean_unit_std() {
        let vals: Vec<f32> = (0..128).map(|i| (i as f32) * 0.5 + 3.0).collect();
        let z = znormalize(&vals);
        let (mean, std) = mean_std(&z);
        assert!(mean.abs() < 1e-5, "mean was {mean}");
        assert!((std - 1.0).abs() < 1e-4, "std was {std}");
    }

    #[test]
    fn constant_series_becomes_zeros() {
        let vals = vec![5.0f32; 64];
        let z = znormalize(&vals);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_series_is_noop() {
        let mut vals: Vec<f32> = vec![];
        znormalize_in_place(&mut vals);
        assert!(vals.is_empty());
    }

    #[test]
    fn znorm_is_idempotent_up_to_epsilon() {
        let vals: Vec<f32> = (0..64).map(|i| ((i * 37) % 11) as f32 - 4.0).collect();
        let once = znormalize(&vals);
        let twice = znormalize(&once);
        for (a, b) in once.iter().zip(twice.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn mean_std_of_empty_is_zero() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn znorm_always_zero_mean(vals in proptest::collection::vec(-1e3f32..1e3, 2..256)) {
            let z = znormalize(&vals);
            let (mean, std) = mean_std(&z);
            // Either the series was (near-)constant and mapped to zeros,
            // or it has zero mean and unit std.
            if z.iter().all(|&v| v == 0.0) {
                prop_assert!(std.abs() < 1e-6);
            } else {
                prop_assert!(mean.abs() < 1e-3);
                prop_assert!((std - 1.0).abs() < 1e-2);
            }
        }

        #[test]
        fn znorm_preserves_length(vals in proptest::collection::vec(-1e3f32..1e3, 0..256)) {
            prop_assert_eq!(znormalize(&vals).len(), vals.len());
        }
    }
}
