//! Explicit SIMD kernel backends for the distance / z-normalization / PAA
//! hot loops.
//!
//! PR 1 shaped these kernels as eight independent `f64` accumulator lanes
//! over 8-wide chunks and *hoped* the compiler would auto-vectorize them.
//! This module removes the hope: the same loops are written three times —
//! once in plain scalar Rust (the reference, and the fallback on every
//! architecture), once with SSE2 intrinsics (baseline on `x86_64`, two
//! `f64` lanes per register), once with AVX2 intrinsics (runtime-detected,
//! four `f64` lanes per register) — and a process-wide dispatch picks the
//! best available backend once.
//!
//! # The bit-identity argument
//!
//! Every backend performs **exactly the same IEEE-754 operations in exactly
//! the same association order**, so results are bit-identical, not just
//! close:
//!
//! * The scalar kernels accumulate into `acc[0..8]` with
//!   `acc[lane] += d * d` where `d = a[lane] as f64 - b[lane] as f64`.
//!   `f32 → f64` conversion is exact, and `sub`/`mul`/`add` are individual
//!   correctly-rounded IEEE operations (Rust never contracts them into a
//!   fused multiply-add; the SIMD bodies use explicit `mul` + `add`
//!   intrinsics, never FMA).
//! * A vector register *is* a group of those lanes: SSE2 holds lane pairs
//!   `[0,1] [2,3] [4,5] [6,7]`, AVX2 holds quads `[0..4] [4..8]`.  Each
//!   vector `sub`/`mul`/`add` performs the identical lane-wise operation the
//!   scalar loop performs, so after any number of chunks every lane holds
//!   the identical bits on every backend.
//! * The horizontal reduction follows the scalar `lane_sum` tree —
//!   `((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))` — by construction:
//!   adding the register holding lanes `[0,1]` (resp. `[0..4]`) to the one
//!   holding `[4,5]` (resp. `[4..8]`) computes `l0+l4` and `l1+l5` in one
//!   instruction, and the remaining adds follow the same parenthesisation.
//!   The reduction order is also independent of how many chunks were
//!   processed, which is what lets partial (early-abandon) and full
//!   evaluations of the same prefix agree bit-for-bit.
//! * Early abandon checks `lane_sum(acc) > threshold` once per 8-wide chunk
//!   on every backend, so the *decision points* — not just the surviving
//!   distances — are identical: a candidate abandoned after chunk `c` by the
//!   scalar kernel is abandoned after chunk `c` by every SIMD kernel.
//! * The sub-8 tail is accumulated by the same sequential scalar loop on
//!   every backend, and `f64 → f32` stores (the z-normalization scale step)
//!   round to nearest-even both in scalar Rust (`as f32`) and in
//!   `cvtpd_ps` under the default MXCSR rounding mode.
//!
//! Because the backends are interchangeable bit-for-bit, the backend choice
//! is a pure performance knob in the same sense as `parallelism` or
//! `io_backend`: index files, answers, `QueryCost` and `IoStats` cannot
//! depend on it.  `crates/series/tests/kernel_equivalence.rs` proptests the
//! kernels across lengths 1..1024 and `crates/core/tests/`
//! `kernel_backend_equivalence.rs` re-proves it end-to-end through index
//! build + query; the `e17_scale` bench re-checks on every CI run.
//!
//! # Dispatch
//!
//! [`active_backend`] resolves once per process: the `COCONUT_KERNELS`
//! environment variable (`auto` | `scalar` | `sse2` | `avx2`) when set,
//! otherwise the best backend by the pinned preference order AVX2 >
//! scalar > SSE2 (`is_x86_feature_detected!("avx2")` → AVX2, else scalar).
//! SSE2 is deliberately *not* auto-selected: its four 2-lane `f64`
//! registers lose to what the compiler already auto-vectorizes for the
//! scalar kernel on the same baseline ISA, so it is only reachable by an
//! explicit `COCONUT_KERNELS=sse2` opt-in (kept for A/B measurement).
//! The public kernel entry points in [`crate::distance`],
//! [`crate::znorm`] and [`crate::paa`](mod@crate::paa) dispatch through it, so every caller
//! — summarization, index build, query refinement — uses the same backend.
//! Benches and equivalence tests address a specific backend through the
//! `*_with` functions or pin the process with [`force_backend`].
//! `coconut_ctree::kernels` re-exports this module as the engine-facing
//! dispatch surface.

use std::sync::atomic::{AtomicU8, Ordering};

/// Width of the accumulator kernels: 8 independent `f64` lanes.  Shared by
/// every backend; the chunk size of the early-abandon check.
pub const LANES: usize = 8;

/// A kernel implementation the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Plain scalar Rust: the reference implementation and the fallback on
    /// every architecture.
    Scalar,
    /// SSE2 intrinsics (`x86_64` baseline): four 2-lane `f64` registers.
    Sse2,
    /// AVX2 intrinsics (runtime-detected): two 4-lane `f64` registers.
    Avx2,
}

impl KernelBackend {
    /// Every backend, in increasing preference order.
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Scalar,
        KernelBackend::Sse2,
        KernelBackend::Avx2,
    ];

    /// Whether this backend can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            // SSE2 is part of the x86_64 baseline ABI: always present there.
            KernelBackend::Sse2 => cfg!(target_arch = "x86_64"),
            KernelBackend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }

    /// The backends available on the current CPU, scalar first.
    pub fn available_backends() -> Vec<KernelBackend> {
        Self::ALL.into_iter().filter(|b| b.available()).collect()
    }

    /// Auto-selection preference order.  AVX2 first; then *scalar*, not
    /// SSE2: the SSE2 kernel's four 2-lane `f64` registers are no faster
    /// than the auto-vectorized scalar loop on the same baseline ISA, so
    /// `auto` must never regress to it.  SSE2 stays last, reachable only by
    /// explicit `COCONUT_KERNELS=sse2` opt-in.
    const PREFERENCE: [KernelBackend; 3] = [
        KernelBackend::Avx2,
        KernelBackend::Scalar,
        KernelBackend::Sse2,
    ];

    /// The best backend the current CPU supports (ignores the environment),
    /// following the pinned `PREFERENCE` order (AVX2, then scalar, then
    /// SSE2 — SSE2 is explicit-opt-in only).
    pub fn detect() -> KernelBackend {
        *Self::PREFERENCE
            .iter()
            .find(|b| b.available())
            .expect("scalar backend is always available")
    }

    /// Short lowercase name ("scalar" / "sse2" / "avx2") used by reports and
    /// the `COCONUT_KERNELS` environment variable.
    pub fn name(&self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
        }
    }

    fn code(self) -> u8 {
        match self {
            KernelBackend::Scalar => 1,
            KernelBackend::Sse2 => 2,
            KernelBackend::Avx2 => 3,
        }
    }

    fn from_code(code: u8) -> Option<KernelBackend> {
        match code {
            1 => Some(KernelBackend::Scalar),
            2 => Some(KernelBackend::Sse2),
            3 => Some(KernelBackend::Avx2),
            _ => None,
        }
    }

    /// Resolves the `COCONUT_KERNELS` environment variable (unset / empty /
    /// `auto` → [`KernelBackend::detect`]).
    ///
    /// # Panics
    /// Panics on an unparseable value or a backend the CPU does not support
    /// — an operator who typoes `COCONUT_KERNELS=axv2` should get an error,
    /// not a process quietly running scalar.
    fn from_env() -> KernelBackend {
        match std::env::var("COCONUT_KERNELS") {
            Err(_) => Self::detect(),
            Ok(raw) => {
                let trimmed = raw.trim();
                if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("auto") {
                    return Self::detect();
                }
                let backend: KernelBackend = trimmed
                    .parse()
                    .unwrap_or_else(|e: String| panic!("COCONUT_KERNELS: {e}"));
                assert!(
                    backend.available(),
                    "COCONUT_KERNELS={trimmed}: backend not available on this CPU"
                );
                backend
            }
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for KernelBackend {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<KernelBackend, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(KernelBackend::Scalar),
            "sse2" => Ok(KernelBackend::Sse2),
            "avx2" => Ok(KernelBackend::Avx2),
            other => Err(format!(
                "unknown kernel backend '{other}' (auto|scalar|sse2|avx2)"
            )),
        }
    }
}

/// The process-wide backend choice: 0 = not yet resolved.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The backend every dispatched kernel call uses.
///
/// Resolved once per process from `COCONUT_KERNELS` / CPU detection (see
/// the module docs) and cached; [`force_backend`] overrides it.
pub fn active_backend() -> KernelBackend {
    match KernelBackend::from_code(ACTIVE.load(Ordering::Relaxed)) {
        Some(backend) => backend,
        None => {
            let backend = KernelBackend::from_env();
            ACTIVE.store(backend.code(), Ordering::Relaxed);
            backend
        }
    }
}

/// Pins the process-wide backend (benches and equivalence tests; production
/// code should configure `COCONUT_KERNELS` instead).  Returns the backend
/// that was active before.
///
/// # Panics
/// Panics if `backend` is not available on this CPU.
pub fn force_backend(backend: KernelBackend) -> KernelBackend {
    assert!(
        backend.available(),
        "kernel backend {backend} not available on this CPU"
    );
    let previous = active_backend();
    ACTIVE.store(backend.code(), Ordering::Relaxed);
    previous
}

#[cfg(target_arch = "x86_64")]
macro_rules! dispatch {
    ($backend:expr, $scalar:expr, $sse2:expr, $avx2:expr) => {
        match $backend {
            KernelBackend::Scalar => $scalar,
            // SSE2 is unconditionally part of the x86_64 baseline.
            KernelBackend::Sse2 => unsafe { $sse2 },
            KernelBackend::Avx2 => {
                assert!(
                    KernelBackend::Avx2.available(),
                    "avx2 kernels selected on a CPU without AVX2"
                );
                // Safety: availability checked on the line above (the
                // detection result is cached, so this is one relaxed load).
                unsafe { $avx2 }
            }
        }
    };
}

#[cfg(not(target_arch = "x86_64"))]
macro_rules! dispatch {
    ($backend:expr, $scalar:expr, $sse2:expr, $avx2:expr) => {
        match $backend {
            KernelBackend::Scalar => $scalar,
            other => panic!("kernel backend {other} not available on this architecture"),
        }
    };
}

/// Squared Euclidean distance on an explicit backend.
///
/// Bit-identical across backends; see the module docs.
///
/// # Panics
/// Panics if the slices have different lengths or the backend is
/// unavailable.
pub fn squared_euclidean_with(backend: KernelBackend, a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "squared_euclidean requires equal-length series"
    );
    dispatch!(
        backend,
        scalar::squared_euclidean(a, b),
        x86::sse2_squared_euclidean(a, b),
        x86::avx2_squared_euclidean(a, b)
    )
}

/// Early-abandoning squared Euclidean distance on an explicit backend.
///
/// Returns `None` as soon as the partial sum exceeds `threshold`, checked
/// once per 8-wide chunk; the abandon decision and any returned distance
/// are bit-identical across backends.
///
/// # Panics
/// Panics if the slices have different lengths or the backend is
/// unavailable.
pub fn euclidean_early_abandon_with(
    backend: KernelBackend,
    a: &[f32],
    b: &[f32],
    threshold: f64,
) -> Option<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "euclidean_early_abandon requires equal-length series"
    );
    dispatch!(
        backend,
        scalar::early_abandon(a, b, threshold),
        x86::sse2_early_abandon(a, b, threshold),
        x86::avx2_early_abandon(a, b, threshold)
    )
}

/// Sum of `values` (as `f64`) on an explicit backend: the z-normalization
/// mean pass and the PAA segment accumulator.
///
/// # Panics
/// Panics if the backend is unavailable.
pub fn sum_with(backend: KernelBackend, values: &[f32]) -> f64 {
    dispatch!(
        backend,
        scalar::sum(values),
        x86::sse2_sum(values),
        x86::avx2_sum(values)
    )
}

/// Sum of squared deviations from `mean` on an explicit backend: the
/// z-normalization variance pass.
///
/// # Panics
/// Panics if the backend is unavailable.
pub fn sum_sq_dev_with(backend: KernelBackend, values: &[f32], mean: f64) -> f64 {
    dispatch!(
        backend,
        scalar::sum_sq_dev(values, mean),
        x86::sse2_sum_sq_dev(values, mean),
        x86::avx2_sum_sq_dev(values, mean)
    )
}

/// Elementwise `v = ((v as f64 - mean) * inv) as f32` on an explicit
/// backend: the z-normalization scale pass.  Purely elementwise, so
/// bit-identity needs no ordering argument — only that every backend
/// performs the identical `sub`, `mul` and round-to-nearest `f64 → f32`
/// conversion per element.
///
/// # Panics
/// Panics if the backend is unavailable.
pub fn scale_with(backend: KernelBackend, values: &mut [f32], mean: f64, inv: f64) {
    dispatch!(
        backend,
        scalar::scale(values, mean, inv),
        x86::sse2_scale(values, mean, inv),
        x86::avx2_scale(values, mean, inv)
    )
}

/// The scalar reference kernels (PR 1's auto-vectorizable loops, verbatim).
pub(crate) mod scalar {
    use super::LANES;

    /// Pairwise lane reduction: fixed association order, independent of how
    /// many chunks were processed, so partial (early-abandon) and full
    /// evaluations of the same prefix agree bit-for-bit.  Every SIMD
    /// backend reproduces exactly this tree.
    #[inline]
    pub(crate) fn lane_sum(acc: [f64; LANES]) -> f64 {
        ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
    }

    /// Sequential squared-difference accumulation over the sub-8 tail.
    #[inline]
    pub(crate) fn squared_tail(a: &[f32], b: &[f32]) -> f64 {
        let mut acc = 0.0f64;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let d = x as f64 - y as f64;
            acc += d * d;
        }
        acc
    }

    pub(crate) fn squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
        let mut acc = [0.0f64; LANES];
        let chunks = a.len() / LANES;
        for (ca, cb) in a
            .chunks_exact(LANES)
            .zip(b.chunks_exact(LANES))
            .take(chunks)
        {
            for lane in 0..LANES {
                let d = ca[lane] as f64 - cb[lane] as f64;
                acc[lane] += d * d;
            }
        }
        lane_sum(acc) + squared_tail(&a[chunks * LANES..], &b[chunks * LANES..])
    }

    pub(crate) fn early_abandon(a: &[f32], b: &[f32], threshold: f64) -> Option<f64> {
        let mut acc = [0.0f64; LANES];
        let chunks = a.len() / LANES;
        for (ca, cb) in a
            .chunks_exact(LANES)
            .zip(b.chunks_exact(LANES))
            .take(chunks)
        {
            for lane in 0..LANES {
                let d = ca[lane] as f64 - cb[lane] as f64;
                acc[lane] += d * d;
            }
            if lane_sum(acc) > threshold {
                return None;
            }
        }
        let total = lane_sum(acc) + squared_tail(&a[chunks * LANES..], &b[chunks * LANES..]);
        if total > threshold {
            None
        } else {
            Some(total)
        }
    }

    pub(crate) fn sum(values: &[f32]) -> f64 {
        let mut acc = [0.0f64; LANES];
        let chunks = values.len() / LANES;
        for chunk in values.chunks_exact(LANES).take(chunks) {
            for lane in 0..LANES {
                acc[lane] += chunk[lane] as f64;
            }
        }
        let mut tail = 0.0f64;
        for &v in &values[chunks * LANES..] {
            tail += v as f64;
        }
        lane_sum(acc) + tail
    }

    pub(crate) fn sum_sq_dev(values: &[f32], mean: f64) -> f64 {
        let mut acc = [0.0f64; LANES];
        let chunks = values.len() / LANES;
        for chunk in values.chunks_exact(LANES).take(chunks) {
            for lane in 0..LANES {
                let d = chunk[lane] as f64 - mean;
                acc[lane] += d * d;
            }
        }
        let mut tail = 0.0f64;
        for &v in &values[chunks * LANES..] {
            let d = v as f64 - mean;
            tail += d * d;
        }
        lane_sum(acc) + tail
    }

    pub(crate) fn scale(values: &mut [f32], mean: f64, inv: f64) {
        for v in values.iter_mut() {
            *v = ((*v as f64 - mean) * inv) as f32;
        }
    }
}

/// The `x86_64` SIMD kernels.  Lane layout: SSE2 registers hold lane pairs
/// `[0,1] [2,3] [4,5] [6,7]` of the scalar accumulator array; AVX2
/// registers hold the quads `[0..4]` and `[4..8]`.  See the module docs for
/// why this makes every result bit-identical to the scalar reference.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{scalar, LANES};
    use core::arch::x86_64::*;

    /// Converts 8 consecutive `f32`s at `p` into four 2-lane `f64` vectors
    /// `([0,1], [2,3], [4,5], [6,7])`.
    ///
    /// Safety: `p` must be valid for reading 8 `f32`s (unaligned ok).
    #[inline(always)]
    unsafe fn sse2_load(p: *const f32) -> (__m128d, __m128d, __m128d, __m128d) {
        let lo = _mm_loadu_ps(p);
        let hi = _mm_loadu_ps(p.add(4));
        (
            _mm_cvtps_pd(lo),
            _mm_cvtps_pd(_mm_movehl_ps(lo, lo)),
            _mm_cvtps_pd(hi),
            _mm_cvtps_pd(_mm_movehl_ps(hi, hi)),
        )
    }

    /// The scalar `lane_sum` tree on SSE2 lanes: `a01 + a45 = [0+4, 1+5]`
    /// and `a23 + a67 = [2+6, 3+7]`; their sum holds
    /// `[(0+4)+(2+6), (1+5)+(3+7)]`, and low + high completes
    /// `((0+4)+(2+6)) + ((1+5)+(3+7))` — the identical association order.
    #[inline(always)]
    unsafe fn sse2_lane_sum(a01: __m128d, a23: __m128d, a45: __m128d, a67: __m128d) -> f64 {
        let left = _mm_add_pd(a01, a45);
        let right = _mm_add_pd(a23, a67);
        let tree = _mm_add_pd(left, right);
        _mm_cvtsd_f64(tree) + _mm_cvtsd_f64(_mm_unpackhi_pd(tree, tree))
    }

    pub(super) unsafe fn sse2_squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
        let chunks = a.len() / LANES;
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        let mut acc45 = _mm_setzero_pd();
        let mut acc67 = _mm_setzero_pd();
        for i in 0..chunks {
            let (a01, a23, a45, a67) = sse2_load(a.as_ptr().add(i * LANES));
            let (b01, b23, b45, b67) = sse2_load(b.as_ptr().add(i * LANES));
            let d01 = _mm_sub_pd(a01, b01);
            let d23 = _mm_sub_pd(a23, b23);
            let d45 = _mm_sub_pd(a45, b45);
            let d67 = _mm_sub_pd(a67, b67);
            acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
            acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
            acc45 = _mm_add_pd(acc45, _mm_mul_pd(d45, d45));
            acc67 = _mm_add_pd(acc67, _mm_mul_pd(d67, d67));
        }
        sse2_lane_sum(acc01, acc23, acc45, acc67)
            + scalar::squared_tail(&a[chunks * LANES..], &b[chunks * LANES..])
    }

    pub(super) unsafe fn sse2_early_abandon(a: &[f32], b: &[f32], threshold: f64) -> Option<f64> {
        let chunks = a.len() / LANES;
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        let mut acc45 = _mm_setzero_pd();
        let mut acc67 = _mm_setzero_pd();
        for i in 0..chunks {
            let (a01, a23, a45, a67) = sse2_load(a.as_ptr().add(i * LANES));
            let (b01, b23, b45, b67) = sse2_load(b.as_ptr().add(i * LANES));
            let d01 = _mm_sub_pd(a01, b01);
            let d23 = _mm_sub_pd(a23, b23);
            let d45 = _mm_sub_pd(a45, b45);
            let d67 = _mm_sub_pd(a67, b67);
            acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
            acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
            acc45 = _mm_add_pd(acc45, _mm_mul_pd(d45, d45));
            acc67 = _mm_add_pd(acc67, _mm_mul_pd(d67, d67));
            if sse2_lane_sum(acc01, acc23, acc45, acc67) > threshold {
                return None;
            }
        }
        let total = sse2_lane_sum(acc01, acc23, acc45, acc67)
            + scalar::squared_tail(&a[chunks * LANES..], &b[chunks * LANES..]);
        if total > threshold {
            None
        } else {
            Some(total)
        }
    }

    pub(super) unsafe fn sse2_sum(values: &[f32]) -> f64 {
        let chunks = values.len() / LANES;
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        let mut acc45 = _mm_setzero_pd();
        let mut acc67 = _mm_setzero_pd();
        for i in 0..chunks {
            let (v01, v23, v45, v67) = sse2_load(values.as_ptr().add(i * LANES));
            acc01 = _mm_add_pd(acc01, v01);
            acc23 = _mm_add_pd(acc23, v23);
            acc45 = _mm_add_pd(acc45, v45);
            acc67 = _mm_add_pd(acc67, v67);
        }
        let mut tail = 0.0f64;
        for &v in &values[chunks * LANES..] {
            tail += v as f64;
        }
        sse2_lane_sum(acc01, acc23, acc45, acc67) + tail
    }

    pub(super) unsafe fn sse2_sum_sq_dev(values: &[f32], mean: f64) -> f64 {
        let chunks = values.len() / LANES;
        let m = _mm_set1_pd(mean);
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        let mut acc45 = _mm_setzero_pd();
        let mut acc67 = _mm_setzero_pd();
        for i in 0..chunks {
            let (v01, v23, v45, v67) = sse2_load(values.as_ptr().add(i * LANES));
            let d01 = _mm_sub_pd(v01, m);
            let d23 = _mm_sub_pd(v23, m);
            let d45 = _mm_sub_pd(v45, m);
            let d67 = _mm_sub_pd(v67, m);
            acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
            acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
            acc45 = _mm_add_pd(acc45, _mm_mul_pd(d45, d45));
            acc67 = _mm_add_pd(acc67, _mm_mul_pd(d67, d67));
        }
        let mut tail = 0.0f64;
        for &v in &values[chunks * LANES..] {
            let d = v as f64 - mean;
            tail += d * d;
        }
        sse2_lane_sum(acc01, acc23, acc45, acc67) + tail
    }

    pub(super) unsafe fn sse2_scale(values: &mut [f32], mean: f64, inv: f64) {
        let m = _mm_set1_pd(mean);
        let s = _mm_set1_pd(inv);
        let quads = values.len() / 4;
        let p = values.as_mut_ptr();
        for i in 0..quads {
            let v = _mm_loadu_ps(p.add(i * 4));
            let lo = _mm_mul_pd(_mm_sub_pd(_mm_cvtps_pd(v), m), s);
            let hi = _mm_mul_pd(_mm_sub_pd(_mm_cvtps_pd(_mm_movehl_ps(v, v)), m), s);
            let out = _mm_movelh_ps(_mm_cvtpd_ps(lo), _mm_cvtpd_ps(hi));
            _mm_storeu_ps(p.add(i * 4), out);
        }
        scalar::scale(&mut values[quads * 4..], mean, inv);
    }

    /// Converts 8 consecutive `f32`s at `p` into two 4-lane `f64` vectors
    /// `([0..4], [4..8])`.
    ///
    /// Safety: `p` must be valid for reading 8 `f32`s (unaligned ok);
    /// requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_load(p: *const f32) -> (__m256d, __m256d) {
        let v = _mm256_loadu_ps(p);
        (
            _mm256_cvtps_pd(_mm256_castps256_ps128(v)),
            _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)),
        )
    }

    /// The scalar `lane_sum` tree on AVX2 lanes: `lo + hi` computes
    /// `[0+4, 1+5, 2+6, 3+7]` in one instruction; adding its 128-bit
    /// halves yields `[(0+4)+(2+6), (1+5)+(3+7)]`, and low + high
    /// completes the identical association order.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_lane_sum(lo: __m256d, hi: __m256d) -> f64 {
        let tree = _mm256_add_pd(lo, hi);
        let halves = _mm_add_pd(_mm256_castpd256_pd128(tree), _mm256_extractf128_pd(tree, 1));
        _mm_cvtsd_f64(halves) + _mm_cvtsd_f64(_mm_unpackhi_pd(halves, halves))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
        let chunks = a.len() / LANES;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        for i in 0..chunks {
            let (a_lo, a_hi) = avx2_load(a.as_ptr().add(i * LANES));
            let (b_lo, b_hi) = avx2_load(b.as_ptr().add(i * LANES));
            let d_lo = _mm256_sub_pd(a_lo, b_lo);
            let d_hi = _mm256_sub_pd(a_hi, b_hi);
            // Explicit mul + add (never FMA): matches the scalar rounding.
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
        }
        avx2_lane_sum(acc_lo, acc_hi)
            + scalar::squared_tail(&a[chunks * LANES..], &b[chunks * LANES..])
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_early_abandon(a: &[f32], b: &[f32], threshold: f64) -> Option<f64> {
        let chunks = a.len() / LANES;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        for i in 0..chunks {
            let (a_lo, a_hi) = avx2_load(a.as_ptr().add(i * LANES));
            let (b_lo, b_hi) = avx2_load(b.as_ptr().add(i * LANES));
            let d_lo = _mm256_sub_pd(a_lo, b_lo);
            let d_hi = _mm256_sub_pd(a_hi, b_hi);
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
            if avx2_lane_sum(acc_lo, acc_hi) > threshold {
                return None;
            }
        }
        let total = avx2_lane_sum(acc_lo, acc_hi)
            + scalar::squared_tail(&a[chunks * LANES..], &b[chunks * LANES..]);
        if total > threshold {
            None
        } else {
            Some(total)
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_sum(values: &[f32]) -> f64 {
        let chunks = values.len() / LANES;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        for i in 0..chunks {
            let (v_lo, v_hi) = avx2_load(values.as_ptr().add(i * LANES));
            acc_lo = _mm256_add_pd(acc_lo, v_lo);
            acc_hi = _mm256_add_pd(acc_hi, v_hi);
        }
        let mut tail = 0.0f64;
        for &v in &values[chunks * LANES..] {
            tail += v as f64;
        }
        avx2_lane_sum(acc_lo, acc_hi) + tail
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_sum_sq_dev(values: &[f32], mean: f64) -> f64 {
        let chunks = values.len() / LANES;
        let m = _mm256_set1_pd(mean);
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        for i in 0..chunks {
            let (v_lo, v_hi) = avx2_load(values.as_ptr().add(i * LANES));
            let d_lo = _mm256_sub_pd(v_lo, m);
            let d_hi = _mm256_sub_pd(v_hi, m);
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(d_lo, d_lo));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(d_hi, d_hi));
        }
        let mut tail = 0.0f64;
        for &v in &values[chunks * LANES..] {
            let d = v as f64 - mean;
            tail += d * d;
        }
        avx2_lane_sum(acc_lo, acc_hi) + tail
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_scale(values: &mut [f32], mean: f64, inv: f64) {
        let m = _mm256_set1_pd(mean);
        let s = _mm256_set1_pd(inv);
        let quads = values.len() / 4;
        let p = values.as_mut_ptr();
        for i in 0..quads {
            let v = _mm256_cvtps_pd(_mm_loadu_ps(p.add(i * 4)));
            let scaled = _mm256_mul_pd(_mm256_sub_pd(v, m), s);
            _mm_storeu_ps(p.add(i * 4), _mm256_cvtpd_ps(scaled));
        }
        scalar::scale(&mut values[quads * 4..], mean, inv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiggly(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 33) as f64 / (1u64 << 31) as f64 - 0.5) as f32 * 100.0
            })
            .collect()
    }

    #[test]
    fn scalar_backend_is_always_available() {
        assert!(KernelBackend::Scalar.available());
        assert!(KernelBackend::available_backends().contains(&KernelBackend::Scalar));
        assert!(KernelBackend::detect().available());
    }

    #[test]
    fn auto_detection_never_picks_sse2() {
        // SSE2 is always available on x86_64 yet slower than the
        // auto-vectorized scalar kernel; `auto` must resolve past it.
        assert_ne!(KernelBackend::detect(), KernelBackend::Sse2);
        // On any CPU without AVX2 the pinned order lands on scalar.
        if !KernelBackend::Avx2.available() {
            assert_eq!(KernelBackend::detect(), KernelBackend::Scalar);
        } else {
            assert_eq!(KernelBackend::detect(), KernelBackend::Avx2);
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in KernelBackend::ALL {
            assert_eq!(b.name().parse::<KernelBackend>().unwrap(), b);
        }
        assert!("axv2".parse::<KernelBackend>().is_err());
    }

    #[test]
    fn active_backend_is_available_and_forceable() {
        let initial = active_backend();
        assert!(initial.available());
        let previous = force_backend(KernelBackend::Scalar);
        assert_eq!(previous, initial);
        assert_eq!(active_backend(), KernelBackend::Scalar);
        force_backend(initial);
    }

    #[test]
    fn all_available_backends_match_scalar_bits() {
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 100, 256] {
            let a = wiggly(len, 1);
            let b = wiggly(len, 2);
            let reference = squared_euclidean_with(KernelBackend::Scalar, &a, &b);
            let ref_sum = sum_with(KernelBackend::Scalar, &a);
            let ref_dev = sum_sq_dev_with(KernelBackend::Scalar, &a, 0.25);
            let mut ref_scaled = a.clone();
            scale_with(KernelBackend::Scalar, &mut ref_scaled, 0.25, 1.75);
            for backend in KernelBackend::available_backends() {
                assert_eq!(
                    squared_euclidean_with(backend, &a, &b).to_bits(),
                    reference.to_bits(),
                    "squared_euclidean len {len} backend {backend}"
                );
                assert_eq!(
                    sum_with(backend, &a).to_bits(),
                    ref_sum.to_bits(),
                    "sum len {len} backend {backend}"
                );
                assert_eq!(
                    sum_sq_dev_with(backend, &a, 0.25).to_bits(),
                    ref_dev.to_bits(),
                    "sum_sq_dev len {len} backend {backend}"
                );
                let mut scaled = a.clone();
                scale_with(backend, &mut scaled, 0.25, 1.75);
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&scaled),
                    bits(&ref_scaled),
                    "scale len {len} backend {backend}"
                );
            }
        }
    }

    #[test]
    fn early_abandon_decisions_match_scalar_at_partial_thresholds() {
        let a = wiggly(41, 3);
        let b = wiggly(41, 4);
        let full = squared_euclidean_with(KernelBackend::Scalar, &a, &b);
        // Thresholds straddling every chunk boundary's partial sum.
        for factor in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.0, 1.5] {
            let threshold = full * factor;
            let reference = euclidean_early_abandon_with(KernelBackend::Scalar, &a, &b, threshold);
            for backend in KernelBackend::available_backends() {
                let got = euclidean_early_abandon_with(backend, &a, &b, threshold);
                assert_eq!(
                    got.map(f64::to_bits),
                    reference.map(f64::to_bits),
                    "threshold {threshold} backend {backend}"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_is_available_on_x86_64() {
        assert!(KernelBackend::Sse2.available());
    }
}
