//! Core series record types.

/// Identifier of a data series within a dataset.
///
/// Ids are dense: the `i`-th series appended to a [`crate::Dataset`] gets id
/// `i`.  Non-materialized indexes store only this id (plus the summarization)
/// and use it to seek back into the raw data file when the full series is
/// needed.
pub type SeriesId = u64;

/// Logical timestamp of a streaming arrival (monotonically non-decreasing).
pub type Timestamp = u64;

/// A single data series: an ordered, fixed-length sequence of `f32` values.
///
/// The values are stored as `f32` to match the storage format used by the
/// original Coconut / ADS+ implementations (and most public data series
/// benchmarks), halving the footprint compared to `f64` without affecting
/// pruning behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Dense identifier of this series within its dataset.
    pub id: SeriesId,
    /// The raw values.
    pub values: Vec<f32>,
}

impl Series {
    /// Creates a new series from an id and its values.
    pub fn new(id: SeriesId, values: Vec<f32>) -> Self {
        Series { id, values }
    }

    /// Length (number of points) of the series.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns a z-normalized copy of this series.
    pub fn znormalized(&self) -> Series {
        Series {
            id: self.id,
            values: crate::znorm::znormalize(&self.values),
        }
    }

    /// Squared Euclidean distance to another series of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn squared_distance(&self, other: &Series) -> f64 {
        crate::distance::squared_euclidean(&self.values, &other.values)
    }
}

/// Metadata describing a collection of series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesMeta {
    /// Number of points in every series of the collection.
    pub series_len: usize,
    /// Number of series in the collection.
    pub count: u64,
}

/// A series together with the logical time at which it arrived.
///
/// Streaming scenarios (Section 3 of the paper) attach a timestamp to every
/// arriving series; windowed queries then constrain the search to series
/// whose timestamp falls inside `[window_start, window_end]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimestampedSeries {
    /// The underlying series.
    pub series: Series,
    /// Arrival timestamp (logical, monotonically non-decreasing).
    pub timestamp: Timestamp,
}

impl TimestampedSeries {
    /// Creates a new timestamped series.
    pub fn new(series: Series, timestamp: Timestamp) -> Self {
        TimestampedSeries { series, timestamp }
    }

    /// Returns `true` if this arrival falls within the inclusive window.
    pub fn in_window(&self, start: Timestamp, end: Timestamp) -> bool {
        self.timestamp >= start && self.timestamp <= end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basic_accessors() {
        let s = Series::new(7, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.id, 7);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_series_is_empty() {
        let s = Series::new(0, vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn squared_distance_matches_manual_computation() {
        let a = Series::new(0, vec![0.0, 0.0]);
        let b = Series::new(1, vec![3.0, 4.0]);
        assert!((a.squared_distance(&b) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn znormalized_copy_has_zero_mean() {
        let s = Series::new(0, vec![1.0, 2.0, 3.0, 4.0]);
        let z = s.znormalized();
        let mean: f32 = z.values.iter().sum::<f32>() / z.values.len() as f32;
        assert!(mean.abs() < 1e-6);
        assert_eq!(z.id, s.id);
    }

    #[test]
    fn timestamped_window_membership() {
        let ts = TimestampedSeries::new(Series::new(0, vec![1.0]), 50);
        assert!(ts.in_window(50, 50));
        assert!(ts.in_window(0, 100));
        assert!(!ts.in_window(51, 100));
        assert!(!ts.in_window(0, 49));
    }
}
