//! Small statistical helpers shared by experiments and tests.

/// Summary statistics over a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes summary statistics for `values`.  Returns `None` when empty.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let min = sorted[0];
        let max = sorted[count - 1];
        Some(Summary {
            count,
            mean,
            min,
            max,
            std_dev: var.sqrt(),
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
        })
    }
}

/// Computes the `p`-th percentile (0..=100) of an already-sorted slice using
/// linear interpolation between closest ranks.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Computes mean of an iterator of f64; returns 0.0 for an empty iterator.
pub fn mean<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    let (sum, n) = iter
        .into_iter()
        .fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 3.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 50.0) - 5.0).abs() < 1e-9);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(std::iter::empty()), 0.0);
        assert!((mean([2.0, 4.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn percentile_out_of_range_panics() {
        percentile_sorted(&[1.0], 101.0);
    }
}
