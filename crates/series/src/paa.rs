//! Piecewise Aggregate Approximation (PAA).
//!
//! PAA splits a series of length `n` into `w` equal-width segments and
//! represents each segment by its mean value.  It is the dimensionality
//! reduction underlying SAX / iSAX: the per-segment means are subsequently
//! quantized into symbols by the summarization layer (`coconut-sax`).
//!
//! The implementation supports lengths that are not a multiple of the number
//! of segments by letting a boundary point contribute fractionally to the two
//! segments it straddles, which is the standard generalized-PAA definition.

/// Computes the PAA representation of `values` with `segments` segments.
///
/// Returns a vector of length `segments` holding the mean of each segment.
///
/// # Panics
/// Panics if `segments` is zero or larger than `values.len()`.
pub fn paa(values: &[f32], segments: usize) -> Vec<f64> {
    assert!(segments > 0, "PAA requires at least one segment");
    assert!(
        segments <= values.len(),
        "PAA requires segments ({segments}) <= series length ({})",
        values.len()
    );
    let n = values.len();
    if n.is_multiple_of(segments) {
        // Fast path: equal-width integer segments.  Each segment sum
        // accumulates in the shared 8-lane kernel shape (sub-8 segments are
        // pure sequential tail, exactly the historical order) and dispatches
        // to the process-wide SIMD backend; results are bit-identical at
        // every backend.
        let backend = crate::kernels::active_backend();
        let width = n / segments;
        return values
            .chunks_exact(width)
            .map(|chunk| crate::kernels::sum_with(backend, chunk) / width as f64)
            .collect();
    }
    // General path: fractional segment boundaries.  Each point i covers the
    // interval [i, i+1) on a length-n axis that is rescaled to `segments`
    // equal intervals of width n/segments.
    let mut out = vec![0.0f64; segments];
    let seg_width = n as f64 / segments as f64;
    for (i, &v) in values.iter().enumerate() {
        let start = i as f64;
        let end = (i + 1) as f64;
        let first_seg = (start / seg_width).floor() as usize;
        let last_seg = (((end) / seg_width).ceil() as usize).min(segments);
        #[allow(clippy::needless_range_loop)] // index math beats iterator gymnastics here
        for seg in first_seg..last_seg {
            let seg_start = seg as f64 * seg_width;
            let seg_end = seg_start + seg_width;
            let overlap = (end.min(seg_end) - start.max(seg_start)).max(0.0);
            out[seg] += v as f64 * overlap;
        }
    }
    for o in out.iter_mut() {
        *o /= seg_width;
    }
    out
}

/// Lower-bounding distance between two PAA representations.
///
/// For series of original length `n` reduced to `w` segments, the distance
/// `sqrt(n/w) * ||paa_a - paa_b||` lower-bounds the true Euclidean distance
/// between the original series (Keogh et al.).  This function returns the
/// *squared* lower bound to match the squared distances used elsewhere.
pub fn paa_lower_bound_sq(paa_a: &[f64], paa_b: &[f64], series_len: usize) -> f64 {
    assert_eq!(paa_a.len(), paa_b.len(), "PAA words must have equal length");
    let w = paa_a.len();
    let scale = series_len as f64 / w as f64;
    let mut acc = 0.0;
    for (a, b) in paa_a.iter().zip(paa_b.iter()) {
        let d = a - b;
        acc += d * d;
    }
    scale * acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::squared_euclidean;

    #[test]
    fn paa_of_exact_multiple() {
        let vals = vec![1.0f32, 1.0, 3.0, 3.0, 5.0, 5.0, 7.0, 7.0];
        let p = paa(&vals, 4);
        assert_eq!(p, vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn paa_single_segment_is_mean() {
        let vals = vec![2.0f32, 4.0, 6.0, 8.0];
        let p = paa(&vals, 1);
        assert!((p[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn paa_full_resolution_is_identity() {
        let vals = vec![1.0f32, -2.0, 3.5, 0.25];
        let p = paa(&vals, 4);
        for (a, b) in vals.iter().zip(p.iter()) {
            assert!((*a as f64 - b).abs() < 1e-9);
        }
    }

    #[test]
    fn paa_fractional_segments_preserves_mean() {
        // 10 points into 3 segments: total weighted mass must be preserved.
        let vals: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let p = paa(&vals, 3);
        let series_mean: f64 = vals.iter().map(|&v| v as f64).sum::<f64>() / 10.0;
        let paa_mean: f64 = p.iter().sum::<f64>() / 3.0;
        assert!((series_mean - paa_mean).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_panics() {
        paa(&[1.0, 2.0], 0);
    }

    #[test]
    fn paa_lower_bound_is_a_lower_bound() {
        let a: Vec<f32> = (0..64).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..64).map(|i| ((i * 29) % 11) as f32 - 5.0).collect();
        let pa = paa(&a, 8);
        let pb = paa(&b, 8);
        let lb = paa_lower_bound_sq(&pa, &pb, 64);
        let true_d = squared_euclidean(&a, &b);
        assert!(lb <= true_d + 1e-6, "lb {lb} > true {true_d}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::distance::squared_euclidean;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn paa_lower_bound_property(
            a in proptest::collection::vec(-50.0f32..50.0, 96),
            b in proptest::collection::vec(-50.0f32..50.0, 96),
            segs in 1usize..32,
        ) {
            let pa = paa(&a, segs);
            let pb = paa(&b, segs);
            let lb = paa_lower_bound_sq(&pa, &pb, 96);
            let d = squared_euclidean(&a, &b);
            prop_assert!(lb <= d + 1e-3, "lb {} > dist {}", lb, d);
        }

        #[test]
        fn paa_output_length(
            vals in proptest::collection::vec(-10.0f32..10.0, 8..200),
            segs in 1usize..8,
        ) {
            prop_assert_eq!(paa(&vals, segs).len(), segs);
        }

        #[test]
        fn paa_values_within_range(
            vals in proptest::collection::vec(-10.0f32..10.0, 16..64),
        ) {
            let p = paa(&vals, 4);
            let min = vals.iter().cloned().fold(f32::INFINITY, f32::min) as f64;
            let max = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
            for v in p {
                prop_assert!(v >= min - 1e-6 && v <= max + 1e-6);
            }
        }
    }
}
