//! Distance functions over data series.
//!
//! Exact nearest-neighbour search in the Coconut infrastructure is defined
//! under the Euclidean distance over z-normalized series.  All distances are
//! accumulated in `f64` even though the raw values are `f32`, to keep the
//! pruning bounds (computed in `f64` by the summarization layer) comparable
//! without precision surprises.

use crate::kernels;

/// Squared Euclidean distance between two equal-length slices.
///
/// Accumulates in eight independent `f64` lanes over 8-wide chunks and
/// reduces the lanes pairwise at the end; the scalar remainder is added
/// last.  Dispatches to the process-wide [`kernels`] backend (explicit
/// SSE2/AVX2 where available); every backend is bit-identical to the scalar
/// reference.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
    kernels::squared_euclidean_with(kernels::active_backend(), a, b)
}

/// Euclidean distance between two equal-length slices.
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Early-abandoning squared Euclidean distance.
///
/// Accumulates the squared distance and returns `None` as soon as the partial
/// sum exceeds `threshold` (a squared distance).  This is the standard
/// optimization used when scanning candidates during exact search: the
/// threshold is the squared distance of the best-so-far answer, and most
/// candidates are abandoned after a few terms.
/// The abandon check runs **per 8-wide chunk** rather than per element: the
/// partial sum is monotone, so checking it at chunk boundaries abandons at
/// most seven elements later than a per-element check would, while keeping
/// the chunk body vectorizable.  The returned distance (when the candidate
/// survives) is bit-identical to [`squared_euclidean`], and the abandon
/// decision itself is bit-identical across every [`kernels`] backend (all
/// backends check the identical partial sum at the identical chunk
/// boundaries).
pub fn euclidean_early_abandon(a: &[f32], b: &[f32], threshold: f64) -> Option<f64> {
    kernels::euclidean_early_abandon_with(kernels::active_backend(), a, b, threshold)
}

/// Result of a nearest-neighbour computation: the series id, the arrival
/// timestamp of the matched entry (zero for static data) and its distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Identifier of the neighbouring series.
    pub id: u64,
    /// Arrival timestamp of the matched index entry (zero for static data
    /// and for brute-force candidates without temporal information).
    pub timestamp: u64,
    /// Squared Euclidean distance from the query to this neighbour.
    pub squared_distance: f64,
}

impl Neighbor {
    /// Creates a new neighbour record with timestamp zero (static data).
    pub fn new(id: u64, squared_distance: f64) -> Self {
        Neighbor {
            id,
            timestamp: 0,
            squared_distance,
        }
    }

    /// Creates a new neighbour record carrying an arrival timestamp.
    pub fn new_at(id: u64, timestamp: u64, squared_distance: f64) -> Self {
        Neighbor {
            id,
            timestamp,
            squared_distance,
        }
    }

    /// Euclidean (non-squared) distance.
    pub fn distance(&self) -> f64 {
        self.squared_distance.sqrt()
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Order by (distance, id, timestamp): the ordering is total and
        // deterministic, so every index variant — brute force, CTree, CLSM,
        // the streaming schemes — resolves equal-distance ties identically,
        // and parallel and sequential query results are comparable
        // byte-for-byte.
        self.squared_distance
            .partial_cmp(&other.squared_distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
            .then_with(|| self.timestamp.cmp(&other.timestamp))
    }
}

/// Brute-force exact k-nearest-neighbour search over an in-memory collection.
///
/// Used by tests and benchmarks as the ground truth against which every index
/// variant is validated.
pub fn brute_force_knn<'a, I>(query: &[f32], candidates: I, k: usize) -> Vec<Neighbor>
where
    I: IntoIterator<Item = (u64, &'a [f32])>,
{
    if k == 0 {
        return Vec::new();
    }
    let mut heap: std::collections::BinaryHeap<Neighbor> = std::collections::BinaryHeap::new();
    for (id, values) in candidates {
        if heap.len() < k {
            let d = squared_euclidean(query, values);
            heap.push(Neighbor::new(id, d));
            continue;
        }
        // Once the heap is full, the current worst distance bounds every
        // remaining candidate: abandon scans chunk-wise past it.  Candidates
        // tying the worst distance are kept only for a smaller id, matching
        // the pre-abandon behaviour exactly (the abandon threshold is
        // strict, so equal distances still reach the tie-break below).
        let worst = *heap.peek().expect("heap is non-empty");
        if let Some(d) = euclidean_early_abandon(query, values, worst.squared_distance) {
            let n = Neighbor::new(id, d);
            if n < worst {
                heap.pop();
                heap.push(n);
            }
        }
    }
    let mut out: Vec<Neighbor> = heap.into_vec();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_simple() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let v = vec![1.5f32, -2.25, 0.0, 7.0];
        assert_eq!(squared_euclidean(&v, &v), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        squared_euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn early_abandon_abandons() {
        let a = vec![0.0f32; 10];
        let b = vec![10.0f32; 10];
        assert_eq!(euclidean_early_abandon(&a, &b, 50.0), None);
        assert_eq!(euclidean_early_abandon(&a, &a, 50.0), Some(0.0));
    }

    #[test]
    fn early_abandon_matches_full_distance_when_under_threshold() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![2.0f32, 2.0, 1.0];
        let full = squared_euclidean(&a, &b);
        assert_eq!(euclidean_early_abandon(&a, &b, full + 1.0), Some(full));
    }

    #[test]
    fn brute_force_knn_finds_closest() {
        let data: Vec<(u64, Vec<f32>)> =
            (0..100u64).map(|i| (i, vec![i as f32, i as f32])).collect();
        let query = vec![40.2f32, 40.2];
        let nn = brute_force_knn(&query, data.iter().map(|(i, v)| (*i, v.as_slice())), 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].id, 40);
        assert_eq!(nn[1].id, 41);
        assert_eq!(nn[2].id, 39);
        assert!(nn[0].squared_distance <= nn[1].squared_distance);
    }

    #[test]
    fn brute_force_knn_with_k_larger_than_data() {
        let data = [(0u64, vec![0.0f32]), (1u64, vec![1.0f32])];
        let nn = brute_force_knn(&[0.4], data.iter().map(|(i, v)| (*i, v.as_slice())), 10);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].id, 0);
    }

    #[test]
    fn neighbor_ordering_is_total() {
        let a = Neighbor::new(1, 2.0);
        let b = Neighbor::new(2, 2.0);
        let c = Neighbor::new(3, 1.0);
        let mut v = [a, b, c];
        v.sort();
        assert_eq!(v[0].id, 3);
        assert_eq!(v[1].id, 1);
        assert_eq!(v[2].id, 2);
    }

    #[test]
    fn neighbor_ties_resolve_by_id_then_timestamp() {
        let mut v = [
            Neighbor::new_at(5, 9, 1.0),
            Neighbor::new_at(5, 2, 1.0),
            Neighbor::new_at(4, 100, 1.0),
            Neighbor::new_at(4, 100, 0.5),
        ];
        v.sort();
        let order: Vec<(u64, u64)> = v.iter().map(|n| (n.id, n.timestamp)).collect();
        assert_eq!(order, vec![(4, 100), (4, 100), (5, 2), (5, 9)]);
        assert_eq!(v[0].squared_distance, 0.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn triangle_inequality(
            a in proptest::collection::vec(-100.0f32..100.0, 16),
            b in proptest::collection::vec(-100.0f32..100.0, 16),
            c in proptest::collection::vec(-100.0f32..100.0, 16),
        ) {
            let ab = euclidean(&a, &b);
            let bc = euclidean(&b, &c);
            let ac = euclidean(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-6);
        }

        #[test]
        fn symmetry(
            a in proptest::collection::vec(-100.0f32..100.0, 32),
            b in proptest::collection::vec(-100.0f32..100.0, 32),
        ) {
            prop_assert!((squared_euclidean(&a, &b) - squared_euclidean(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn early_abandon_never_overestimates(
            a in proptest::collection::vec(-10.0f32..10.0, 24),
            b in proptest::collection::vec(-10.0f32..10.0, 24),
        ) {
            let full = squared_euclidean(&a, &b);
            match euclidean_early_abandon(&a, &b, full) {
                Some(d) => prop_assert!((d - full).abs() < 1e-9),
                None => prop_assert!(full > 0.0),
            }
        }
    }
}
