//! Distance functions over data series.
//!
//! Exact nearest-neighbour search in the Coconut infrastructure is defined
//! under the Euclidean distance over z-normalized series.  All distances are
//! accumulated in `f64` even though the raw values are `f32`, to keep the
//! pruning bounds (computed in `f64` by the summarization layer) comparable
//! without precision surprises.

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "squared_euclidean requires equal-length series"
    );
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x as f64 - y as f64;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equal-length slices.
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Early-abandoning squared Euclidean distance.
///
/// Accumulates the squared distance and returns `None` as soon as the partial
/// sum exceeds `threshold` (a squared distance).  This is the standard
/// optimization used when scanning candidates during exact search: the
/// threshold is the squared distance of the best-so-far answer, and most
/// candidates are abandoned after a few terms.
pub fn euclidean_early_abandon(a: &[f32], b: &[f32], threshold: f64) -> Option<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "euclidean_early_abandon requires equal-length series"
    );
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x as f64 - y as f64;
        acc += d * d;
        if acc > threshold {
            return None;
        }
    }
    Some(acc)
}

/// Result of a nearest-neighbour computation: the series id and its distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Identifier of the neighbouring series.
    pub id: u64,
    /// Squared Euclidean distance from the query to this neighbour.
    pub squared_distance: f64,
}

impl Neighbor {
    /// Creates a new neighbour record.
    pub fn new(id: u64, squared_distance: f64) -> Self {
        Neighbor {
            id,
            squared_distance,
        }
    }

    /// Euclidean (non-squared) distance.
    pub fn distance(&self) -> f64 {
        self.squared_distance.sqrt()
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Order primarily by distance, break ties by id so that the ordering
        // is total and deterministic (required for use in BinaryHeap / sort).
        self.squared_distance
            .partial_cmp(&other.squared_distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Brute-force exact k-nearest-neighbour search over an in-memory collection.
///
/// Used by tests and benchmarks as the ground truth against which every index
/// variant is validated.
pub fn brute_force_knn<'a, I>(query: &[f32], candidates: I, k: usize) -> Vec<Neighbor>
where
    I: IntoIterator<Item = (u64, &'a [f32])>,
{
    let mut heap: std::collections::BinaryHeap<Neighbor> = std::collections::BinaryHeap::new();
    for (id, values) in candidates {
        let d = squared_euclidean(query, values);
        let n = Neighbor::new(id, d);
        if heap.len() < k {
            heap.push(n);
        } else if let Some(worst) = heap.peek() {
            if n < *worst {
                heap.pop();
                heap.push(n);
            }
        }
    }
    let mut out: Vec<Neighbor> = heap.into_vec();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_euclidean_simple() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let v = vec![1.5f32, -2.25, 0.0, 7.0];
        assert_eq!(squared_euclidean(&v, &v), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        squared_euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn early_abandon_abandons() {
        let a = vec![0.0f32; 10];
        let b = vec![10.0f32; 10];
        assert_eq!(euclidean_early_abandon(&a, &b, 50.0), None);
        assert_eq!(euclidean_early_abandon(&a, &a, 50.0), Some(0.0));
    }

    #[test]
    fn early_abandon_matches_full_distance_when_under_threshold() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![2.0f32, 2.0, 1.0];
        let full = squared_euclidean(&a, &b);
        assert_eq!(euclidean_early_abandon(&a, &b, full + 1.0), Some(full));
    }

    #[test]
    fn brute_force_knn_finds_closest() {
        let data: Vec<(u64, Vec<f32>)> = (0..100u64)
            .map(|i| (i, vec![i as f32, i as f32]))
            .collect();
        let query = vec![40.2f32, 40.2];
        let nn = brute_force_knn(&query, data.iter().map(|(i, v)| (*i, v.as_slice())), 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].id, 40);
        assert_eq!(nn[1].id, 41);
        assert_eq!(nn[2].id, 39);
        assert!(nn[0].squared_distance <= nn[1].squared_distance);
    }

    #[test]
    fn brute_force_knn_with_k_larger_than_data() {
        let data = vec![(0u64, vec![0.0f32]), (1u64, vec![1.0f32])];
        let nn = brute_force_knn(&[0.4], data.iter().map(|(i, v)| (*i, v.as_slice())), 10);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].id, 0);
    }

    #[test]
    fn neighbor_ordering_is_total() {
        let a = Neighbor::new(1, 2.0);
        let b = Neighbor::new(2, 2.0);
        let c = Neighbor::new(3, 1.0);
        let mut v = vec![a, b, c];
        v.sort();
        assert_eq!(v[0].id, 3);
        assert_eq!(v[1].id, 1);
        assert_eq!(v[2].id, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn triangle_inequality(
            a in proptest::collection::vec(-100.0f32..100.0, 16),
            b in proptest::collection::vec(-100.0f32..100.0, 16),
            c in proptest::collection::vec(-100.0f32..100.0, 16),
        ) {
            let ab = euclidean(&a, &b);
            let bc = euclidean(&b, &c);
            let ac = euclidean(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-6);
        }

        #[test]
        fn symmetry(
            a in proptest::collection::vec(-100.0f32..100.0, 32),
            b in proptest::collection::vec(-100.0f32..100.0, 32),
        ) {
            prop_assert!((squared_euclidean(&a, &b) - squared_euclidean(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn early_abandon_never_overestimates(
            a in proptest::collection::vec(-10.0f32..10.0, 24),
            b in proptest::collection::vec(-10.0f32..10.0, 24),
        ) {
            let full = squared_euclidean(&a, &b);
            match euclidean_early_abandon(&a, &b, full) {
                Some(d) => prop_assert!((d - full).abs() < 1e-9),
                None => prop_assert!(full > 0.0),
            }
        }
    }
}
