//! # coconut-series
//!
//! Data series substrate for the Coconut Palm reproduction.
//!
//! A *data series* (also called a time series when the ordering dimension is
//! time) is a fixed-length ordered sequence of real values.  Every index in
//! the Coconut infrastructure operates on collections of such series, so this
//! crate provides the shared building blocks:
//!
//! * [`Series`] — the owned series record (id + values), plus
//!   [`TimestampedSeries`] for streaming scenarios.
//! * [`znorm`] — z-normalization, the standard preprocessing step before
//!   similarity search.
//! * [`distance`] — Euclidean distance, squared distance and the
//!   early-abandoning variant used by exact search.
//! * [`kernels`] — the explicit SIMD backends (scalar / SSE2 / AVX2 with
//!   runtime detection) behind the distance, z-normalization and PAA hot
//!   loops, bit-identical to each other by construction and selectable via
//!   `COCONUT_KERNELS`.
//! * [`mod@paa`] — Piecewise Aggregate Approximation, the dimensionality
//!   reduction on top of which SAX/iSAX summarizations are defined.
//! * [`generator`] — synthetic dataset generators: pure random walks, an
//!   "astronomy-like" generator with planted patterns (Scenario 1 of the
//!   paper) and a "seismic-like" batch stream generator (Scenario 2).
//! * [`dataset`] — a simple binary on-disk dataset format (the "raw data
//!   file" that non-materialized indexes point into) with streaming readers
//!   and writers.
//! * [`workload`] — query workload construction (noisy copies of dataset
//!   members, planted patterns, pure noise).
//!
//! The crate is deliberately free of any indexing logic; it only knows about
//! series, their distances and how to produce them.

pub mod dataset;
pub mod distance;
pub mod generator;
pub mod kernels;
pub mod paa;
pub mod series;
pub mod stats;
pub mod workload;
pub mod znorm;

pub use dataset::{Dataset, DatasetReader, DatasetWriter};
pub use distance::{euclidean, euclidean_early_abandon, squared_euclidean};
pub use generator::{
    AstronomyGenerator, PatternKind, RandomWalkGenerator, SeismicStreamGenerator, SeriesGenerator,
};
pub use kernels::KernelBackend;
pub use paa::paa;
pub use series::{Series, SeriesId, SeriesMeta, Timestamp, TimestampedSeries};
pub use workload::{QueryWorkload, WorkloadKind};
pub use znorm::{znormalize, znormalize_in_place};

/// Errors produced by the series substrate.
#[derive(Debug)]
pub enum SeriesError {
    /// An I/O error occurred while reading or writing a dataset file.
    Io(std::io::Error),
    /// The dataset file header is malformed or does not match expectations.
    BadHeader(String),
    /// A series had a different length than the dataset declares.
    LengthMismatch { expected: usize, actual: usize },
    /// The requested series id does not exist in the dataset.
    UnknownSeries(u64),
}

impl std::fmt::Display for SeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesError::Io(e) => write!(f, "i/o error: {e}"),
            SeriesError::BadHeader(msg) => write!(f, "bad dataset header: {msg}"),
            SeriesError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "series length mismatch: expected {expected}, got {actual}"
                )
            }
            SeriesError::UnknownSeries(id) => write!(f, "unknown series id {id}"),
        }
    }
}

impl std::error::Error for SeriesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeriesError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SeriesError {
    fn from(e: std::io::Error) -> Self {
        SeriesError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SeriesError>;
