//! Integration tests for the TCP front-end: protocol identity with the
//! in-process path, fault injection at the raw socket, admission control,
//! deadlines, and graceful shutdown (including a SIGTERM subprocess run).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_core::palm::{
    PalmRequest, PalmServer, ERROR_KIND_DEADLINE, ERROR_KIND_MALFORMED, ERROR_KIND_OVERLOADED,
    ERROR_KIND_SHUTTING_DOWN,
};
use coconut_core::{Dataset, IoBackend, PlannerMode, VariantKind};
use coconut_json::{Json, ToJson};
use coconut_net::{NetServer, PalmClient, ServerConfig};
use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
use coconut_storage::ScratchDir;

fn make_dataset(dir: &ScratchDir, count: usize) -> (String, Vec<coconut_series::Series>) {
    let mut gen = RandomWalkGenerator::new(64, 12);
    let series = gen.generate(count);
    let path = dir.file("raw.bin");
    Dataset::create_from_series(&path, &series).unwrap();
    (path.to_string_lossy().into_owned(), series)
}

fn build_request(name: &str, dataset_path: &str) -> PalmRequest {
    PalmRequest::BuildIndex {
        name: name.into(),
        dataset_path: dataset_path.into(),
        variant: VariantKind::Clsm,
        materialized: true,
        memory_budget_bytes: 8 << 20,
        parallelism: 1,
        query_parallelism: 1,
        shard_count: 1,
        range: None,
        io_overlap: true,
        io_backend: IoBackend::Pread,
        planner: PlannerMode::Fixed,
        compression: coconut_storage::Compression::Off,
    }
}

fn query_request(name: &str, query: &[f32], k: usize) -> String {
    PalmRequest::Query {
        name: name.into(),
        query: query.to_vec(),
        k,
        exact: true,
    }
    .to_json()
    .to_string()
}

fn spawn_server(palm: Arc<PalmServer>, config: ServerConfig) -> NetServer {
    NetServer::spawn(palm, config).expect("bind")
}

fn kind_of(json: &Json) -> Option<&str> {
    json.get("kind").and_then(|j| j.as_str())
}

fn type_of(json: &Json) -> Option<&str> {
    json.get("type").and_then(|j| j.as_str())
}

/// Strips the timing member so responses can be compared for identity.
fn identity_view(json: &Json) -> Json {
    let Json::Obj(members) = json else {
        return json.clone();
    };
    Json::Obj(
        members
            .iter()
            .filter(|(k, _)| k != "elapsed_ms")
            .cloned()
            .collect(),
    )
}

/// Tentpole acceptance: answers over the wire are bit-identical to the
/// in-process `handle` path — with the result cache on *and* off, and on
/// repeat queries (cache hits).
#[test]
fn wire_answers_are_bit_identical_to_in_process_with_and_without_cache() {
    let dir = ScratchDir::new("net-identity").unwrap();
    let (dataset_path, _series) = make_dataset(&dir, 200);
    let cached = Arc::new(PalmServer::new(dir.file("work-cached")).with_result_cache(256));
    let uncached = Arc::new(PalmServer::new(dir.file("work-uncached")));
    cached.handle(build_request("idx", &dataset_path));
    uncached.handle(build_request("idx", &dataset_path));
    let server = spawn_server(Arc::clone(&cached), ServerConfig::default());
    let mut client = PalmClient::connect(&server.local_addr().to_string()).unwrap();

    let mut gen = RandomWalkGenerator::new(64, 31);
    for _ in 0..8 {
        let q = gen.next_series();
        let request = query_request("idx", &q.values, 3);
        // Ask twice so the second wire answer is served from the cache.
        for _ in 0..2 {
            let wire = Json::parse(&client.call(&request).unwrap()).unwrap();
            let in_process = Json::parse(&uncached.handle_json(&request)).unwrap();
            assert_eq!(type_of(&wire), Some("query_result"));
            assert_eq!(
                identity_view(&wire).to_string(),
                identity_view(&in_process).to_string(),
                "wire answer must equal the computed in-process answer"
            );
        }
    }
    let stats = cached.stats();
    assert!(stats.cache_hits >= 8, "repeats must hit: {stats:?}");
    let report = server.shutdown();
    assert!(report.is_clean(), "unclean shutdown: {report:?}");
}

/// Satellite: an oversized frame gets a structured error, then the
/// connection closes (the stream cannot be resynchronized).
#[test]
fn oversized_frame_gets_structured_error_then_close() {
    let dir = ScratchDir::new("net-oversize").unwrap();
    let palm = Arc::new(PalmServer::new(dir.file("work")));
    let config = ServerConfig {
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    };
    let server = spawn_server(palm, config);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&vec![b'x'; 4096]).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (line, rest) = response.split_once('\n').expect("one reply line");
    let parsed = Json::parse(line).unwrap();
    assert_eq!(kind_of(&parsed), Some(ERROR_KIND_MALFORMED));
    assert!(rest.is_empty(), "connection must close after the reply");
    let report = server.shutdown();
    assert!(report.is_clean(), "unclean shutdown: {report:?}");
}

/// Satellite: invalid UTF-8 answers `malformed_request` and the
/// connection stays usable; a half-closed mid-frame connection is a
/// clean disconnect; plain garbage JSON is `malformed_request`.
#[test]
fn malformed_input_never_kills_the_server() {
    let dir = ScratchDir::new("net-malformed").unwrap();
    let palm = Arc::new(PalmServer::new(dir.file("work")));
    let server = spawn_server(palm, ServerConfig::default());
    let addr = server.local_addr().to_string();

    // Invalid UTF-8: structured error, connection survives.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"\xff\xfe\xfd\n").unwrap();
    let mut reader = coconut_net::FrameReader::new(stream.try_clone().unwrap(), 1 << 20);
    let coconut_net::FrameOutcome::Frame(frame) = reader.read_frame() else {
        panic!("expected an error frame");
    };
    let parsed = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(kind_of(&parsed), Some(ERROR_KIND_MALFORMED));
    stream.write_all(b"{\"type\":\"list_indexes\"}\n").unwrap();
    let coconut_net::FrameOutcome::Frame(frame) = reader.read_frame() else {
        panic!("connection must stay usable after invalid UTF-8");
    };
    let parsed = Json::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(type_of(&parsed), Some("indexes"));
    drop(reader);
    drop(stream);

    // Half-closed mid-frame: no reply, clean disconnect, server lives on.
    let stream = TcpStream::connect(&addr).unwrap();
    (&stream).write_all(b"{\"type\":\"li").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut remainder = Vec::new();
    let mut read_half = stream.try_clone().unwrap();
    read_half
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    read_half.read_to_end(&mut remainder).unwrap();
    assert!(
        remainder.is_empty(),
        "mid-frame EOF must not produce a reply"
    );

    // Garbage JSON via the client: structured error.
    let mut client = PalmClient::connect(&addr).unwrap();
    let parsed = Json::parse(&client.call("not json at all").unwrap()).unwrap();
    assert_eq!(kind_of(&parsed), Some(ERROR_KIND_MALFORMED));

    let report = server.shutdown();
    assert!(report.is_clean(), "unclean shutdown: {report:?}");
}

/// Admission control: with a tiny byte budget every request is shed with
/// a structured `overloaded` error and a `retry_after_ms` hint, and the
/// shed counter records it.
#[test]
fn overload_sheds_with_retry_hint() {
    let dir = ScratchDir::new("net-shed").unwrap();
    let palm = Arc::new(PalmServer::new(dir.file("work")));
    let config = ServerConfig {
        max_queued_bytes: 1,
        retry_after_ms: 40,
        ..ServerConfig::default()
    };
    let server = spawn_server(Arc::clone(&palm), config);
    let mut client = PalmClient::connect(&server.local_addr().to_string()).unwrap();
    for _ in 0..3 {
        let parsed = Json::parse(&client.call(r#"{"type":"list_indexes"}"#).unwrap()).unwrap();
        assert_eq!(kind_of(&parsed), Some(ERROR_KIND_OVERLOADED));
        assert_eq!(
            parsed.get("retry_after_ms").and_then(|j| j.as_f64()),
            Some(40.0)
        );
    }
    assert_eq!(palm.stats().shed, 3);
    let report = server.shutdown();
    assert!(report.is_clean(), "unclean shutdown: {report:?}");
}

/// Overload acceptance: with in-flight bound 1 and many hammering
/// connections, every single request gets either the correct answer or a
/// typed `overloaded`/`deadline_exceeded` error — no hangs, no
/// disconnect-without-reply.
#[test]
fn hammered_server_answers_or_sheds_every_request() {
    let dir = ScratchDir::new("net-hammer").unwrap();
    let (dataset_path, series) = make_dataset(&dir, 200);
    let palm = Arc::new(PalmServer::new(dir.file("work")).with_result_cache(64));
    palm.handle(build_request("idx", &dataset_path));
    let config = ServerConfig {
        max_in_flight: 1,
        ..ServerConfig::default()
    };
    let server = spawn_server(Arc::clone(&palm), config);
    let addr = server.local_addr().to_string();
    let query: Vec<f32> = series[7].values.iter().map(|v| v + 0.001).collect();
    let request = query_request("idx", &query, 1);

    let mut answered = 0usize;
    let mut shed = 0usize;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..8 {
            let addr = addr.clone();
            let request = request.clone();
            workers.push(scope.spawn(move || {
                let mut client = PalmClient::connect(&addr).unwrap();
                let mut counts = (0usize, 0usize);
                for _ in 0..20 {
                    let response = client.call(&request).expect("every request gets a reply");
                    let parsed = Json::parse(&response).unwrap();
                    match type_of(&parsed) {
                        Some("query_result") => {
                            let ids = parsed.get("ids").unwrap().as_arr().unwrap();
                            assert_eq!(ids[0].as_f64(), Some(7.0), "wrong answer under load");
                            counts.0 += 1;
                        }
                        Some("error") => {
                            let kind = kind_of(&parsed).unwrap();
                            assert!(
                                kind == ERROR_KIND_OVERLOADED || kind == ERROR_KIND_DEADLINE,
                                "untyped failure under load: {kind}"
                            );
                            counts.1 += 1;
                        }
                        other => panic!("unexpected response type {other:?}"),
                    }
                }
                counts
            }));
        }
        for worker in workers {
            let (a, s) = worker.join().unwrap();
            answered += a;
            shed += s;
        }
    });
    assert_eq!(answered + shed, 160, "every request must be accounted for");
    assert!(answered > 0, "some requests must get through");
    let report = server.shutdown();
    assert!(report.is_clean(), "unclean shutdown: {report:?}");
}

/// Deadlines over the wire: `deadline_ms: 0` answers a structured
/// `deadline_exceeded` with a partial cost, and the connection keeps
/// serving normal requests afterwards.
#[test]
fn expired_deadline_over_the_wire_reports_partial_cost() {
    let dir = ScratchDir::new("net-deadline").unwrap();
    let (dataset_path, series) = make_dataset(&dir, 200);
    let palm = Arc::new(PalmServer::new(dir.file("work")));
    palm.handle(build_request("idx", &dataset_path));
    let server = spawn_server(palm, ServerConfig::default());
    let mut client = PalmClient::connect(&server.local_addr().to_string()).unwrap();

    let query = query_request("idx", &series[3].values, 1);
    let expired = format!("{}{}", &query[..query.len() - 1], r#","deadline_ms":0}"#);
    let parsed = Json::parse(&client.call(&expired).unwrap()).unwrap();
    assert_eq!(kind_of(&parsed), Some(ERROR_KIND_DEADLINE));
    assert!(
        parsed.get("partial_cost").is_some(),
        "deadline errors must report partial cost"
    );
    let parsed = Json::parse(&client.call(&query).unwrap()).unwrap();
    assert_eq!(type_of(&parsed), Some("query_result"));
    let report = server.shutdown();
    assert!(report.is_clean(), "unclean shutdown: {report:?}");
}

/// Graceful shutdown under load: the in-flight build completes (drained),
/// connections attempted during the drain are refused with
/// `shutting_down` (or the socket is already gone), no thread leaks and
/// the indexes are synced.
#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let dir = ScratchDir::new("net-drain").unwrap();
    let (dataset_path, series) = make_dataset(&dir, 200);
    let (big_path, _) = {
        let mut gen = RandomWalkGenerator::new(64, 77);
        let series = gen.generate(30_000);
        let path = dir.file("big.bin");
        Dataset::create_from_series(&path, &series).unwrap();
        (path.to_string_lossy().into_owned(), series)
    };
    let palm = Arc::new(PalmServer::new(dir.file("work")));
    palm.handle(build_request("small", &dataset_path));
    // Leave pending deltas so the shutdown sync has real work.
    palm.handle(PalmRequest::Insert {
        name: "small".into(),
        series: vec![series[0].values.clone()],
        timestamp: 1,
        base_id: None,
    });
    let config = ServerConfig {
        drain_deadline: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let server = spawn_server(Arc::clone(&palm), config);
    let addr = server.local_addr().to_string();

    let builder = {
        let addr = addr.clone();
        let request = build_request("big", &big_path).to_json().to_string();
        std::thread::spawn(move || {
            let mut client = PalmClient::connect(&addr).unwrap();
            Json::parse(&client.call(&request).unwrap()).unwrap()
        })
    };
    // Let the build request get admitted before starting the drain.
    let admit_deadline = Instant::now() + Duration::from_secs(10);
    while server.in_flight() == 0 && Instant::now() < admit_deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(server.in_flight() > 0, "build request never got admitted");

    let prober = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            // Probe during the drain: each attempt must either be told
            // shutting_down or fail to connect — never hang, never get a
            // half answer.
            let mut saw_shutting_down = false;
            for _ in 0..50 {
                match PalmClient::connect(&addr) {
                    Err(_) => break,
                    Ok(mut client) => match client.call(r#"{"type":"list_indexes"}"#) {
                        Err(_) => {}
                        Ok(response) => {
                            let parsed = Json::parse(&response).unwrap();
                            if kind_of(&parsed) == Some(ERROR_KIND_SHUTTING_DOWN) {
                                saw_shutting_down = true;
                            } else {
                                // The probe raced ahead of the drain start.
                                assert_eq!(type_of(&parsed), Some("indexes"));
                            }
                        }
                    },
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            saw_shutting_down
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    let report = server.shutdown();
    assert!(report.drained, "the in-flight build must drain: {report:?}");
    assert_eq!(report.leaked_threads, 0, "no thread may leak");
    assert!(report.sync_error.is_none(), "sync failed: {report:?}");
    assert!(report.synced_indexes >= 1);
    let built = builder.join().unwrap();
    assert_eq!(
        type_of(&built),
        Some("built"),
        "the drained request must complete with its real answer"
    );
    let saw_shutting_down = prober.join().unwrap();
    assert!(
        saw_shutting_down,
        "a connection during the drain must be told shutting_down"
    );
}

/// Acceptance: SIGTERM against the real binary under load exits 0 after a
/// drained, synced shutdown.
#[cfg(unix)]
#[test]
fn sigterm_drains_and_exits_zero() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let dir = ScratchDir::new("net-sigterm").unwrap();
    let (dataset_path, series) = make_dataset(&dir, 200);
    let mut child = Command::new(env!("CARGO_BIN_EXE_palm-server"))
        .env("PALM_ADDR", "127.0.0.1:0")
        .env("PALM_WORK_DIR", dir.file("work"))
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn palm-server");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines.next().expect("banner line").unwrap();
    let addr = banner
        .strip_prefix("palm-server listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner}"))
        .to_string();

    let mut client = PalmClient::connect(&addr).unwrap();
    let built = Json::parse(
        &client
            .call(&build_request("idx", &dataset_path).to_json().to_string())
            .unwrap(),
    )
    .unwrap();
    assert_eq!(type_of(&built), Some("built"));
    client
        .call(
            &PalmRequest::Insert {
                name: "idx".into(),
                series: vec![series[1].values.clone()],
                timestamp: 2,
                base_id: None,
            }
            .to_json()
            .to_string(),
        )
        .unwrap();

    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill must succeed");

    let wait_deadline = Instant::now() + Duration::from_secs(30);
    let exit = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if Instant::now() < wait_deadline => std::thread::sleep(Duration::from_millis(20)),
            None => {
                let _ = child.kill();
                panic!("palm-server did not exit within 30s of SIGTERM");
            }
        }
    };
    assert!(exit.success(), "palm-server must exit 0, got {exit:?}");
    let shutdown_line: Vec<String> = lines.map_while(Result::ok).collect();
    assert!(
        shutdown_line
            .iter()
            .any(|l| l.contains("shutdown") && l.contains("leaked=0") && l.contains("synced=1")),
        "missing clean shutdown line in {shutdown_line:?}"
    );
}

/// Strips timing and the planner's `explain` member so adaptive and fixed
/// responses can be compared for answer identity.
fn answer_view(json: &Json) -> Json {
    let Json::Obj(members) = json else {
        return json.clone();
    };
    Json::Obj(
        members
            .iter()
            .filter(|(k, _)| k != "elapsed_ms" && k != "explain" && k != "name")
            .cloned()
            .collect(),
    )
}

/// Tentpole over the wire: a `planner: "adaptive"` build accepts queries
/// whose answers are bit-identical to the fixed-planner path, computed
/// responses carry a replayable `explain` report, cache hits do not, and
/// the `stats` verb exposes the planner counters.
#[test]
fn adaptive_planner_wire_path_explains_and_counts() {
    let dir = ScratchDir::new("net-planner").unwrap();
    let (dataset_path, _series) = make_dataset(&dir, 200);
    let palm = Arc::new(PalmServer::new(dir.file("work")).with_result_cache(64));
    let server = spawn_server(Arc::clone(&palm), ServerConfig::default());
    let mut client = PalmClient::connect(&server.local_addr().to_string()).unwrap();

    // Build one fixed and one adaptive index over the same dataset.  The
    // adaptive build goes through raw JSON to pin the wire spelling.
    let built = Json::parse(
        &client
            .call(&build_request("fixed", &dataset_path).to_json().to_string())
            .unwrap(),
    )
    .unwrap();
    assert_eq!(type_of(&built), Some("built"));
    let mut adaptive = build_request("adaptive", &dataset_path).to_json();
    if let Json::Obj(members) = &mut adaptive {
        for (key, value) in members.iter_mut() {
            if key == "planner" {
                *value = Json::Str("adaptive".into());
            }
        }
    }
    let built = Json::parse(&client.call(&adaptive.to_string()).unwrap()).unwrap();
    assert_eq!(type_of(&built), Some("built"));

    let mut gen = RandomWalkGenerator::new(64, 77);
    for _ in 0..4 {
        let q = gen.next_series();
        let on_fixed =
            Json::parse(&client.call(&query_request("fixed", &q.values, 3)).unwrap()).unwrap();
        let on_adaptive = Json::parse(
            &client
                .call(&query_request("adaptive", &q.values, 3))
                .unwrap(),
        )
        .unwrap();
        assert_eq!(type_of(&on_adaptive), Some("query_result"));
        assert_eq!(
            answer_view(&on_adaptive).to_string(),
            answer_view(&on_fixed).to_string(),
            "adaptive answers must be bit-identical to fixed answers"
        );
        assert!(
            on_fixed.get("explain").is_none(),
            "fixed-planner responses must not carry an explain report"
        );
        let explain = on_adaptive
            .get("explain")
            .expect("computed adaptive responses carry an explain report");
        let inputs = explain.get("inputs").expect("explain.inputs");
        let decision = explain.get("decision").expect("explain.decision");
        for field in ["footprint_bytes", "cache_budget_bytes", "cores", "k"] {
            assert!(inputs.get(field).is_some(), "missing inputs.{field}");
        }
        for field in ["query_parallelism", "read_ahead", "prefetch_min_bytes"] {
            assert!(decision.get(field).is_some(), "missing decision.{field}");
        }

        // The same query again is a cache hit: identical answer, no explain
        // (nothing was planned).
        let repeat = Json::parse(
            &client
                .call(&query_request("adaptive", &q.values, 3))
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            answer_view(&repeat).to_string(),
            answer_view(&on_adaptive).to_string()
        );
        assert!(
            repeat.get("explain").is_none(),
            "cache hits must not carry an explain report"
        );
    }

    let stats = Json::parse(
        &client
            .call(&PalmRequest::Stats.to_json().to_string())
            .unwrap(),
    )
    .unwrap();
    let counter = |name: &str| {
        stats
            .get(name)
            .and_then(|j| j.as_f64())
            .unwrap_or_else(|| panic!("stats missing {name}")) as u64
    };
    assert_eq!(
        counter("planner_adaptive"),
        4,
        "one plan per computed query"
    );
    assert_eq!(counter("planner_fixed"), 4);
    assert_eq!(
        counter("plans_parallel") + counter("plans_sequential"),
        counter("planner_adaptive"),
        "every adaptive plan is either parallel or sequential"
    );

    let report = server.shutdown();
    assert!(report.is_clean(), "unclean shutdown: {report:?}");
}
