//! Fault injection for the scatter-gather path: workers that die or
//! stall mid-query, and the client's admission-aware retry loop.
//!
//! Pins the coordinator's failure contract: a shard that cannot answer
//! yields the typed `shard_unavailable` error carrying per-shard
//! `QueryCost`s, within the request deadline (plus the transport grace)
//! — never a hang.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_core::backend::{ExecutionBackend, LocalBackend};
use coconut_core::palm::{
    PalmRequest, PalmResponse, PalmServer, ERROR_KIND_OVERLOADED, ERROR_KIND_SHARD_UNAVAILABLE,
};
use coconut_core::{Dataset, IoBackend, PlannerMode, VariantKind};
use coconut_json::{FromJson, Json, ToJson};
use coconut_net::{CallError, Coordinator, PalmClient, RemoteBackend, RetryPolicy};
use coconut_series::generator::{RandomWalkGenerator, SeriesGenerator};
use coconut_storage::ScratchDir;

fn make_dataset(dir: &ScratchDir, count: usize) -> (String, Vec<coconut_series::Series>) {
    let mut gen = RandomWalkGenerator::new(64, 77);
    let series = gen.generate(count);
    let path = dir.file("raw.bin");
    Dataset::create_from_series(&path, &series).unwrap();
    (path.to_string_lossy().into_owned(), series)
}

fn build_request(name: &str, dataset_path: &str) -> PalmRequest {
    PalmRequest::BuildIndex {
        name: name.into(),
        dataset_path: dataset_path.into(),
        variant: VariantKind::Clsm,
        materialized: true,
        memory_budget_bytes: 4 << 20,
        parallelism: 1,
        query_parallelism: 1,
        shard_count: 1,
        range: None,
        io_overlap: true,
        io_backend: IoBackend::Pread,
        planner: PlannerMode::Fixed,
        compression: coconut_storage::Compression::Off,
    }
}

fn query_request(name: &str, query: &[f32], k: usize) -> PalmRequest {
    PalmRequest::Query {
        name: name.into(),
        query: query.to_vec(),
        k,
        exact: true,
    }
}

/// A real `palm-server` child process; killed on drop so a failing test
/// cannot leak workers.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn(dir: &ScratchDir, tag: &str) -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_palm-server"))
            .env("PALM_ADDR", "127.0.0.1:0")
            .env("PALM_WORK_DIR", dir.file(&format!("worker-{tag}")))
            .env("PALM_CACHE_ENTRIES", "0")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn palm-server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the listening line");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("address in the listening line")
            .to_string();
        Worker { child, addr }
    }

    /// SIGSTOP: the worker freezes with whatever it is serving in flight.
    fn pause(&self) {
        let status = Command::new("kill")
            .args(["-STOP", &self.child.id().to_string()])
            .status()
            .expect("send SIGSTOP");
        assert!(status.success());
    }

    /// SIGKILL: the kernel reaps the process and resets its sockets.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// A worker killed while a query is in flight yields the typed
/// `shard_unavailable` error — carrying per-shard costs — within the
/// deadline plus transport grace, never a hang.
#[test]
fn killed_worker_mid_query_yields_typed_shard_unavailable() {
    let dir = ScratchDir::new("fault-kill").unwrap();
    let (dataset_path, series) = make_dataset(&dir, 160);
    let mut victim = Worker::spawn(&dir, "victim");
    let healthy = Worker::spawn(&dir, "healthy");
    let coordinator = Arc::new(Coordinator::new(vec![
        Arc::new(RemoteBackend::new(&victim.addr)) as Arc<dyn ExecutionBackend>,
        Arc::new(RemoteBackend::new(&healthy.addr)) as Arc<dyn ExecutionBackend>,
    ]));
    let built = coordinator.handle_with_deadline(build_request("idx", &dataset_path), None);
    assert!(matches!(built, PalmResponse::Built { .. }), "{built:?}");

    // Freeze the victim so the scattered query is genuinely in flight on
    // it, then kill it under the query.
    victim.pause();
    let query = query_request("idx", &series[3].values, 5);
    let deadline = Duration::from_millis(1500);
    let in_flight = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            let started = Instant::now();
            let response = coordinator.handle_with_deadline(query, Some(deadline));
            (response, started.elapsed())
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    victim.kill();
    let (response, elapsed) = in_flight.join().unwrap();
    match response {
        PalmResponse::Error {
            kind, shard_costs, ..
        } => {
            assert_eq!(kind, ERROR_KIND_SHARD_UNAVAILABLE);
            let costs = shard_costs.expect("per-shard costs must be attached");
            assert_eq!(costs.len(), 2, "one entry per shard, in shard order");
            assert_eq!(costs[0].shard, 0);
            assert!(costs[0].cost.is_none(), "the dead shard has no cost");
            assert!(
                costs[1].cost.is_some(),
                "the healthy shard's completed cost must be reported"
            );
        }
        other => panic!("unexpected response {other:?}"),
    }
    // SIGKILL resets the socket, so the failure surfaces well before the
    // deadline-plus-grace bound; assert the never-hang contract with
    // slack for CI scheduling noise.
    assert!(
        elapsed < deadline + Duration::from_secs(2),
        "coordinator hung for {elapsed:?}"
    );
}

/// A worker that accepts the connection and then never answers is bounded
/// by the per-shard deadline: the coordinator returns `shard_unavailable`
/// shortly after the deadline instead of hanging on the silent socket.
#[test]
fn stalled_worker_is_bounded_by_the_deadline() {
    let dir = ScratchDir::new("fault-stall").unwrap();
    let (dataset_path, series) = make_dataset(&dir, 120);
    // Shard 0 is healthy and in-process; shard 1 accepts and stalls.
    let palm = Arc::new(PalmServer::new(dir.file("healthy")));
    let built = palm.handle(build_request("idx", &dataset_path));
    assert!(matches!(built, PalmResponse::Built { .. }), "{built:?}");
    let stall = TcpListener::bind("127.0.0.1:0").unwrap();
    let stall_addr = stall.local_addr().unwrap().to_string();
    let stall_thread = std::thread::spawn(move || {
        // Hold every accepted connection open, reading nothing, answering
        // nothing, until the listener is dropped at test end.
        let mut held = Vec::new();
        while let Ok((socket, _)) = stall.accept() {
            held.push(socket);
        }
    });
    let coordinator = Coordinator::new(vec![
        Arc::new(LocalBackend::new(palm)) as Arc<dyn ExecutionBackend>,
        Arc::new(RemoteBackend::new(&stall_addr)) as Arc<dyn ExecutionBackend>,
    ]);
    let deadline = Duration::from_millis(400);
    let started = Instant::now();
    let response = coordinator
        .handle_with_deadline(query_request("idx", &series[9].values, 3), Some(deadline));
    let elapsed = started.elapsed();
    match response {
        PalmResponse::Error {
            kind, shard_costs, ..
        } => {
            assert_eq!(kind, ERROR_KIND_SHARD_UNAVAILABLE);
            let costs = shard_costs.expect("per-shard costs must be attached");
            assert!(costs[0].cost.is_some(), "the healthy shard answered");
            assert!(costs[1].cost.is_none(), "the stalled shard never did");
        }
        other => panic!("unexpected response {other:?}"),
    }
    // Deadline + the backend's 250 ms read grace + scheduling slack.
    assert!(
        elapsed < deadline + Duration::from_secs(2),
        "coordinator hung for {elapsed:?}"
    );
    drop(coordinator);
    drop(stall_thread);
}

/// A scripted server answering `overloaded` a fixed number of times
/// before succeeding, for pinning the retry loop.
fn scripted_overload_server(sheds_before_success: usize) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut served = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return;
            }
            let payload = if served < sheds_before_success {
                Json::obj(vec![
                    ("type", Json::Str("error".into())),
                    ("kind", Json::Str("overloaded".into())),
                    ("message", Json::Str("scripted shed".into())),
                    ("retry_after_ms", Json::Num(10.0)),
                ])
            } else {
                Json::obj(vec![
                    ("type", Json::Str("indexes".into())),
                    ("names", Json::Arr(vec![])),
                ])
            };
            served += 1;
            let mut bytes = payload.to_string().into_bytes();
            bytes.push(b'\n');
            if writer.write_all(&bytes).is_err() {
                return;
            }
        }
    });
    (addr, handle)
}

/// Satellite: the client honors `retry_after_ms` on overloaded sheds and
/// succeeds once the server recovers within the attempt budget.
#[test]
fn client_retries_overloaded_sheds_until_success() {
    let (addr, server) = scripted_overload_server(2);
    let mut client = PalmClient::connect(&addr).unwrap();
    let policy = RetryPolicy {
        max_attempts: 4,
        budget: Duration::from_secs(2),
        default_backoff: Duration::from_millis(5),
    };
    let started = Instant::now();
    let response = client
        .call_with_retry(&PalmRequest::ListIndexes.to_json().to_string(), &policy)
        .expect("two sheds then success must succeed");
    assert_eq!(response.get("type").and_then(Json::as_str), Some("indexes"));
    // Two jittered waits of a 10 ms hint: at least 10 ms total (jitter
    // halves at worst), comfortably under the budget.
    assert!(started.elapsed() >= Duration::from_millis(10));
    drop(client);
    let _ = server.join();
}

/// Satellite: a server that never recovers produces the typed give-up
/// error after exactly the policy's attempts, within the budget.
#[test]
fn client_gives_up_with_typed_error_when_always_overloaded() {
    let (addr, server) = scripted_overload_server(usize::MAX);
    let mut client = PalmClient::connect(&addr).unwrap();
    let policy = RetryPolicy {
        max_attempts: 3,
        budget: Duration::from_secs(2),
        default_backoff: Duration::from_millis(5),
    };
    match client.call_with_retry(&PalmRequest::ListIndexes.to_json().to_string(), &policy) {
        Err(CallError::RetriesExhausted {
            attempts,
            last_retry_after_ms,
            ..
        }) => {
            assert_eq!(attempts, 3);
            assert_eq!(last_retry_after_ms, Some(10));
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    drop(client);
    let _ = server.join();
}

/// The `RemoteBackend` surfaces an exhausted retry budget as the worker's
/// own structured `overloaded` response — a service condition, not a
/// transport failure — so the coordinator propagates it typed.
#[test]
fn remote_backend_reports_persistent_overload_as_service_error() {
    let (addr, server) = scripted_overload_server(usize::MAX);
    let backend = RemoteBackend::with_policy(
        &addr,
        RetryPolicy {
            max_attempts: 2,
            budget: Duration::from_secs(1),
            default_backoff: Duration::from_millis(5),
        },
    );
    let response = backend
        .execute(&PalmRequest::ListIndexes, Some(Duration::from_secs(1)))
        .expect("overload is a response, not a transport error");
    match response {
        PalmResponse::Error {
            kind,
            retry_after_ms,
            ..
        } => {
            assert_eq!(kind, ERROR_KIND_OVERLOADED);
            assert_eq!(retry_after_ms, Some(10), "the server's hint is preserved");
        }
        other => panic!("unexpected response {other:?}"),
    }
    drop(backend);
    let _ = server.join();
}

/// The full `PalmResponse` JSON round-trip used by the wire: an error
/// with shard costs survives serialize → parse exactly.
#[test]
fn shard_error_round_trips_through_json() {
    let response = PalmResponse::Error {
        kind: ERROR_KIND_SHARD_UNAVAILABLE.to_string(),
        message: "shard 1 (worker 127.0.0.1:1): gone".to_string(),
        partial_cost: None,
        retry_after_ms: Some(40),
        shard_costs: Some(vec![
            coconut_core::palm::ShardCostJson {
                shard: 0,
                cost: Some(coconut_core::palm::QueryCostJson {
                    entries_examined: 10,
                    entries_refined: 4,
                    raw_fetches: 2,
                    blocks_read: 3,
                    blocks_skipped: 5,
                }),
            },
            coconut_core::palm::ShardCostJson {
                shard: 1,
                cost: None,
            },
        ]),
    };
    let json = response.to_json().to_string();
    let parsed = PalmResponse::from_json(&Json::parse(&json).unwrap()).unwrap();
    assert_eq!(json, parsed.to_json().to_string());
}
