//! [`RemoteBackend`]: the wire-protocol implementation of
//! [`ExecutionBackend`] — a Palm worker behind a TCP socket.
//!
//! The backend speaks exactly the `palm-server` frame protocol: one
//! newline-delimited JSON request, one response.  A deadline is conveyed
//! twice, deliberately: as the protocol's `deadline_ms` member (so the
//! *worker* stops computing and answers `deadline_exceeded` with partial
//! cost) and as a socket read timeout with a small grace on top (so a
//! worker that died mid-request surfaces as
//! [`BackendError::Unavailable`] shortly after the deadline instead of
//! hanging the coordinator).
//!
//! Overload sheds are absorbed here through the client's
//! `retry_after_ms`-honoring retry loop; only when the retry budget is
//! exhausted does the shed propagate — as the worker's own structured
//! `overloaded` response, because a shed is a service condition, not a
//! transport failure.

use std::time::Duration;

use coconut_core::backend::{BackendError, ExecutionBackend};
use coconut_core::palm::{PalmRequest, PalmResponse, ERROR_KIND_OVERLOADED};
use coconut_json::{FromJson, Json, ToJson};
use parking_lot::Mutex;

use crate::client::{CallError, PalmClient, RetryPolicy};

/// Extra read-timeout slack past the protocol deadline: enough for the
/// worker's deadline reply to cross the wire, far less than a hang.
const DEADLINE_GRACE: Duration = Duration::from_millis(250);

/// Read timeout for calls without a deadline.
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A Palm worker reached over TCP.  Reconnects lazily: a transport
/// failure poisons the cached connection, and the next call dials anew —
/// so one crashed request does not permanently fail the shard.
pub struct RemoteBackend {
    addr: String,
    policy: RetryPolicy,
    connection: Mutex<Option<PalmClient>>,
}

impl RemoteBackend {
    /// A backend for the worker at `addr` with the default retry policy.
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_policy(addr, RetryPolicy::default())
    }

    /// A backend with an explicit overload retry policy.
    pub fn with_policy(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        RemoteBackend {
            addr: addr.into(),
            policy,
            connection: Mutex::new(None),
        }
    }

    /// The worker address this backend dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn read_timeout(deadline: Option<Duration>) -> Duration {
        match deadline {
            Some(limit) => limit + DEADLINE_GRACE,
            None => IDLE_READ_TIMEOUT,
        }
    }
}

impl ExecutionBackend for RemoteBackend {
    fn describe(&self) -> String {
        format!("worker {}", self.addr)
    }

    fn execute(
        &self,
        request: &PalmRequest,
        deadline: Option<Duration>,
    ) -> Result<PalmResponse, BackendError> {
        let mut slot = self.connection.lock();
        if slot.is_none() {
            let client = PalmClient::connect_with_timeout(&self.addr, Self::read_timeout(deadline))
                .map_err(|e| BackendError::Unavailable(format!("connect {}: {e}", self.addr)))?;
            *slot = Some(client);
        }
        let client = slot.as_mut().expect("connection was just ensured");
        if client
            .set_read_timeout(Self::read_timeout(deadline))
            .is_err()
        {
            // The socket is already dead; drop it and let the next call
            // redial rather than failing every future request.
            *slot = None;
            return Err(BackendError::Unavailable(format!(
                "worker {}: stale connection",
                self.addr
            )));
        }
        // Splice the protocol-level deadline into the request object so
        // the worker bounds its own execution.
        let mut json = request.to_json();
        if let (Some(limit), Json::Obj(members)) = (deadline, &mut json) {
            members.push((
                "deadline_ms".to_string(),
                Json::Num(limit.as_secs_f64() * 1000.0),
            ));
        }
        let outcome = client.call_with_retry(&json.to_string(), &self.policy);
        match outcome {
            Ok(response_json) => PalmResponse::from_json(&response_json).map_err(|e| {
                BackendError::Protocol(format!("worker {}: bad response: {e}", self.addr))
            }),
            Err(CallError::RetriesExhausted {
                last_retry_after_ms,
                attempts,
                ..
            }) => {
                // The worker is alive but shedding; report its overload as
                // the structured service answer the caller would have seen
                // without the retry layer.
                Ok(PalmResponse::Error {
                    kind: ERROR_KIND_OVERLOADED.to_string(),
                    message: format!(
                        "worker {} still overloaded after {attempts} attempts",
                        self.addr
                    ),
                    partial_cost: None,
                    retry_after_ms: last_retry_after_ms,
                    shard_costs: None,
                })
            }
            Err(CallError::Protocol(why)) => {
                *slot = None;
                Err(BackendError::Protocol(format!(
                    "worker {}: {why}",
                    self.addr
                )))
            }
            Err(CallError::Io(e)) => {
                *slot = None;
                Err(BackendError::Unavailable(format!(
                    "worker {}: {e}",
                    self.addr
                )))
            }
        }
    }
}
