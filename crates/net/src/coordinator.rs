//! Scatter-gather coordination over a fleet of Palm shards.
//!
//! The [`Coordinator`] owns an ordered list of [`ExecutionBackend`]s, one
//! per shard.  Each shard holds an index built over a contiguous id range
//! `[lo, hi)` of the *same* dataset file (ids are file positions, so no
//! translation layer exists anywhere).  The coordinator speaks the exact
//! `PalmServer` protocol — it implements
//! [`RequestHandler`], so the same TCP
//! front-end, admission control and shutdown machinery serve both a
//! single worker and a whole fleet.
//!
//! **Fragmenting rule.**  A kNN (or a batch of kNNs) is broadcast to
//! every shard unchanged: each shard answers its local top-k over its id
//! range, which by disjointness covers the whole collection.  `insert`
//! is *routed*, not broadcast — the coordinator owns the global id space
//! and sends each append to one shard (round-robin) with an explicit
//! `base_id`.  `build_index` is fragmented by [`chunk_bounds`] into one
//! ranged build per shard.
//!
//! **Merge identity.**  Shards return the full neighbour identity
//! `(squared_distance, id, timestamp)` on the wire, and the coordinator
//! merges with [`merge_topk`] — the *same* function the engine uses to
//! combine per-run candidates — so the distributed exact answer is
//! bit-identical to single-node execution over the same data, and the
//! merged `QueryCost` is the field-wise sum of per-shard costs, exactly
//! as single-node cost sums per-run work.  See DESIGN.md,
//! "Scatter-gather", for the full argument.
//!
//! **Failure semantics.**  A shard that cannot be reached (worker died,
//! connect refused, read past deadline+grace) fails the whole request
//! with the typed `shard_unavailable` error carrying `shard_costs`: the
//! per-shard costs the coordinator had gathered, in shard order, so a
//! caller can see how much work was lost and where.  Shards that answer
//! a *service* error (unknown index, deadline) propagate that error kind
//! instead — the fleet is reachable, the request itself failed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_core::backend::{BackendError, ExecutionBackend};
use coconut_core::palm::{
    PalmRequest, PalmResponse, QueryCostJson, ShardCostJson, ERROR_KIND_CONFIG,
    ERROR_KIND_MALFORMED, ERROR_KIND_SHARD_UNAVAILABLE,
};
use coconut_core::{merge_topk, BuildReport, Dataset, Neighbor, QueryCost};
use coconut_json::{FromJson, Json, ToJson};
use coconut_parallel::{chunk_bounds, parallel_map_tasks, CancelToken};

use crate::server::RequestHandler;

/// Routing state of one coordinated index: the coordinator owns the
/// global id space, so appended series get ids `total_entries,
/// total_entries + 1, ...` regardless of which shard stores them.
struct Route {
    /// Entries across every shard; the next insert's first id.
    total_entries: u64,
    /// Round-robin cursor for insert placement.
    next_shard: usize,
}

/// Scatter-gather front over an ordered shard fleet.
pub struct Coordinator {
    shards: Vec<Arc<dyn ExecutionBackend>>,
    /// Insert routing per index name, created by `build_index`.  Also the
    /// serialization point of the write path: id assignment and shard
    /// placement must be atomic per index.
    routes: parking_lot::Mutex<HashMap<String, Route>>,
    /// Requests shed by the coordinator's own admission control.
    shed: AtomicU64,
}

/// One shard's scatter outcome.
type ShardOutcome = Result<PalmResponse, BackendError>;

impl Coordinator {
    /// A coordinator over `shards`, in shard order.  At least one shard.
    pub fn new(shards: Vec<Arc<dyn ExecutionBackend>>) -> Self {
        assert!(!shards.is_empty(), "a coordinator needs at least one shard");
        Coordinator {
            shards,
            routes: parking_lot::Mutex::new(HashMap::new()),
            shed: AtomicU64::new(0),
        }
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sends `request` to every shard concurrently; one outcome per
    /// shard, in shard order.
    fn scatter(&self, request: &PalmRequest, deadline: Option<Duration>) -> Vec<ShardOutcome> {
        parallel_map_tasks(&self.shards, self.shards.len(), |_, shard| {
            shard.execute(request, deadline)
        })
    }

    /// Per-shard costs for error reporting: whatever each shard's outcome
    /// carried (a full cost, a partial cost, or nothing for a shard that
    /// never answered), in shard order.
    fn shard_costs(outcomes: &[ShardOutcome]) -> Vec<ShardCostJson> {
        outcomes
            .iter()
            .enumerate()
            .map(|(shard, outcome)| ShardCostJson {
                shard: shard as u64,
                cost: match outcome {
                    Ok(PalmResponse::QueryResult { cost, .. }) => Some(*cost),
                    Ok(PalmResponse::Error { partial_cost, .. }) => *partial_cost,
                    _ => None,
                },
            })
            .collect()
    }

    /// Separates successful shard responses from the fleet-level failure
    /// they imply.  `Err` carries the coordinator's response: a typed
    /// `shard_unavailable` when any shard was unreachable, else the first
    /// shard-reported service error — both with `shard_costs` attached.
    ///
    /// The `Err` variant *is* a full response by design (it goes straight
    /// onto the wire), so its size is the protocol's, not an accident.
    #[allow(clippy::result_large_err)]
    fn gather(&self, outcomes: Vec<ShardOutcome>) -> Result<Vec<PalmResponse>, PalmResponse> {
        if let Some((shard, failure)) = outcomes
            .iter()
            .enumerate()
            .find_map(|(i, o)| o.as_ref().err().map(|e| (i, e.clone())))
        {
            return Err(PalmResponse::Error {
                kind: ERROR_KIND_SHARD_UNAVAILABLE.to_string(),
                message: format!(
                    "shard {shard} ({}): {failure}",
                    self.shards[shard].describe()
                ),
                partial_cost: None,
                retry_after_ms: None,
                shard_costs: Some(Self::shard_costs(&outcomes)),
            });
        }
        if let Some((shard, kind, message, partial_cost)) =
            outcomes.iter().enumerate().find_map(|(i, o)| match o {
                Ok(PalmResponse::Error {
                    kind,
                    message,
                    partial_cost,
                    ..
                }) => Some((i, kind.clone(), message.clone(), *partial_cost)),
                _ => None,
            })
        {
            return Err(PalmResponse::Error {
                kind,
                message: format!("shard {shard}: {message}"),
                partial_cost,
                retry_after_ms: None,
                shard_costs: Some(Self::shard_costs(&outcomes)),
            });
        }
        Ok(outcomes
            .into_iter()
            .map(|o| o.expect("errors were filtered above"))
            .collect())
    }

    /// Merges per-shard kNN answers with the engine's own total order.
    ///
    /// Each shard ships the full neighbour identity, so this reconstructs
    /// the engine's `(Vec<Neighbor>, QueryCost)` pairs and defers to
    /// [`merge_topk`] — the single merge function both topologies share,
    /// which is the identity argument in one line.
    ///
    /// As in [`Coordinator::gather`], the `Err` variant is a wire response.
    #[allow(clippy::result_large_err)]
    fn merge_query_results(
        parts: Vec<PalmResponse>,
        k: usize,
    ) -> Result<PalmResponse, PalmResponse> {
        let mut merged: Vec<(Vec<Neighbor>, QueryCost)> = Vec::with_capacity(parts.len());
        let mut name = String::new();
        let mut elapsed_ms = 0f64;
        for part in parts {
            match part {
                PalmResponse::QueryResult {
                    name: part_name,
                    ids,
                    squared_distances,
                    timestamps,
                    elapsed_ms: part_elapsed,
                    cost,
                    ..
                } => {
                    let neighbors = ids
                        .iter()
                        .zip(timestamps.iter())
                        .zip(squared_distances.iter())
                        .map(|((&id, &timestamp), &squared)| {
                            Neighbor::new_at(id, timestamp, squared)
                        })
                        .collect();
                    merged.push((neighbors, cost_from_json(cost)));
                    name = part_name;
                    // The fleet answers when its slowest shard does.
                    elapsed_ms = elapsed_ms.max(part_elapsed);
                }
                other => {
                    return Err(PalmResponse::Error {
                        kind: ERROR_KIND_MALFORMED.to_string(),
                        message: format!("shard answered a non-query response {other:?}"),
                        partial_cost: None,
                        retry_after_ms: None,
                        shard_costs: None,
                    })
                }
            }
        }
        let (neighbors, cost) = merge_topk(merged, k);
        Ok(PalmResponse::QueryResult {
            name,
            ids: neighbors.iter().map(|n| n.id).collect(),
            distances: neighbors.iter().map(Neighbor::distance).collect(),
            squared_distances: neighbors.iter().map(|n| n.squared_distance).collect(),
            timestamps: neighbors.iter().map(|n| n.timestamp).collect(),
            elapsed_ms,
            cost: cost.into(),
            // Per-shard plans cannot be presented as one decision; the
            // coordinator's answers are explain-less by design.
            explain: None,
        })
    }

    /// Handles one request against the fleet.  `deadline` bounds the
    /// whole scatter (each shard gets the remaining time).
    pub fn handle_with_deadline(
        &self,
        request: PalmRequest,
        deadline: Option<Duration>,
    ) -> PalmResponse {
        match request {
            PalmRequest::Query { ref k, .. } => {
                let k = *k;
                match self.gather(self.scatter(&request, deadline)) {
                    Err(failure) => failure,
                    Ok(parts) => {
                        Self::merge_query_results(parts, k).unwrap_or_else(|failure| failure)
                    }
                }
            }
            PalmRequest::Batch { requests } => self.execute_batch(requests, deadline),
            PalmRequest::BuildIndex { .. } => self.build_index(request, deadline),
            PalmRequest::Insert {
                name,
                series,
                timestamp,
                base_id,
            } => self.insert(name, series, timestamp, base_id, deadline),
            PalmRequest::Metrics { .. } => match self.gather(self.scatter(&request, deadline)) {
                Err(failure) => failure,
                Ok(parts) => Self::merge_metrics(parts),
            },
            PalmRequest::ListIndexes => match self.gather(self.scatter(&request, deadline)) {
                Err(failure) => failure,
                Ok(parts) => {
                    let mut names: Vec<String> = parts
                        .into_iter()
                        .flat_map(|part| match part {
                            PalmResponse::Indexes { names } => names,
                            _ => Vec::new(),
                        })
                        .collect();
                    names.sort();
                    names.dedup();
                    PalmResponse::Indexes { names }
                }
            },
            PalmRequest::Recommend { .. } => {
                // Advice is data-independent of shard layout; one shard
                // answers for the fleet.
                match self.shards[0].execute(&request, deadline) {
                    Ok(response) => response,
                    Err(failure) => self.unavailable(0, &failure),
                }
            }
            PalmRequest::Stats => match self.gather(self.scatter(&request, deadline)) {
                Err(failure) => failure,
                Ok(parts) => self.merge_stats(parts),
            },
        }
    }

    /// The typed fleet-level failure for a single-shard call.
    fn unavailable(&self, shard: usize, failure: &BackendError) -> PalmResponse {
        PalmResponse::Error {
            kind: ERROR_KIND_SHARD_UNAVAILABLE.to_string(),
            message: format!(
                "shard {shard} ({}): {failure}",
                self.shards[shard].describe()
            ),
            partial_cost: None,
            retry_after_ms: None,
            shard_costs: Some(
                (0..self.shards.len())
                    .map(|shard| ShardCostJson {
                        shard: shard as u64,
                        cost: None,
                    })
                    .collect(),
            ),
        }
    }

    /// Batch execution: every kNN position scatters as *one* per-shard
    /// batch (each worker applies its own grouping machinery, so shared
    /// `(index, k, exact)` groups batch server-side exactly as they do
    /// single-node), then each position merges shard-wise.  Non-query
    /// sub-requests execute through the coordinator's own verbs.
    fn execute_batch(
        &self,
        requests: Vec<PalmRequest>,
        deadline: Option<Duration>,
    ) -> PalmResponse {
        let mut responses: Vec<Option<PalmResponse>> = (0..requests.len()).map(|_| None).collect();
        let mut query_positions: Vec<usize> = Vec::new();
        let mut queries: Vec<PalmRequest> = Vec::new();
        for (i, request) in requests.into_iter().enumerate() {
            match request {
                PalmRequest::Query { .. } => {
                    query_positions.push(i);
                    queries.push(request);
                }
                PalmRequest::Batch { .. } => {
                    responses[i] = Some(PalmResponse::Error {
                        kind: ERROR_KIND_MALFORMED.to_string(),
                        message: "batch requests cannot be nested".to_string(),
                        partial_cost: None,
                        retry_after_ms: None,
                        shard_costs: None,
                    });
                }
                other => {
                    responses[i] = Some(self.handle_with_deadline(other, deadline));
                }
            }
        }
        if !queries.is_empty() {
            let ks: Vec<usize> = queries
                .iter()
                .map(|q| match q {
                    PalmRequest::Query { k, .. } => *k,
                    _ => unreachable!("only queries are collected"),
                })
                .collect();
            let batch = PalmRequest::Batch { requests: queries };
            match self.gather(self.scatter(&batch, deadline)) {
                Err(failure) => {
                    // A fleet-level failure fails every query position the
                    // same way (the batch was one scatter).
                    for &position in &query_positions {
                        responses[position] = Some(failure.clone());
                    }
                }
                Ok(parts) => {
                    // parts[shard] is a Batch response aligned to `queries`;
                    // transpose it into one column per query position.
                    let mut per_shard: Vec<std::vec::IntoIter<PalmResponse>> = parts
                        .into_iter()
                        .map(|part| match part {
                            PalmResponse::Batch { responses } => responses.into_iter(),
                            other => vec![other].into_iter(),
                        })
                        .collect();
                    for (slot, &position) in query_positions.iter().enumerate() {
                        let column: Vec<PalmResponse> = per_shard
                            .iter_mut()
                            .map(|shard_responses| {
                                shard_responses
                                    .next()
                                    .unwrap_or_else(|| PalmResponse::Error {
                                        kind: ERROR_KIND_MALFORMED.to_string(),
                                        message: "shard batch response too short".to_string(),
                                        partial_cost: None,
                                        retry_after_ms: None,
                                        shard_costs: None,
                                    })
                            })
                            .collect();
                        let merged = if column
                            .iter()
                            .any(|r| matches!(r, PalmResponse::Error { .. }))
                        {
                            match self.gather(column.into_iter().map(Ok).collect()) {
                                Err(failure) => failure,
                                Ok(_) => unreachable!("an error column cannot gather clean"),
                            }
                        } else {
                            Self::merge_query_results(column, ks[slot])
                                .unwrap_or_else(|failure| failure)
                        };
                        responses[position] = Some(merged);
                    }
                }
            }
        }
        PalmResponse::Batch {
            responses: responses
                .into_iter()
                .map(|r| r.expect("every position was filled"))
                .collect(),
        }
    }

    /// Sharded build: fragments the dataset's id space with the same
    /// [`chunk_bounds`] rule the engine uses for intra-index sharding,
    /// builds one ranged index per worker, and registers the insert
    /// route.
    fn build_index(&self, request: PalmRequest, deadline: Option<Duration>) -> PalmResponse {
        let PalmRequest::BuildIndex {
            name,
            dataset_path,
            variant,
            materialized,
            memory_budget_bytes,
            parallelism,
            query_parallelism,
            shard_count,
            range,
            io_overlap,
            io_backend,
            planner,
            compression,
        } = request
        else {
            unreachable!("caller matched BuildIndex");
        };
        if range.is_some() {
            return config_error(
                "range_lo/range_hi are coordinator-internal; build through the coordinator without a range",
            );
        }
        // The dataset lives on storage every worker shares; open it here
        // only to learn its length for fragmenting.
        let count = match Dataset::open(&dataset_path) {
            Ok(dataset) => dataset.len(),
            Err(e) => return config_error(format!("cannot open dataset {dataset_path}: {e}")),
        };
        let bounds = chunk_bounds(count as usize, self.shards.len());
        if bounds.len() < self.shards.len() {
            return config_error(format!(
                "dataset has {count} series, fewer than {} shards",
                self.shards.len()
            ));
        }
        let outcomes = parallel_map_tasks(&self.shards, self.shards.len(), |shard, backend| {
            let (lo, hi) = bounds[shard];
            backend.execute(
                &PalmRequest::BuildIndex {
                    name: name.clone(),
                    dataset_path: dataset_path.clone(),
                    variant,
                    materialized,
                    memory_budget_bytes,
                    parallelism,
                    query_parallelism,
                    shard_count,
                    range: Some((lo as u64, hi as u64)),
                    io_overlap,
                    io_backend,
                    planner,
                    compression,
                },
                deadline,
            )
        });
        let parts = match self.gather(outcomes) {
            Err(failure) => return failure,
            Ok(parts) => parts,
        };
        let mut merged: Option<(String, BuildReport)> = None;
        for part in parts {
            match part {
                PalmResponse::Built {
                    variant, report, ..
                } => {
                    merged = Some(match merged {
                        None => (variant, report),
                        Some((variant, acc)) => (variant, merge_build_reports(acc, &report)),
                    });
                }
                other => {
                    return config_error(format!("shard answered a non-build response {other:?}"))
                }
            }
        }
        let (variant, report) = merged.expect("at least one shard");
        self.routes.lock().insert(
            name.clone(),
            Route {
                total_entries: count,
                next_shard: 0,
            },
        );
        PalmResponse::Built {
            name,
            variant,
            report,
        }
    }

    /// Routed insert: one shard receives the batch with an explicit
    /// `base_id` carved out of the coordinator's global id space.  The
    /// route lock serializes the write path (exactly like the slot write
    /// lock single-node); ids are burned even when the shard fails, which
    /// keeps already-assigned ids stable at the cost of gaps — the same
    /// trade every id-allocating coordinator makes.
    fn insert(
        &self,
        name: String,
        series: Vec<Vec<f32>>,
        timestamp: u64,
        base_id: Option<u64>,
        deadline: Option<Duration>,
    ) -> PalmResponse {
        if base_id.is_some() {
            return config_error("base_id is coordinator-internal; inserts are routed");
        }
        let mut routes = self.routes.lock();
        let Some(route) = routes.get_mut(&name) else {
            return config_error(format!(
                "index '{name}' has no insert route; build it through the coordinator first"
            ));
        };
        let base = route.total_entries;
        let shard = route.next_shard;
        route.total_entries += series.len() as u64;
        route.next_shard = (route.next_shard + 1) % self.shards.len();
        let total_after = route.total_entries;
        let outcome = self.shards[shard].execute(
            &PalmRequest::Insert {
                name: name.clone(),
                series,
                timestamp,
                base_id: Some(base),
            },
            deadline,
        );
        drop(routes);
        match outcome {
            Ok(PalmResponse::Inserted { inserted, .. }) => PalmResponse::Inserted {
                name,
                inserted,
                total: total_after,
            },
            Ok(other) => other,
            Err(failure) => self.unavailable(shard, &failure),
        }
    }

    /// Fleet metrics: entries and footprint sum, I/O sums field-wise,
    /// build time is the slowest shard's (they built concurrently).
    fn merge_metrics(parts: Vec<PalmResponse>) -> PalmResponse {
        let mut merged: Option<(String, BuildReport, u64)> = None;
        for part in parts {
            match part {
                PalmResponse::Metrics {
                    name,
                    report,
                    footprint_bytes,
                } => {
                    merged = Some(match merged {
                        None => (name, report, footprint_bytes),
                        Some((name, acc, footprint)) => (
                            name,
                            merge_build_reports(acc, &report),
                            footprint + footprint_bytes,
                        ),
                    });
                }
                other => return config_error(format!("shard answered non-metrics {other:?}")),
            }
        }
        let (name, report, footprint_bytes) = merged.expect("at least one shard");
        PalmResponse::Metrics {
            name,
            report,
            footprint_bytes,
        }
    }

    /// Fleet stats: counters sum field-wise; `indexes` is the max (every
    /// shard registers the same names); the coordinator's own shed count
    /// joins the fleet's.
    fn merge_stats(&self, parts: Vec<PalmResponse>) -> PalmResponse {
        let mut totals = [0u64; 13];
        let mut indexes = 0u64;
        for part in parts {
            match part {
                PalmResponse::Stats {
                    requests,
                    cache_hits,
                    cache_misses,
                    cache_entries,
                    shed,
                    deadline_exceeded,
                    indexes: shard_indexes,
                    planner_adaptive,
                    planner_fixed,
                    plans_parallel,
                    plans_sequential,
                    plans_read_ahead_off,
                    plans_chunked,
                } => {
                    for (slot, value) in totals.iter_mut().zip([
                        requests,
                        cache_hits,
                        cache_misses,
                        cache_entries,
                        shed,
                        deadline_exceeded,
                        0,
                        planner_adaptive,
                        planner_fixed,
                        plans_parallel,
                        plans_sequential,
                        plans_read_ahead_off,
                        plans_chunked,
                    ]) {
                        *slot += value;
                    }
                    indexes = indexes.max(shard_indexes);
                }
                other => return config_error(format!("shard answered non-stats {other:?}")),
            }
        }
        PalmResponse::Stats {
            requests: totals[0],
            cache_hits: totals[1],
            cache_misses: totals[2],
            cache_entries: totals[3],
            shed: totals[4] + self.shed.load(Ordering::Relaxed),
            deadline_exceeded: totals[5],
            indexes,
            planner_adaptive: totals[7],
            planner_fixed: totals[8],
            plans_parallel: totals[9],
            plans_sequential: totals[10],
            plans_read_ahead_off: totals[11],
            plans_chunked: totals[12],
        }
    }
}

/// `QueryCostJson` back to the engine's cost record (both are plain
/// field-for-field counters).
fn cost_from_json(cost: QueryCostJson) -> QueryCost {
    QueryCost {
        entries_examined: cost.entries_examined,
        entries_refined: cost.entries_refined,
        raw_fetches: cost.raw_fetches,
        blocks_skipped: cost.blocks_skipped,
        blocks_read: cost.blocks_read,
    }
}

fn config_error(message: impl Into<String>) -> PalmResponse {
    PalmResponse::Error {
        kind: ERROR_KIND_CONFIG.to_string(),
        message: message.into(),
        partial_cost: None,
        retry_after_ms: None,
        shard_costs: None,
    }
}

/// Field-wise aggregation of two shards' build metrics: entries,
/// footprint and I/O sum; wall-clock is the slower build (they ran
/// concurrently).
fn merge_build_reports(mut acc: BuildReport, other: &BuildReport) -> BuildReport {
    acc.elapsed_ms = acc.elapsed_ms.max(other.elapsed_ms);
    acc.entries += other.entries;
    acc.footprint_bytes += other.footprint_bytes;
    acc.io.sequential_reads += other.io.sequential_reads;
    acc.io.random_reads += other.io.random_reads;
    acc.io.sequential_writes += other.io.sequential_writes;
    acc.io.random_writes += other.io.random_writes;
    acc.io.bytes_read += other.io.bytes_read;
    acc.io.bytes_written += other.io.bytes_written;
    acc
}

impl RequestHandler for Coordinator {
    /// Mirrors `PalmServer::handle_json_bytes`: parse, fold the
    /// protocol-level `deadline_ms` with the front-end's token, dispatch.
    fn handle_json_bytes(&self, request: Vec<u8>, cancel: &CancelToken) -> String {
        let malformed = |message: String| {
            PalmResponse::Error {
                kind: ERROR_KIND_MALFORMED.to_string(),
                message,
                partial_cost: None,
                retry_after_ms: None,
                shard_costs: None,
            }
            .to_json()
            .to_string()
        };
        let Ok(text) = String::from_utf8(request) else {
            return malformed("request is not valid UTF-8".to_string());
        };
        let json = match Json::parse(&text) {
            Ok(json) => json,
            Err(e) => return malformed(format!("malformed request: {e}")),
        };
        let request_deadline = match json.get("deadline_ms") {
            None => None,
            Some(value) => match value.as_f64() {
                Some(ms) if ms >= 0.0 => Some(Duration::from_millis(ms as u64)),
                _ => return malformed("deadline_ms must be a non-negative number".to_string()),
            },
        };
        // The tighter of the request's deadline and the front-end token's.
        let token_deadline = cancel
            .deadline()
            .map(|at| at.saturating_duration_since(Instant::now()));
        let deadline = match (request_deadline, token_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let response = match PalmRequest::from_json(&json) {
            Ok(request) => self.handle_with_deadline(request, deadline),
            Err(e) => return malformed(format!("malformed request: {e}")),
        };
        response.to_json().to_string()
    }

    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// The shards own their indexes (and their own front-ends sync on
    /// shutdown); the coordinator itself has nothing durable.
    fn sync_all(&self) -> Result<usize, String> {
        Ok(0)
    }
}
