//! The `palm-coord` binary: a scatter-gather coordinator fronting a
//! fleet of `palm-server` workers.
//!
//! Configured through the shared `PALM_*` environment (see
//! `coconut_net::config`); `PALM_WORKERS` is required — a comma-separated
//! list of worker addresses, one shard each, in shard order.
//!
//! Prints `palm-coord listening on <addr>` once ready.  On SIGTERM or
//! SIGINT it drains gracefully and exits `0` iff no thread leaked (the
//! workers own their indexes and sync on their own shutdown).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use coconut_core::backend::ExecutionBackend;
use coconut_net::{coord_env, Coordinator, NetServer, RemoteBackend};

/// Set by the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // A store to a static atomic is async-signal-safe.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// Without unix signals the coordinator runs until killed externally.
    pub fn install() {}
}

fn main() -> ExitCode {
    sig::install();
    let env = match coord_env() {
        Ok(env) => env,
        Err(e) => {
            eprintln!("palm-coord: bad configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shards: Vec<Arc<dyn ExecutionBackend>> = env
        .workers
        .iter()
        .map(|addr| Arc::new(RemoteBackend::new(addr)) as Arc<dyn ExecutionBackend>)
        .collect();
    let coordinator = Arc::new(Coordinator::new(shards));
    let server = match NetServer::spawn(coordinator, env.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("palm-coord: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "palm-coord listening on {} ({} shards)",
        server.local_addr(),
        env.workers.len()
    );
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    let report = server.shutdown();
    println!(
        "palm-coord shutdown: drained={} cancelled={} leaked={}",
        report.drained, report.cancelled_in_flight, report.leaked_threads
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
