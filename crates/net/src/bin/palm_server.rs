//! The `palm-server` binary: a Palm algorithms server on a TCP port.
//!
//! Configured through the shared `PALM_*` environment — see
//! `coconut_net::config` for the variable table.  Unlike earlier
//! revisions, an unparseable value is *reported* and refuses startup
//! instead of silently running with the default.
//!
//! Prints `palm-server listening on <addr>` once ready.  On SIGTERM or
//! SIGINT it drains gracefully (see `NetServer::shutdown`) and exits `0`
//! iff no thread leaked and every index synced.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use coconut_core::palm::PalmServer;
use coconut_net::{server_env, NetServer};

/// Set by the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // A store to a static atomic is async-signal-safe.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// Without unix signals the server runs until killed externally.
    pub fn install() {}
}

fn main() -> ExitCode {
    sig::install();
    let env = match server_env() {
        Ok(env) => env,
        Err(e) => {
            eprintln!("palm-server: bad configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut palm = PalmServer::new(env.work_dir);
    if env.cache_entries > 0 {
        palm = palm.with_result_cache(env.cache_entries);
    }
    let server = match NetServer::spawn(Arc::new(palm), env.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("palm-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("palm-server listening on {}", server.local_addr());
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    let report = server.shutdown();
    println!(
        "palm-server shutdown: drained={} cancelled={} leaked={} synced={}",
        report.drained, report.cancelled_in_flight, report.leaked_threads, report.synced_indexes
    );
    if let Some(e) = &report.sync_error {
        eprintln!("palm-server: {e}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
