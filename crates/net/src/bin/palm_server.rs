//! The `palm-server` binary: a Palm algorithms server on a TCP port.
//!
//! Configured through environment variables (all optional):
//!
//! | variable                 | default       | meaning                         |
//! |--------------------------|---------------|---------------------------------|
//! | `PALM_ADDR`              | `127.0.0.1:0` | bind address (`:0` = free port) |
//! | `PALM_WORK_DIR`          | temp dir      | index file directory            |
//! | `PALM_MAX_IN_FLIGHT`     | `64`          | admission: concurrent requests  |
//! | `PALM_MAX_QUEUED_BYTES`  | `67108864`    | admission: queued payload bytes |
//! | `PALM_MAX_FRAME_BYTES`   | `16777216`    | per-frame size cap              |
//! | `PALM_DEFAULT_DEADLINE_MS` | none        | server-wide request deadline    |
//! | `PALM_DRAIN_MS`          | `5000`        | shutdown drain deadline         |
//! | `PALM_CACHE_ENTRIES`     | `1024`        | result cache size (`0` = off)   |
//!
//! Prints `palm-server listening on <addr>` once ready.  On SIGTERM or
//! SIGINT it drains gracefully (see `NetServer::shutdown`) and exits `0`
//! iff no thread leaked and every index synced.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use coconut_core::palm::PalmServer;
use coconut_net::{NetServer, ServerConfig};

/// Set by the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // A store to a static atomic is async-signal-safe.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// Without unix signals the server runs until killed externally.
    pub fn install() {}
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    sig::install();
    let config = ServerConfig {
        addr: std::env::var("PALM_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_string()),
        max_in_flight: env_usize("PALM_MAX_IN_FLIGHT", 64),
        max_queued_bytes: env_usize("PALM_MAX_QUEUED_BYTES", 64 << 20),
        max_frame_bytes: env_usize("PALM_MAX_FRAME_BYTES", 16 << 20),
        default_deadline_ms: env_u64("PALM_DEFAULT_DEADLINE_MS"),
        retry_after_ms: env_u64("PALM_RETRY_AFTER_MS").unwrap_or(25),
        drain_deadline: Duration::from_millis(env_u64("PALM_DRAIN_MS").unwrap_or(5000)),
        read_poll: Duration::from_millis(50),
    };
    let work_dir = std::env::var("PALM_WORK_DIR")
        .map(Into::into)
        .unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("palm-server-{}", std::process::id()))
        });
    let cache_entries = env_usize("PALM_CACHE_ENTRIES", 1024);
    let mut palm = PalmServer::new(work_dir);
    if cache_entries > 0 {
        palm = palm.with_result_cache(cache_entries);
    }
    let server = match NetServer::spawn(Arc::new(palm), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("palm-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("palm-server listening on {}", server.local_addr());
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    let report = server.shutdown();
    println!(
        "palm-server shutdown: drained={} cancelled={} leaked={} synced={}",
        report.drained, report.cancelled_in_flight, report.leaked_threads, report.synced_indexes
    );
    if let Some(e) = &report.sync_error {
        eprintln!("palm-server: {e}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
