//! Palm over the wire: a TCP front-end for the algorithms server.
//!
//! The paper's demo serves its GUI over REST (Section 4); this crate is
//! the reproduction's network boundary.  Requests are newline-delimited
//! JSON frames — exactly the [`coconut_core::palm`] protocol, one object
//! per line — dispatched onto a shared
//! [`PalmServer`](coconut_core::palm::PalmServer).  Four robustness
//! layers sit between the socket and the index:
//!
//! * **admission control** — bounded in-flight requests and queued
//!   payload bytes; the excess is shed with a structured `overloaded`
//!   error carrying a `retry_after_ms` hint, *before* the JSON is parsed;
//! * **deadlines** — a per-request `deadline_ms` (or a server-wide
//!   default) propagates as a cooperative
//!   [`CancelToken`](coconut_parallel::CancelToken) polled by the query
//!   engine at round boundaries, answering `deadline_exceeded` with the
//!   partial query cost;
//! * **graceful shutdown** — [`NetServer::shutdown`] drains in-flight
//!   work up to a deadline, refuses new connections with
//!   `shutting_down`, cancels stragglers through the shared kill token,
//!   joins every thread and syncs all registered indexes;
//! * **result cache** — enabled on the `PalmServer` itself
//!   (`with_result_cache`), memoizing bit-identical answers invalidated
//!   by the write side; the net layer reports hits/misses/shed through
//!   the `stats` verb.
//!
//! Malformed input — oversized frames, invalid UTF-8, half-closed
//! sockets, non-JSON lines — never panics and never leaks a worker: each
//! case answers a structured `malformed_request` error or closes the
//! connection cleanly (see the crate's integration tests).

pub mod backend;
pub mod client;
pub mod config;
pub mod coordinator;
pub mod frame;
pub mod server;

pub use backend::RemoteBackend;
pub use client::{CallError, PalmClient, RetryPolicy};
pub use config::{coord_env, server_env, ConfigError, CoordEnv, ServerEnv};
pub use coordinator::Coordinator;
pub use frame::{write_frame, FrameOutcome, FrameReader, DEFAULT_MAX_FRAME_BYTES};
pub use server::{NetServer, RequestHandler, ServerConfig, ShutdownReport};
