//! The TCP front-end: acceptor, per-connection loops, admission control
//! and graceful shutdown.  See DESIGN.md, "Palm over the wire".

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use coconut_core::palm::{
    PalmServer, ERROR_KIND_MALFORMED, ERROR_KIND_OVERLOADED, ERROR_KIND_SHUTTING_DOWN,
};
use coconut_json::Json;
use coconut_parallel::CancelToken;
use parking_lot::Mutex;

use crate::frame::{write_frame, FrameOutcome, FrameReader, DEFAULT_MAX_FRAME_BYTES};

/// What the front-end needs from the thing it serves.  [`PalmServer`]
/// is the original implementation; the coordinator implements it too, so
/// one acceptor/admission/shutdown machine fronts both a worker and a
/// whole shard fleet.
pub trait RequestHandler: Send + Sync + 'static {
    /// Handles one request frame (UTF-8 JSON bytes) to a JSON response
    /// string, under the given cancellation token.
    fn handle_json_bytes(&self, request: Vec<u8>, cancel: &CancelToken) -> String;

    /// Notes a request shed by admission control (for the `stats` verb).
    fn note_shed(&self);

    /// Persists whatever the handler owns during graceful shutdown;
    /// returns how many indexes were synced.
    fn sync_all(&self) -> Result<usize, String>;
}

impl RequestHandler for PalmServer {
    fn handle_json_bytes(&self, request: Vec<u8>, cancel: &CancelToken) -> String {
        PalmServer::handle_json_bytes(self, request, cancel)
    }

    fn note_shed(&self) {
        PalmServer::note_shed(self);
    }

    fn sync_all(&self) -> Result<usize, String> {
        PalmServer::sync_all(self)
    }
}

/// Configuration of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Admission bound on concurrently executing requests; the excess is
    /// shed with an `overloaded` error.
    pub max_in_flight: usize,
    /// Admission bound on the total payload bytes of admitted requests.
    pub max_queued_bytes: usize,
    /// Per-frame size cap; an oversized frame gets a `malformed_request`
    /// error and its connection is closed (the stream cannot resync).
    pub max_frame_bytes: usize,
    /// Deadline applied to every request that does not carry its own
    /// `deadline_ms` (which can only tighten, never extend, this bound).
    pub default_deadline_ms: Option<u64>,
    /// Retry hint attached to `overloaded` errors.
    pub retry_after_ms: u64,
    /// How long [`NetServer::shutdown`] waits for in-flight requests
    /// before cancelling them.
    pub drain_deadline: Duration,
    /// Socket read timeout: the granularity at which idle connections
    /// notice a shutdown.
    pub read_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_in_flight: 64,
            max_queued_bytes: 64 << 20,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            default_deadline_ms: None,
            retry_after_ms: 25,
            drain_deadline: Duration::from_millis(5000),
            read_poll: Duration::from_millis(50),
        }
    }
}

/// What [`NetServer::shutdown`] observed; lets callers (and the CI bench)
/// assert a clean exit.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Whether every in-flight request finished within the drain deadline
    /// (when `false`, the stragglers were cancelled via the kill token).
    pub drained: bool,
    /// Requests still executing when the drain deadline expired.
    pub cancelled_in_flight: usize,
    /// Connection threads that failed to exit within the join grace
    /// period.  Always `0` on a healthy shutdown.
    pub leaked_threads: usize,
    /// Indexes synced to durable storage after the last request.
    pub synced_indexes: usize,
    /// Error from [`PalmServer::sync_all`], if syncing failed.
    pub sync_error: Option<String>,
}

impl ShutdownReport {
    /// A shutdown is clean when nothing leaked and every index synced.
    pub fn is_clean(&self) -> bool {
        self.leaked_threads == 0 && self.sync_error.is_none()
    }
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_STOPPED: u8 = 2;

struct Shared<H: RequestHandler> {
    handler: Arc<H>,
    config: ServerConfig,
    state: AtomicU8,
    in_flight: AtomicUsize,
    queued_bytes: AtomicUsize,
    /// Shared kill flag: every request token derives from it, so tripping
    /// it cancels all in-flight engine work at the next round boundary.
    kill: CancelToken,
}

impl<H: RequestHandler> Shared<H> {
    fn state(&self) -> u8 {
        self.state.load(Ordering::SeqCst)
    }

    /// Admission control: reserves an in-flight slot and the request's
    /// bytes, or returns `None` (shed).  The reservation is released when
    /// the returned guard drops — after the response has been computed.
    fn try_admit(&self, bytes: usize) -> Option<Admit<'_, H>> {
        let in_flight = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if in_flight >= self.config.max_in_flight {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        let queued = self.queued_bytes.fetch_add(bytes, Ordering::AcqRel);
        if queued + bytes > self.config.max_queued_bytes {
            self.queued_bytes.fetch_sub(bytes, Ordering::AcqRel);
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(Admit {
            shared: self,
            bytes,
        })
    }
}

/// RAII release of an admission reservation.
struct Admit<'a, H: RequestHandler> {
    shared: &'a Shared<H>,
    bytes: usize,
}

impl<H: RequestHandler> Drop for Admit<'_, H> {
    fn drop(&mut self) {
        self.shared
            .queued_bytes
            .fetch_sub(self.bytes, Ordering::AcqRel);
        self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running TCP front-end over a shared [`RequestHandler`] — a
/// [`PalmServer`] by default, or a coordinator fronting a shard fleet.
///
/// The acceptor and every connection run on their own threads;
/// [`NetServer::shutdown`] drains, cancels, joins and syncs (see
/// [`ShutdownReport`]).
pub struct NetServer<H: RequestHandler = PalmServer> {
    shared: Arc<Shared<H>>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<H: RequestHandler> NetServer<H> {
    /// Binds `config.addr` and starts accepting connections, serving
    /// requests through `handler`.
    pub fn spawn(handler: Arc<H>, config: ServerConfig) -> std::io::Result<NetServer<H>> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            handler,
            config,
            state: AtomicU8::new(STATE_RUNNING),
            in_flight: AtomicUsize::new(0),
            queued_bytes: AtomicUsize::new(0),
            kill: CancelToken::new(),
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || accept_loop(&listener, &shared, &connections))
        };
        Ok(NetServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served handler (e.g. to read its stats in-process).
    pub fn handler(&self) -> &Arc<H> {
        &self.shared.handler
    }

    /// Requests currently admitted and executing.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Gracefully shuts the server down:
    ///
    /// 1. stop admitting — new connections are told `shutting_down`;
    /// 2. wait for in-flight requests up to the drain deadline;
    /// 3. cancel stragglers through the shared kill token (they answer
    ///    `deadline_exceeded` with partial cost);
    /// 4. join the acceptor and every connection thread;
    /// 5. sync all registered indexes to durable storage.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.state.store(STATE_DRAINING, Ordering::SeqCst);
        let drain_until = Instant::now() + self.shared.config.drain_deadline;
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < drain_until {
            std::thread::sleep(Duration::from_millis(2));
        }
        let cancelled_in_flight = self.shared.in_flight.load(Ordering::SeqCst);
        let drained = cancelled_in_flight == 0;
        self.shared.kill.cancel();
        self.shared.state.store(STATE_STOPPED, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Connection threads notice `STATE_STOPPED` within one read poll
        // (and cancelled engine work unwinds at its next round boundary),
        // so a healthy thread exits quickly; anything still running after
        // the grace period is reported as leaked rather than waited on
        // forever.
        let grace = self.shared.config.read_poll * 4 + Duration::from_millis(2000);
        let grace_until = Instant::now() + grace;
        let handles = std::mem::take(&mut *self.connections.lock());
        while Instant::now() < grace_until && handles.iter().any(|h| !h.is_finished()) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut leaked_threads = 0;
        for handle in handles {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                leaked_threads += 1;
            }
        }
        let (synced_indexes, sync_error) = match self.shared.handler.sync_all() {
            Ok(n) => (n, None),
            Err(e) => (0, Some(e)),
        };
        ShutdownReport {
            drained,
            cancelled_in_flight,
            leaked_threads,
            synced_indexes,
            sync_error,
        }
    }
}

impl NetServer<PalmServer> {
    /// The served [`PalmServer`] (kept for callers that predate the
    /// [`RequestHandler`] seam).
    pub fn palm(&self) -> &Arc<PalmServer> {
        self.handler()
    }
}

fn error_payload(kind: &str, message: &str, retry_after_ms: Option<u64>) -> String {
    let mut members = vec![
        ("type", Json::Str("error".into())),
        ("kind", Json::Str(kind.into())),
        ("message", Json::Str(message.into())),
    ];
    if let Some(ms) = retry_after_ms {
        members.push(("retry_after_ms", Json::Num(ms as f64)));
    }
    Json::obj(members).to_string()
}

fn accept_loop<H: RequestHandler>(
    listener: &TcpListener,
    shared: &Arc<Shared<H>>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match shared.state() {
            STATE_STOPPED => return,
            state => match listener.accept() {
                Ok((mut stream, _peer)) => {
                    if state == STATE_DRAINING {
                        // Refuse politely: a structured reply, not a
                        // silent RST, so clients can tell load shedding
                        // from shutdown.
                        let payload = error_payload(
                            ERROR_KIND_SHUTTING_DOWN,
                            "server is shutting down",
                            None,
                        );
                        let _ = write_frame(&mut stream, payload.as_bytes());
                        continue;
                    }
                    let handle = {
                        let shared = Arc::clone(shared);
                        std::thread::spawn(move || serve_connection(&shared, stream))
                    };
                    let mut handles = connections.lock();
                    handles.retain(|h| !h.is_finished());
                    handles.push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            },
        }
    }
}

fn serve_connection<H: RequestHandler>(shared: &Shared<H>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_poll));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = FrameReader::new(read_half, shared.config.max_frame_bytes);
    loop {
        match reader.read_frame() {
            FrameOutcome::Timeout => {
                // No frame in flight: poll the shutdown state.  Idle
                // connections close during drain so shutdown never waits
                // on a silent client.
                if shared.state() != STATE_RUNNING {
                    return;
                }
            }
            FrameOutcome::Eof { .. } => return,
            FrameOutcome::Io(_) => return,
            FrameOutcome::TooLarge { limit } => {
                // The rest of the oversized line is unread: the stream
                // cannot be resynchronized, so reply and close.
                let payload = error_payload(
                    ERROR_KIND_MALFORMED,
                    &format!("frame exceeds the {limit}-byte limit"),
                    None,
                );
                let _ = write_frame(&mut writer, payload.as_bytes());
                return;
            }
            FrameOutcome::Frame(frame) => {
                if shared.state() != STATE_RUNNING {
                    let payload =
                        error_payload(ERROR_KIND_SHUTTING_DOWN, "server is shutting down", None);
                    let _ = write_frame(&mut writer, payload.as_bytes());
                    return;
                }
                let response = match shared.try_admit(frame.len()) {
                    None => {
                        shared.handler.note_shed();
                        error_payload(
                            ERROR_KIND_OVERLOADED,
                            "request shed by admission control",
                            Some(shared.config.retry_after_ms),
                        )
                    }
                    Some(admit) => {
                        let cancel = match shared.config.default_deadline_ms {
                            Some(ms) => shared
                                .kill
                                .with_deadline(Instant::now() + Duration::from_millis(ms)),
                            None => shared.kill.clone(),
                        };
                        let response = shared.handler.handle_json_bytes(frame, &cancel);
                        drop(admit);
                        response
                    }
                };
                if write_frame(&mut writer, response.as_bytes()).is_err() {
                    return;
                }
            }
        }
    }
}

impl<H: RequestHandler> Drop for NetServer<H> {
    fn drop(&mut self) {
        // A dropped (not shut down) server still stops its threads so
        // tests cannot leak acceptors; `shutdown` is the orderly path.
        self.shared.kill.cancel();
        self.shared.state.store(STATE_STOPPED, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handle in std::mem::take(&mut *self.connections.lock()) {
            let _ = handle.join();
        }
    }
}
