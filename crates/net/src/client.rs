//! A minimal blocking client for the newline-delimited JSON protocol,
//! used by the coordinator's `RemoteBackend`, the integration tests and
//! the `e14_server_load` benchmark.
//!
//! [`PalmClient::call_with_retry`] is the admission-aware entry point:
//! when the server sheds a request with an `overloaded` error carrying
//! `retry_after_ms`, the client honors the hint with bounded, jittered
//! retries under a single-flight time budget, and gives up with the
//! typed [`CallError::RetriesExhausted`] instead of looping forever.

use std::io::{Error, ErrorKind, Result};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use coconut_core::palm::ERROR_KIND_OVERLOADED;
use coconut_json::Json;

use crate::frame::{write_frame, FrameOutcome, FrameReader, DEFAULT_MAX_FRAME_BYTES};

/// How [`PalmClient::call_with_retry`] behaves when the server sheds.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Single-flight wall-clock budget across every attempt and backoff
    /// sleep; once spent, the call gives up even with attempts left.
    pub budget: Duration,
    /// Fallback wait when a shed carries no `retry_after_ms`.
    pub default_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            budget: Duration::from_secs(1),
            default_backoff: Duration::from_millis(25),
        }
    }
}

/// Why an admission-aware call did not produce a response.
#[derive(Debug)]
pub enum CallError {
    /// The transport failed (connect, write, read, malformed frame).
    Io(Error),
    /// The server answered, but with bytes that do not parse as JSON.
    Protocol(String),
    /// Every attempt was shed with `overloaded`; the caller should back
    /// off at its own level (or surface the overload to *its* caller).
    RetriesExhausted {
        /// Attempts actually made before giving up.
        attempts: u32,
        /// Total time spent waiting between attempts.
        waited: Duration,
        /// The server's last `retry_after_ms` hint, if any.
        last_retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Io(e) => write!(f, "transport error: {e}"),
            CallError::Protocol(why) => write!(f, "protocol error: {why}"),
            CallError::RetriesExhausted {
                attempts,
                waited,
                last_retry_after_ms,
            } => write!(
                f,
                "gave up after {attempts} overloaded attempts ({waited:?} waited, last hint {last_retry_after_ms:?})"
            ),
        }
    }
}

impl std::error::Error for CallError {}

impl From<Error> for CallError {
    fn from(e: Error) -> Self {
        CallError::Io(e)
    }
}

/// One connection to a Palm TCP server; issues one request at a time.
pub struct PalmClient {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    /// Deterministic jitter state (an LCG seeded from the local port):
    /// retries from a fleet of clients must not re-arrive in lockstep,
    /// but tests need reproducible bounds, so no clock-derived entropy.
    jitter_state: u64,
}

impl PalmClient {
    /// Connects with a generous read timeout (30 s) so a dead server
    /// surfaces as an error instead of a hang.
    pub fn connect(addr: &str) -> Result<PalmClient> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// [`PalmClient::connect`] with an explicit read timeout — the
    /// coordinator sets this to the per-shard deadline plus grace so a
    /// killed worker surfaces within the deadline, not after 30 s.
    pub fn connect_with_timeout(addr: &str, read_timeout: Duration) -> Result<PalmClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        let read_half = stream.try_clone()?;
        let jitter_state = u64::from(stream.local_addr()?.port()) | 1;
        Ok(PalmClient {
            writer: stream,
            reader: FrameReader::new(read_half, DEFAULT_MAX_FRAME_BYTES),
            jitter_state,
        })
    }

    /// Adjusts the read timeout of the live connection.  The reader is a
    /// dup of the writer, so setting it on either half applies to both.
    pub fn set_read_timeout(&self, read_timeout: Duration) -> Result<()> {
        self.writer.set_read_timeout(Some(read_timeout))
    }

    /// Sends one raw JSON request line and returns the raw response line.
    pub fn call(&mut self, request: &str) -> Result<String> {
        write_frame(&mut self.writer, request.as_bytes())?;
        match self.reader.read_frame() {
            FrameOutcome::Frame(frame) => String::from_utf8(frame)
                .map_err(|_| Error::new(ErrorKind::InvalidData, "response is not UTF-8")),
            FrameOutcome::Timeout => Err(Error::new(ErrorKind::TimedOut, "response timed out")),
            FrameOutcome::Eof { .. } => Err(Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            FrameOutcome::TooLarge { limit } => Err(Error::new(
                ErrorKind::InvalidData,
                format!("response exceeded {limit} bytes"),
            )),
            FrameOutcome::Io(e) => Err(e),
        }
    }

    /// [`PalmClient::call`] with JSON values on both sides.
    pub fn call_json(&mut self, request: &Json) -> Result<Json> {
        let response = self.call(&request.to_string())?;
        Json::parse(&response)
            .map_err(|e| Error::new(ErrorKind::InvalidData, format!("bad response JSON: {e}")))
    }

    /// Next jitter factor in `[0.5, 1.0)` — a multiplicative spread that
    /// desynchronizes retry herds without ever *exceeding* the server's
    /// hint (retrying early is wasteful, retrying late is merely polite).
    fn jitter(&mut self) -> f64 {
        // Numerical Recipes' LCG constants; period 2^64 over the state.
        self.jitter_state = self
            .jitter_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        0.5 + (self.jitter_state >> 11) as f64 / (1u64 << 53) as f64 / 2.0
    }

    /// Sends the request, honoring `overloaded` sheds: waits the server's
    /// jittered `retry_after_ms` hint and tries again, within the
    /// policy's attempt and time budget.  Any *other* response — success
    /// or a different error kind — returns immediately; only overload is
    /// retryable by construction (the request never executed).
    pub fn call_with_retry(
        &mut self,
        request: &str,
        policy: &RetryPolicy,
    ) -> std::result::Result<Json, CallError> {
        let started = Instant::now();
        let mut waited = Duration::ZERO;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let response = self.call(request)?;
            let json = Json::parse(&response)
                .map_err(|e| CallError::Protocol(format!("bad response JSON: {e}")))?;
            let overloaded = json.get("type").and_then(Json::as_str) == Some("error")
                && json.get("kind").and_then(Json::as_str) == Some(ERROR_KIND_OVERLOADED);
            if !overloaded {
                return Ok(json);
            }
            let last_hint = json
                .get("retry_after_ms")
                .and_then(Json::as_f64)
                .map(|ms| ms.max(0.0) as u64);
            let backoff = last_hint
                .map(Duration::from_millis)
                .unwrap_or(policy.default_backoff)
                .mul_f64(self.jitter());
            let spent = started.elapsed();
            if attempts >= policy.max_attempts.max(1) || spent + backoff > policy.budget {
                return Err(CallError::RetriesExhausted {
                    attempts,
                    waited,
                    last_retry_after_ms: last_hint,
                });
            }
            std::thread::sleep(backoff);
            waited += backoff;
        }
    }
}
