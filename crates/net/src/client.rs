//! A minimal blocking client for the newline-delimited JSON protocol,
//! used by the integration tests and the `e14_server_load` benchmark.

use std::io::{Error, ErrorKind, Result};
use std::net::TcpStream;
use std::time::Duration;

use coconut_json::Json;

use crate::frame::{write_frame, FrameOutcome, FrameReader, DEFAULT_MAX_FRAME_BYTES};

/// One connection to a Palm TCP server; issues one request at a time.
pub struct PalmClient {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl PalmClient {
    /// Connects with a generous read timeout (30 s) so a dead server
    /// surfaces as an error instead of a hang.
    pub fn connect(addr: &str) -> Result<PalmClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let read_half = stream.try_clone()?;
        Ok(PalmClient {
            writer: stream,
            reader: FrameReader::new(read_half, DEFAULT_MAX_FRAME_BYTES),
        })
    }

    /// Sends one raw JSON request line and returns the raw response line.
    pub fn call(&mut self, request: &str) -> Result<String> {
        write_frame(&mut self.writer, request.as_bytes())?;
        match self.reader.read_frame() {
            FrameOutcome::Frame(frame) => String::from_utf8(frame)
                .map_err(|_| Error::new(ErrorKind::InvalidData, "response is not UTF-8")),
            FrameOutcome::Timeout => Err(Error::new(ErrorKind::TimedOut, "response timed out")),
            FrameOutcome::Eof { .. } => Err(Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            FrameOutcome::TooLarge { limit } => Err(Error::new(
                ErrorKind::InvalidData,
                format!("response exceeded {limit} bytes"),
            )),
            FrameOutcome::Io(e) => Err(e),
        }
    }

    /// [`PalmClient::call`] with JSON values on both sides.
    pub fn call_json(&mut self, request: &Json) -> Result<Json> {
        let response = self.call(&request.to_string())?;
        Json::parse(&response)
            .map_err(|e| Error::new(ErrorKind::InvalidData, format!("bad response JSON: {e}")))
    }
}
