//! Newline-delimited JSON framing with a hard size cap.
//!
//! One request or response per line, UTF-8 JSON, terminated by `\n` (a
//! trailing `\r` is tolerated and stripped).  The reader enforces a
//! maximum frame size *while accumulating*, so a peer cannot make the
//! server buffer an unbounded line — the oversized frame is reported
//! before the newline ever arrives.  Reads honour the socket's read
//! timeout: a timeout surfaces as [`FrameOutcome::Timeout`] with the
//! partial frame kept, letting the connection loop poll the server's
//! shutdown state between chunks without losing data.

use std::io::{ErrorKind, Read, Write};

/// Default cap on a single frame (16 MiB), matching the service protocol.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 << 20;

/// Outcome of one [`FrameReader::read_frame`] call.
#[derive(Debug)]
pub enum FrameOutcome {
    /// A complete frame (the line without its `\n` / `\r\n` terminator).
    Frame(Vec<u8>),
    /// The read timed out before a full frame arrived; the partial frame
    /// is retained, call again to continue.
    Timeout,
    /// The peer closed its write side.  `mid_frame` reports whether bytes
    /// of an unterminated frame were discarded.
    Eof {
        /// `true` when the connection died with a partial frame buffered.
        mid_frame: bool,
    },
    /// The frame exceeded the size cap before its newline arrived.  The
    /// stream is beyond resynchronization: reply with an error and close.
    TooLarge {
        /// The enforced cap in bytes.
        limit: usize,
    },
    /// Any other I/O error.
    Io(std::io::Error),
}

/// Incremental reader for capped newline-delimited frames.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Scan resume position: bytes before it are known newline-free.
    scanned: usize,
    max_frame: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`, enforcing `max_frame` bytes per frame.
    pub fn new(inner: R, max_frame: usize) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            scanned: 0,
            max_frame,
        }
    }

    /// Reads until one full frame, EOF, timeout or the size cap.
    pub fn read_frame(&mut self) -> FrameOutcome {
        loop {
            if let Some(offset) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let newline = self.scanned + offset;
                let mut frame: Vec<u8> = self.buf.drain(..=newline).collect();
                frame.pop();
                if frame.last() == Some(&b'\r') {
                    frame.pop();
                }
                self.scanned = 0;
                return FrameOutcome::Frame(frame);
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.max_frame {
                return FrameOutcome::TooLarge {
                    limit: self.max_frame,
                };
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return FrameOutcome::Eof {
                        mid_frame: !self.buf.is_empty(),
                    }
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return FrameOutcome::Timeout
                }
                Err(e) => return FrameOutcome::Io(e),
            }
        }
    }
}

/// Writes one frame: the payload followed by `\n`, flushed.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> std::io::Result<()> {
    writer.write_all(payload)?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_frames_and_strips_terminators() {
        let data: &[u8] = b"one\r\ntwo\nthree";
        let mut reader = FrameReader::new(data, 64);
        assert!(matches!(reader.read_frame(), FrameOutcome::Frame(f) if f == b"one"));
        assert!(matches!(reader.read_frame(), FrameOutcome::Frame(f) if f == b"two"));
        assert!(matches!(
            reader.read_frame(),
            FrameOutcome::Eof { mid_frame: true }
        ));
    }

    #[test]
    fn clean_eof_is_not_mid_frame() {
        let data: &[u8] = b"only\n";
        let mut reader = FrameReader::new(data, 64);
        assert!(matches!(reader.read_frame(), FrameOutcome::Frame(_)));
        assert!(matches!(
            reader.read_frame(),
            FrameOutcome::Eof { mid_frame: false }
        ));
    }

    #[test]
    fn oversized_frame_is_reported_before_its_newline() {
        let data = [b'x'; 200];
        let mut reader = FrameReader::new(&data[..], 64);
        assert!(matches!(
            reader.read_frame(),
            FrameOutcome::TooLarge { limit: 64 }
        ));
    }

    #[test]
    fn frame_at_the_cap_still_passes() {
        let mut data = vec![b'x'; 64];
        data.push(b'\n');
        let mut reader = FrameReader::new(&data[..], 64);
        assert!(matches!(reader.read_frame(), FrameOutcome::Frame(f) if f.len() == 64));
    }
}
