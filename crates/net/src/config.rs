//! Shared `PALM_*` environment configuration for the network binaries.
//!
//! `palm-server` and `palm-coord` read the same knobs; this module parses
//! them **once** and, unlike the old per-binary helpers, *reports* an
//! unparseable value instead of silently falling back to the default —
//! an operator who typoes `PALM_MAX_IN_FLIGHT=6４` should get an error,
//! not a server quietly running at 64.
//!
//! | variable                   | default       | meaning                          |
//! |----------------------------|---------------|----------------------------------|
//! | `PALM_ADDR`                | `127.0.0.1:0` | bind address (`:0` = free port)  |
//! | `PALM_MAX_IN_FLIGHT`       | `64`          | admission: concurrent requests   |
//! | `PALM_MAX_QUEUED_BYTES`    | `67108864`    | admission: queued payload bytes  |
//! | `PALM_MAX_FRAME_BYTES`     | `16777216`    | per-frame size cap               |
//! | `PALM_DEFAULT_DEADLINE_MS` | none          | server-wide request deadline     |
//! | `PALM_RETRY_AFTER_MS`      | `25`          | retry hint on `overloaded` sheds |
//! | `PALM_DRAIN_MS`            | `5000`        | shutdown drain deadline          |
//! | `PALM_WORK_DIR`            | temp dir      | index file directory (server)    |
//! | `PALM_CACHE_ENTRIES`       | `1024`        | result cache size (server)       |
//! | `PALM_WORKERS`             | —             | comma-separated shard addresses  |
//! |                            |               | (coordinator; required)          |

use std::path::PathBuf;
use std::time::Duration;

use crate::server::ServerConfig;

/// A rejected environment variable: which one and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending variable name, e.g. `PALM_MAX_IN_FLIGHT`.
    pub variable: String,
    /// What was wrong with its value.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.variable, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn reject(variable: &str, message: impl Into<String>) -> ConfigError {
    ConfigError {
        variable: variable.to_string(),
        message: message.into(),
    }
}

/// Reads `name` from the environment; `Ok(None)` when unset, `Err` when
/// set but not a `T`.
fn parsed<T: std::str::FromStr>(name: &str) -> Result<Option<T>, ConfigError> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(raw) => raw
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| reject(name, format!("cannot parse {raw:?}"))),
    }
}

/// The [`ServerConfig`] knobs shared by every `PALM_*`-configured binary.
pub fn server_config_from_env() -> Result<ServerConfig, ConfigError> {
    let defaults = ServerConfig::default();
    Ok(ServerConfig {
        addr: std::env::var("PALM_ADDR").unwrap_or(defaults.addr),
        max_in_flight: parsed("PALM_MAX_IN_FLIGHT")?.unwrap_or(defaults.max_in_flight),
        max_queued_bytes: parsed("PALM_MAX_QUEUED_BYTES")?.unwrap_or(defaults.max_queued_bytes),
        max_frame_bytes: parsed("PALM_MAX_FRAME_BYTES")?.unwrap_or(defaults.max_frame_bytes),
        default_deadline_ms: parsed("PALM_DEFAULT_DEADLINE_MS")?,
        retry_after_ms: parsed("PALM_RETRY_AFTER_MS")?.unwrap_or(defaults.retry_after_ms),
        drain_deadline: parsed("PALM_DRAIN_MS")?
            .map(Duration::from_millis)
            .unwrap_or(defaults.drain_deadline),
        read_poll: defaults.read_poll,
    })
}

/// Everything `palm-server` reads from the environment.
#[derive(Debug)]
pub struct ServerEnv {
    /// Front-end knobs (bind address, admission, deadlines).
    pub config: ServerConfig,
    /// Index file directory (`PALM_WORK_DIR`, default: a per-pid temp dir).
    pub work_dir: PathBuf,
    /// Result cache capacity (`PALM_CACHE_ENTRIES`, `0` disables).
    pub cache_entries: usize,
}

/// Parses the `palm-server` environment.
pub fn server_env() -> Result<ServerEnv, ConfigError> {
    Ok(ServerEnv {
        config: server_config_from_env()?,
        work_dir: std::env::var("PALM_WORK_DIR")
            .map(Into::into)
            .unwrap_or_else(|_| {
                std::env::temp_dir().join(format!("palm-server-{}", std::process::id()))
            }),
        cache_entries: parsed("PALM_CACHE_ENTRIES")?.unwrap_or(1024),
    })
}

/// Everything `palm-coord` reads from the environment.
#[derive(Debug)]
pub struct CoordEnv {
    /// Front-end knobs for the coordinator's own listener.
    pub config: ServerConfig,
    /// Worker addresses, one shard each, in shard order
    /// (`PALM_WORKERS=host:port,host:port,...`; required, non-empty).
    pub workers: Vec<String>,
}

/// Parses the `palm-coord` environment.
pub fn coord_env() -> Result<CoordEnv, ConfigError> {
    let raw = std::env::var("PALM_WORKERS")
        .map_err(|_| reject("PALM_WORKERS", "required: comma-separated worker addresses"))?;
    let workers: Vec<String> = raw
        .split(',')
        .map(|addr| addr.trim().to_string())
        .filter(|addr| !addr.is_empty())
        .collect();
    if workers.is_empty() {
        return Err(reject("PALM_WORKERS", "no worker addresses given"));
    }
    Ok(CoordEnv {
        config: server_config_from_env()?,
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process state, so each uses its own variable
    // and restores it; the suite runs threaded, hence distinct names.

    #[test]
    fn unset_variables_fall_back_to_defaults() {
        std::env::remove_var("PALM_MAX_IN_FLIGHT_TEST_UNSET");
        let config = server_config_from_env().unwrap();
        let defaults = ServerConfig::default();
        assert_eq!(config.retry_after_ms, defaults.retry_after_ms);
        assert_eq!(config.max_frame_bytes, defaults.max_frame_bytes);
    }

    #[test]
    fn invalid_value_is_reported_not_defaulted() {
        let err = parsed::<usize>("PALM_CONFIG_TEST_BAD_VALUE").unwrap();
        assert!(err.is_none());
        std::env::set_var("PALM_CONFIG_TEST_BAD_VALUE", "not-a-number");
        let err = parsed::<usize>("PALM_CONFIG_TEST_BAD_VALUE").unwrap_err();
        assert_eq!(err.variable, "PALM_CONFIG_TEST_BAD_VALUE");
        assert!(err.message.contains("not-a-number"), "{err}");
        std::env::remove_var("PALM_CONFIG_TEST_BAD_VALUE");
    }

    #[test]
    fn worker_list_parses_and_requires_entries() {
        std::env::set_var("PALM_WORKERS", " a:1 , b:2,, c:3 ");
        let env = coord_env().unwrap();
        assert_eq!(env.workers, vec!["a:1", "b:2", "c:3"]);
        std::env::set_var("PALM_WORKERS", " , ");
        assert!(coord_env().is_err());
        std::env::remove_var("PALM_WORKERS");
    }
}
