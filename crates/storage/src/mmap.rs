//! Read-only memory mappings for finished run files.
//!
//! The Coconut layout is exactly the case where mapped reads pay off: runs
//! and leaf levels are dense, sorted and immutable once finished, so a
//! page-cache-resident scan through a mapping is a plain `memcpy` instead of
//! a `pread` syscall per buffer.  [`Mapping`] wraps the raw `mmap(2)` /
//! `munmap(2)` calls behind a safe slice view; [`crate::PagedFile`] uses it
//! when its [`IoBackend`] is [`IoBackend::Mmap`].
//!
//! The build environment is offline, so the syscalls are declared directly
//! (minimal `extern "C"` bindings) rather than pulled in through a crate.
//! The declarations assume the LP64 ABI (`off_t` = `i64`), so the real
//! mapping is compiled only for 64-bit Unix targets; everywhere else —
//! non-Unix, or 32-bit Unix where glibc's `mmap` takes a 32-bit `off_t` —
//! mapping always fails and the caller falls back to positioned reads,
//! keeping the backend a pure performance knob on every platform.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{Result, StorageError};

/// How a [`crate::PagedFile`] serves read requests.
///
/// A pure performance knob: both backends return the same bytes and charge
/// the same `IoStats` (mapped reads account every page they copy from, with
/// the same sequential/random classification as positioned reads), so
/// answers, costs and I/O totals are byte-identical at either setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IoBackend {
    /// Positioned `read` calls through the file descriptor (the default).
    #[default]
    Pread,
    /// Reads are copied out of a read-only shared mapping of the file.
    Mmap,
}

impl IoBackend {
    /// Short lowercase name ("pread" / "mmap") used by reports and env vars.
    pub fn name(&self) -> &'static str {
        match self {
            IoBackend::Pread => "pread",
            IoBackend::Mmap => "mmap",
        }
    }
}

impl std::fmt::Display for IoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for IoBackend {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<IoBackend, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "pread" => Ok(IoBackend::Pread),
            "mmap" => Ok(IoBackend::Mmap),
            other => Err(format!("unknown io backend '{other}' (pread|mmap)")),
        }
    }
}

impl coconut_json::ToJson for IoBackend {
    fn to_json(&self) -> coconut_json::Json {
        coconut_json::Json::Str(self.name().to_string())
    }
}

impl coconut_json::FromJson for IoBackend {
    fn from_json(json: &coconut_json::Json) -> coconut_json::Result<IoBackend> {
        match json.as_str() {
            Some(s) => s
                .parse()
                .map_err(|e: String| coconut_json::JsonError::new(e)),
            None => Err(coconut_json::JsonError::new(
                "expected a string for the io backend",
            )),
        }
    }
}

/// Advisory access-pattern hint for a read mapping (`madvise(2)`).
///
/// A pure performance knob layered on a pure performance knob: the hint
/// tunes kernel read-ahead for the mapped pages (aggressive for sequential
/// range scans, disabled for random query-time probes) but never changes
/// which bytes a read returns or which page touches `IoStats` accounts —
/// accounting happens in [`crate::PagedFile`], entirely outside the kernel's
/// read-ahead machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessPattern {
    /// No particular expectation (the kernel default).
    #[default]
    Normal,
    /// Pages will be touched in ascending order (merge/scan range readers):
    /// `MADV_SEQUENTIAL`, aggressive read-ahead, early reclaim behind the
    /// cursor.
    Sequential,
    /// Pages will be touched in no predictable order (query-time block
    /// probes): `MADV_RANDOM`, read-ahead disabled so a probe faults only
    /// the pages it needs.
    Random,
}

impl AccessPattern {
    /// Short lowercase name used by diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            AccessPattern::Normal => "normal",
            AccessPattern::Sequential => "sequential",
            AccessPattern::Random => "random",
        }
    }
}

/// Number of file mappings currently alive in the process (diagnostic; the
/// unmap-before-unlink tests assert on the per-file state instead, which is
/// immune to concurrent tests creating their own mappings).
pub fn live_mappings() -> usize {
    LIVE_MAPPINGS.load(Ordering::Relaxed)
}

static LIVE_MAPPINGS: AtomicUsize = AtomicUsize::new(0);

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_SHARED: c_int = 0x01;
    pub const MADV_NORMAL: c_int = 0;
    pub const MADV_RANDOM: c_int = 1;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MADV_WILLNEED: c_int = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }
}

/// A read-only `MAP_SHARED` mapping of the first `len` bytes of a file.
///
/// `MAP_SHARED` keeps the view coherent with writes made through the file
/// descriptor (both go through the same page cache), so a mapping created
/// while a file is still being appended to serves the already-written prefix
/// correctly; reads past the mapped length must remap (handled by
/// [`crate::PagedFile`]).  Dropping the mapping unmaps it.
pub struct Mapping {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// The mapping is read-only and the pointer is never handed out mutably.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps the first `len` bytes of `file` read-only.  Fails (and the
    /// caller falls back to positioned reads) when the platform has no
    /// `mmap`, when `len` is zero, or when the kernel refuses the mapping.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn map(file: &std::fs::File, len: u64) -> Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(len).map_err(|_| StorageError::InvalidRange {
            offset: 0,
            len: u64::MAX,
        })?;
        if len == 0 {
            return Err(StorageError::Corrupt("cannot map an empty file".into()));
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return Err(StorageError::Io(std::io::Error::last_os_error()));
        }
        // Purely advisory kick-off of kernel read-ahead for the fresh
        // mapping; errors are irrelevant.
        unsafe {
            let _ = sys::madvise(ptr, len, sys::MADV_WILLNEED);
        }
        LIVE_MAPPINGS.fetch_add(1, Ordering::Relaxed);
        Ok(Mapping {
            ptr: std::ptr::NonNull::new(ptr as *mut u8).expect("mmap returned non-null"),
            len,
        })
    }

    /// Non-Unix and 32-bit targets (where the hand-rolled LP64 `mmap`
    /// declaration would mismatch the C ABI) have no mapping; callers fall
    /// back to `pread`.
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn map(_file: &std::fs::File, _len: u64) -> Result<Mapping> {
        Err(StorageError::Corrupt(
            "memory mapping is not supported on this platform".into(),
        ))
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for a zero-length mapping (never constructed today).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Applies an advisory access-pattern hint to the whole mapping.
    ///
    /// Purely advisory: failures are ignored (as with the `MADV_WILLNEED`
    /// issued at map time) and neither the returned bytes nor the `IoStats`
    /// accounting depend on the hint.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn advise(&self, pattern: AccessPattern) {
        let advice = match pattern {
            AccessPattern::Normal => sys::MADV_NORMAL,
            AccessPattern::Sequential => sys::MADV_SEQUENTIAL,
            AccessPattern::Random => sys::MADV_RANDOM,
        };
        unsafe {
            let _ = sys::madvise(self.ptr.as_ptr() as *mut std::ffi::c_void, self.len, advice);
        }
    }

    /// No-op on platforms without `madvise`.
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn advise(&self, _pattern: AccessPattern) {}
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        unsafe {
            let _ = sys::munmap(self.ptr.as_ptr() as *mut std::ffi::c_void, self.len);
        }
        LIVE_MAPPINGS.fetch_sub(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping").field("len", &self.len).finish()
    }
}

#[cfg(all(test, unix, target_pointer_width = "64"))]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn mapping_sees_file_bytes_and_unmaps_on_drop() {
        let dir = crate::tempdir::ScratchDir::new("mmap-basic").unwrap();
        let path = dir.file("a.bin");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(b"mapped bytes").unwrap();
        f.sync_data().unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let before = live_mappings();
        let m = Mapping::map(&f, 12).unwrap();
        assert_eq!(m.as_slice(), b"mapped bytes");
        assert_eq!(m.len(), 12);
        assert!(live_mappings() > before);
        drop(m);
    }

    #[test]
    fn mapping_is_coherent_with_descriptor_writes() {
        // MAP_SHARED mappings and write(2) share the page cache: bytes
        // written through the descriptor after the mapping was created must
        // be visible through the mapping (within the mapped length).
        let dir = crate::tempdir::ScratchDir::new("mmap-coherent").unwrap();
        let path = dir.file("a.bin");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(b"aaaaaaaa").unwrap();
        let reader = std::fs::File::open(&path).unwrap();
        let m = Mapping::map(&reader, 8).unwrap();
        assert_eq!(m.as_slice(), b"aaaaaaaa");
        use std::io::Seek;
        f.seek(std::io::SeekFrom::Start(2)).unwrap();
        f.write_all(b"zz").unwrap();
        assert_eq!(m.as_slice(), b"aazzaaaa");
    }

    #[test]
    fn advise_leaves_mapped_bytes_intact() {
        let dir = crate::tempdir::ScratchDir::new("mmap-advise").unwrap();
        let path = dir.file("a.bin");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(b"advised bytes!").unwrap();
        f.sync_data().unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let m = Mapping::map(&f, 14).unwrap();
        for pattern in [
            AccessPattern::Sequential,
            AccessPattern::Random,
            AccessPattern::Normal,
        ] {
            m.advise(pattern);
            assert_eq!(m.as_slice(), b"advised bytes!", "{}", pattern.name());
        }
    }

    #[test]
    fn empty_mapping_is_rejected() {
        let dir = crate::tempdir::ScratchDir::new("mmap-empty").unwrap();
        let path = dir.file("a.bin");
        std::fs::File::create(&path).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        assert!(Mapping::map(&f, 0).is_err());
    }

    #[test]
    fn backend_parses_and_prints() {
        assert_eq!("pread".parse::<IoBackend>().unwrap(), IoBackend::Pread);
        assert_eq!("MMAP".parse::<IoBackend>().unwrap(), IoBackend::Mmap);
        assert!(" mmap ".parse::<IoBackend>().is_ok());
        assert!("readv".parse::<IoBackend>().is_err());
        assert_eq!(IoBackend::Mmap.to_string(), "mmap");
        assert_eq!(IoBackend::default(), IoBackend::Pread);
    }
}
